//! The live-load serving campaign: closed-loop clients with timeouts
//! and backoff retries against a [`ServerCore`] whose batch windows run
//! on the [`StripedRuntime`] — and power failures landing mid-flight in
//! the stripe, in the control region, and inside recovery passes.
//!
//! The property under test is **durable linearizability from the
//! client's chair**: across every crash/recover cycle a client observes
//! only `Done`/`Retry`/`Overloaded` responses, every operation it
//! completes took effect **exactly once** in the store, and no ack is
//! ever lost (the campaign terminates with every client finished — the
//! server's answers are durable before they are visible, so a crash
//! between execution and delivery only costs a retry, never an effect).
//!
//! The harness is a discrete-event simulation on the crate's virtual
//! clock ([`VirtualClock`]): client timeouts, backoff jitter and the
//! per-iteration service tick are all virtual nanoseconds, so a whole
//! campaign — schedules, kills, recoveries, SLO percentiles — is
//! reproducible from its seed. A power failure is modeled exactly as
//! the paper's whole-system crash (§2.2): the first region to trip its
//! fail-point takes every other region down, the wire loses all
//! in-flight frames ([`ChannelHub::reset`]), and the clients experience
//! a connection reset ([`ClientSim::on_crash`]) — they back off and
//! retransmit under the retry contract, never abandoning a request.
//!
//! The verdict is built from the **clients' own observations** (their
//! completed ops, tagged `(pid = client_id, seq = req_id)`) against the
//! store's published chain witnesses — the server-side request tables
//! recycle answered slots, so only the clients hold the full history.
//! [`check_kv_sharded_gen`] then enforces exactly-once effects: a
//! duplicated mutation would publish two records under one tag, a lost
//! effect would leave an acked mutation without its record.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pstack_core::{
    CrashRegion, CrashSite, FunctionRegistry, PError, RecoveryMode, RuntimeConfig, StripedRuntime,
};
use pstack_kv::{shard_of, KvRequestTable, KvTaskOp, KvVariant, ShardedKvStore};
use pstack_nvram::{
    FailPlan, PMem, PMemBuilder, PMemStripe, POffset, PsanViolation, StatsSnapshot,
};
use pstack_server::proto::{kind_of, RequestBody, Response};
use pstack_server::{
    ChannelConn, ChannelHub, ClientConfig, ClientSim, ClientStats, Clock, KvServeFunction, OpClass,
    ServerCore, Submission, VirtualClock, KV_SERVE_FUNC_ID,
};
use pstack_telemetry::{TelemetrySummary, TraceSession};
use pstack_verify::{check_kv_sharded_gen, KvShardedHistory, KvVerdict, KvWitnessRecord};

/// Where each shard region persists its request-table base: inside the
/// 64-byte shard root, past the store's own offsets and past the task
/// table's slot at `TABLE_ROOT_OFF` (40).
pub(crate) const SERVE_TABLE_ROOT_OFF: u64 = 48;

const PHI: u64 = 0x9E37_79B9_7F4A_7C15;
const RECOVERY_SALT: u64 = 0xD134_2543_DE82_EF95;

/// Configuration of one serving crash campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerCampaignConfig {
    /// Closed-loop clients (ids `1..=clients`).
    pub clients: usize,
    /// Operations each client must complete (done **and** acked).
    pub ops_per_client: usize,
    /// Shards (independent regions) behind the server.
    pub shards: usize,
    /// Runtime worker threads. The default 1 keeps the whole campaign
    /// deterministic per seed; more workers stay correct but reorder
    /// window execution.
    pub workers: usize,
    /// Keys are zipfian ranks over `0..key_space`.
    pub key_space: u64,
    /// Zipf skew of the client key distributions.
    pub zipf_s: f64,
    /// Put/cas values are drawn from `-value_range..=value_range`.
    pub value_range: i64,
    /// Relative weights of (put, get, delete, cas) per client.
    pub op_mix: [u32; 4],
    /// Master seed; campaigns are deterministic given the seed (at
    /// `workers == 1`).
    pub seed: u64,
    /// Correct NSRL recovery or the no-scan bug (negative control).
    pub variant: KvVariant,
    /// Per-shard admission-queue capacity; excess load sheds as
    /// explicit `Overloaded` responses.
    pub queue_capacity: usize,
    /// Batch-window size: requests per group commit.
    pub batch: usize,
    /// Route batch windows through the asynchronous flush pipeline
    /// ([`ShardedKvStore::set_pipeline`]): record and log-tail
    /// persists of concurrent windows ride overlapping `flush_async`
    /// flights, and kills land while flights are still queued.
    pub pipeline: bool,
    /// Per-shard request-table slots — the bound on outstanding or
    /// unacked requests per shard.
    pub table_cap: u32,
    /// Crashes stop after this many, so the campaign terminates
    /// (recovery kills get their own budget of the same size).
    pub max_crashes: usize,
    /// Fail-point countdowns are drawn uniformly from this event
    /// window — smaller than a batch window's event footprint, so
    /// kills land mid-window.
    pub crash_window: (u64, u64),
    /// Probability a given shard region is armed in a given boot.
    pub crash_prob: f64,
    /// Probability of arming a kill inside each recovery pass.
    pub recovery_crash_prob: f64,
    /// NVRAM region length per shard.
    pub region_len: usize,
    /// Control-region length (superblock, stacks, heap).
    pub control_region_len: usize,
    /// Per-shard version-log capacity override; `None` provisions from
    /// the workload.
    pub log_cap_per_shard: Option<u64>,
    /// Virtual nanoseconds one serve iteration (admission + batch
    /// windows + delivery) takes — the clock clients measure latency
    /// on.
    pub service_tick_ns: u64,
    /// Virtual nanoseconds a reboot + recovery costs the clients —
    /// crash cycles show up in the SLO tail, as they would in
    /// production.
    pub reboot_penalty_ns: u64,
    /// Shadow every region with the persist-order sanitizer.
    pub psan: bool,
    /// Record the campaign with the flight recorder.
    pub telemetry: bool,
}

impl ServerCampaignConfig {
    /// Defaults: 4 shards served in batch windows of 4 over a
    /// 64-slot-per-shard request table, one deterministic worker, and
    /// kills armed aggressively while the crash budget lasts.
    #[must_use]
    pub fn new(clients: usize, ops_per_client: usize, seed: u64) -> Self {
        ServerCampaignConfig {
            clients,
            ops_per_client,
            shards: 4,
            workers: 1,
            key_space: 16,
            zipf_s: 0.99,
            value_range: 100,
            op_mix: [4, 3, 2, 1],
            seed,
            variant: KvVariant::Nsrl,
            queue_capacity: 64,
            batch: 4,
            pipeline: false,
            table_cap: 64,
            max_crashes: 8,
            crash_window: (8, 60),
            crash_prob: 0.5,
            recovery_crash_prob: 0.3,
            region_len: 1 << 21,
            control_region_len: 1 << 20,
            log_cap_per_shard: None,
            service_tick_ns: 100_000,     // 0.1 ms per serve iteration
            reboot_penalty_ns: 3_000_000, // 3 ms per crash cycle
            psan: cfg!(feature = "psan"),
            telemetry: cfg!(feature = "telemetry"),
        }
    }

    /// Selects the recovery variant.
    #[must_use]
    pub fn variant(mut self, variant: KvVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Selects the admission-queue capacity.
    #[must_use]
    pub fn queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Enables the asynchronous flush pipeline (see
    /// [`ServerCampaignConfig::pipeline`]).
    #[must_use]
    pub fn pipeline(mut self, pipeline: bool) -> Self {
        self.pipeline = pipeline;
        self
    }
}

/// p50/p99/p999 of one op class within one crash cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloStat {
    /// The op class the percentiles describe.
    pub class: OpClass,
    /// Operations of this class completed in the cycle.
    pub count: u64,
    /// Median latency (virtual ns, first send → `Done`).
    pub p50_ns: u64,
    /// 99th percentile latency.
    pub p99_ns: u64,
    /// 99.9th percentile latency.
    pub p999_ns: u64,
}

/// The SLO summary of one crash cycle (the ops completed between two
/// consecutive power failures; the last entry covers the tail after
/// the final crash).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleSlo {
    /// Cycle index: `0..crashes` are inter-crash windows, the final
    /// entry is the post-recovery tail.
    pub cycle: usize,
    /// Per-class percentiles, in [`OpClass::ALL`] order, classes with
    /// no completions omitted.
    pub ops: Vec<SloStat>,
}

/// Outcome of one serving crash campaign.
#[derive(Debug, Clone)]
pub struct ServerCampaignReport {
    /// Boots of the serving stack (1 + one per crash cycle).
    pub boots: usize,
    /// Whole-system power failures during serving.
    pub crashes: usize,
    /// Kills that landed inside stack-driven recovery passes.
    pub recovery_crashes: usize,
    /// Frames completed by stack-driven recovery across all cycles.
    pub recovered_frames: usize,
    /// Attribution of each crash: the region that tripped it.
    pub crash_sites: Vec<CrashSite>,
    /// The client-observed execution plus the store's chain witnesses.
    pub history: KvShardedHistory,
    /// The sharded exactly-once/linearizability verdict.
    pub verdict: KvVerdict,
    /// Client counters summed over the population.
    pub client_stats: ClientStats,
    /// Requests admitted into shard queues, summed over all boots.
    pub admitted: u64,
    /// Requests shed as explicit `Overloaded`, summed over all boots.
    pub shed: u64,
    /// Per-cycle SLO summaries (p50/p99/p999 per op class).
    pub slo: Vec<CycleSlo>,
    /// Aggregate NVRAM statistics across all regions and boots.
    pub stats: StatsSnapshot,
    /// Persist-order sanitizer findings (expected empty).
    pub psan_violations: Vec<PsanViolation>,
    /// Virtual time the campaign spanned.
    pub virtual_duration_ns: u64,
    /// Flight-recorder summary; `None` when recording was off.
    pub telemetry: Option<TelemetrySummary>,
}

impl ServerCampaignReport {
    /// `true` if the client-observed execution passed the sharded
    /// exactly-once check.
    #[must_use]
    pub fn is_linearizable(&self) -> bool {
        self.verdict.is_linearizable()
    }

    /// Total crash/recover cycles (serving kills + recovery kills).
    #[must_use]
    pub fn total_crashes(&self) -> usize {
        self.crashes + self.recovery_crashes
    }

    /// Renders the per-cycle SLO table (the form the campaign test
    /// prints under `--nocapture`).
    #[must_use]
    pub fn render_slo(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "  {:<7} {:<8} {:>7} {:>12} {:>12} {:>12}",
            "cycle", "class", "count", "p50", "p99", "p999"
        );
        for cycle in &self.slo {
            for s in &cycle.ops {
                let _ = writeln!(
                    out,
                    "  {:<7} {:<8} {:>7} {:>9.2}ms {:>9.2}ms {:>9.2}ms",
                    cycle.cycle,
                    s.class.label(),
                    s.count,
                    s.p50_ns as f64 / 1e6,
                    s.p99_ns as f64 / 1e6,
                    s.p999_ns as f64 / 1e6,
                );
            }
        }
        out
    }
}

/// Opens the per-shard request tables from their persisted roots.
fn open_req_tables(stripe: &PMemStripe) -> Result<Vec<KvRequestTable>, PError> {
    (0..stripe.len())
        .map(|s| {
            let base = stripe
                .region(s)
                .read_u64(POffset::new(SERVE_TABLE_ROOT_OFF))?;
            KvRequestTable::open(stripe.region(s).clone(), POffset::new(base))
        })
        .collect()
}

/// What ended one boot of the serving stack.
enum BootOutcome {
    /// Every client finished (done and acked) — the campaign is over.
    Quiescent,
    /// A power failure; the whole system is down and attributed.
    Crashed(Option<CrashSite>),
}

/// Exact order statistic from a sorted latency vector.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Folds the latencies each client recorded since its mark into one
/// per-class SLO entry, advancing the marks.
fn capture_cycle_slo(cycle: usize, clients: &[ClientSim], marks: &mut [usize]) -> Option<CycleSlo> {
    let mut by_class: Vec<Vec<u64>> = vec![Vec::new(); OpClass::ALL.len()];
    for (c, mark) in clients.iter().zip(marks.iter_mut()) {
        let lat = c.latencies();
        for &(class, ns) in &lat[*mark..] {
            let i = OpClass::ALL
                .iter()
                .position(|&k| k == class)
                .expect("every class is in ALL");
            by_class[i].push(ns);
        }
        *mark = lat.len();
    }
    let ops: Vec<SloStat> = by_class
        .into_iter()
        .enumerate()
        .filter(|(_, v)| !v.is_empty())
        .map(|(i, mut v)| {
            v.sort_unstable();
            SloStat {
                class: OpClass::ALL[i],
                count: v.len() as u64,
                p50_ns: percentile(&v, 0.5),
                p99_ns: percentile(&v, 0.99),
                p999_ns: percentile(&v, 0.999),
            }
        })
        .collect();
    (!ops.is_empty()).then_some(CycleSlo { cycle, ops })
}

fn transport_err(e: std::io::Error) -> PError {
    PError::Task(format!("serving transport: {e}"))
}

/// One boot's serving loop: jump the virtual clock to the next client
/// wake, move frames through the hub, admit, execute batch windows on
/// the runtime, deliver. Ends when every client finished or a power
/// failure takes the system down (whichever region observed it first
/// trips all the others, matching §2.2's whole-system model).
#[allow(clippy::too_many_arguments)]
fn serve_boot(
    cfg: &ServerCampaignConfig,
    core: &ServerCore,
    rt: &StripedRuntime,
    stripe: &PMemStripe,
    hub: &ChannelHub,
    conns: &[ChannelConn],
    clients: &mut [ClientSim],
    clock: &VirtualClock,
    cycle_seed: u64,
) -> Result<BootOutcome, PError> {
    // A crash surfacing on the direct admission path (a shard
    // fail-point firing under a descriptor persist) is a power failure
    // like any other: propagate it system-wide and attribute it.
    let trip_direct = || -> BootOutcome {
        let site = stripe.crash_site().map(|(shard, events)| CrashSite {
            region: CrashRegion::Shard(shard),
            events,
        });
        rt.crash_all(cycle_seed, 0.0);
        BootOutcome::Crashed(site)
    };
    // req_id → op for the `kind` echo in deferred Done responses;
    // volatile per boot on purpose — after a crash the retransmission
    // repopulates it.
    let mut in_flight: HashMap<u64, KvTaskOp> = HashMap::new();

    loop {
        // Jump to the earliest instant any client acts.
        let Some(wake) = clients.iter().filter_map(ClientSim::next_wake).min() else {
            return Ok(BootOutcome::Quiescent);
        };
        clock.advance_to(wake);
        let now = clock.now_ns();

        // Clients transmit (fresh ops, retransmissions, acks).
        for (c, conn) in clients.iter_mut().zip(conns) {
            if let Some(req) = c.poll(now) {
                if let RequestBody::Op(op) = req.body {
                    in_flight.insert(req.req_id, op);
                }
                conn.send(&req);
            }
        }

        // Admission: dedup, queue, or shed — every frame gets either an
        // immediate response or a seat in a batch window.
        while let Some(req) = hub.poll_request().map_err(transport_err)? {
            let resp = match req.body {
                RequestBody::Ack => match core.ack(req.req_id) {
                    Ok(_) => Some(Response::AckOk { req_id: req.req_id }),
                    Err(e) if e.is_crash() => return Ok(trip_direct()),
                    Err(e) => return Err(e),
                },
                RequestBody::Op(op) => match core.submit(req.req_id, op) {
                    Ok(Submission::Answered(answer)) => Some(Response::Done {
                        req_id: req.req_id,
                        kind: kind_of(op),
                        answer,
                    }),
                    Ok(Submission::Overloaded) => Some(Response::Overloaded { req_id: req.req_id }),
                    Ok(Submission::Stale) => Some(Response::Stale { req_id: req.req_id }),
                    Ok(Submission::Queued) => None,
                    Err(e) if e.is_crash() => return Ok(trip_direct()),
                    Err(e) => return Err(e),
                },
            };
            if let Some(resp) = resp {
                hub.respond(&resp);
            }
        }

        // Batch windows through the persistent stack: one task per
        // non-idle shard. A crash here lands inside a group commit, a
        // descriptor answer persist, or the stack discipline itself.
        let (tasks, ids) = core.drain_tasks();
        if !tasks.is_empty() {
            let report = rt.run_tasks(tasks);
            if report.crashed {
                return Ok(BootOutcome::Crashed(report.crash_site));
            }
            let answers = match core.answers_for(&ids) {
                Ok(answers) => answers,
                Err(e) if e.is_crash() => return Ok(trip_direct()),
                Err(e) => return Err(e),
            };
            for (req_id, answer) in answers {
                let resp = match answer {
                    Some(answer) => Response::Done {
                        req_id,
                        kind: in_flight.get(&req_id).map_or(0, |&op| kind_of(op)),
                        answer,
                    },
                    // The window did not answer this entry (its task
                    // erred); the client's timeout re-drives it.
                    None => Response::Retry { req_id },
                };
                hub.respond(&resp);
            }
        }

        // Service time passes, then responses land.
        clock.advance(cfg.service_tick_ns);
        let now = clock.now_ns();
        for (c, conn) in clients.iter_mut().zip(conns) {
            while let Some(resp) = conn.try_recv().map_err(transport_err)? {
                c.deliver(now, &resp);
            }
        }
    }
}

/// Runs one live-load serving crash campaign. Deterministic per
/// configuration at `workers == 1`.
///
/// # Errors
///
/// Propagates setup failures; power failures and their recoveries are
/// the experiment, not errors.
///
/// # Panics
///
/// Panics if a runtime worker thread panics.
///
/// # Example
///
/// ```
/// use pstack_chaos::{run_server_campaign, ServerCampaignConfig};
///
/// # fn main() -> Result<(), pstack_core::PError> {
/// let report = run_server_campaign(&ServerCampaignConfig::new(2, 6, 11))?;
/// assert!(report.is_linearizable());
/// assert_eq!(report.client_stats.completed, 12);
/// # Ok(())
/// # }
/// ```
pub fn run_server_campaign(cfg: &ServerCampaignConfig) -> Result<ServerCampaignReport, PError> {
    let session = cfg.telemetry.then(TraceSession::start);
    let mut report = run_server_campaign_inner(cfg)?;
    report.telemetry = session.map(|s| s.finish().summary());
    Ok(report)
}

#[allow(clippy::too_many_lines)]
fn run_server_campaign_inner(cfg: &ServerCampaignConfig) -> Result<ServerCampaignReport, PError> {
    assert!(cfg.clients > 0, "at least one client");
    assert!(cfg.ops_per_client > 0, "clients need work");
    assert!(cfg.shards > 0, "at least one shard");
    assert!(cfg.workers > 0, "at least one worker");
    assert!(cfg.key_space > 0, "empty key space");
    assert!(cfg.batch > 0 && cfg.queue_capacity > 0, "window shape");
    assert!(cfg.table_cap > 0, "request tables need slots");

    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let total_ops = (cfg.clients * cfg.ops_per_client) as u64;
    // Every op publishes at most one record; crash orphans add at most
    // one staged batch per window source per cycle (both budgets).
    let log_cap = cfg.log_cap_per_shard.unwrap_or(
        total_ops * 2 + (cfg.max_crashes as u64 * 2 + 1) * (cfg.batch as u64 + 1) * 2 + 64,
    );
    let nbuckets = cfg.key_space.max(4);

    // Buffered regions: descriptor persists are line-atomic and batch
    // windows group-commit, so kills land inside real multi-op windows.
    let mut stripe = PMemBuilder::new()
        .len(cfg.region_len)
        .psan(cfg.psan)
        .build_striped(cfg.shards);
    {
        let store = ShardedKvStore::format(stripe.regions(), nbuckets, log_cap, cfg.variant)?;
        for s in 0..cfg.shards {
            let table =
                KvRequestTable::format(stripe.region(s).clone(), store.heap(s), cfg.table_cap)?;
            stripe
                .region(s)
                .write_u64(POffset::new(SERVE_TABLE_ROOT_OFF), table.base().get())?;
            stripe
                .region(s)
                .flush(POffset::new(SERVE_TABLE_ROOT_OFF), 8)?;
        }
    }
    let mut control = PMemBuilder::new()
        .len(cfg.control_region_len)
        .psan(cfg.psan)
        .build_in_memory();
    {
        let stub = FunctionRegistry::new();
        StripedRuntime::format(
            control.clone(),
            stripe.clone(),
            RuntimeConfig::new(cfg.workers).stack_capacity(8 * 1024),
            &stub,
        )?;
    }

    // The boot-time registry builder: the serve function re-attached to
    // the freshly opened store and tables.
    let make_registry =
        |store: &ShardedKvStore, tables: &[KvRequestTable]| -> Result<FunctionRegistry, PError> {
            let mut registry = FunctionRegistry::new();
            registry.register(
                KV_SERVE_FUNC_ID,
                KvServeFunction::new(store.clone(), tables.to_vec()).into_arc(),
            )?;
            Ok(registry)
        };
    let attach = |control: &PMem,
                  stripe: &PMemStripe|
     -> Result<(ShardedKvStore, KvServeFunction, StripedRuntime), PError> {
        let mut store = ShardedKvStore::open(stripe.regions(), cfg.variant)?;
        store.set_pipeline(cfg.pipeline);
        let tables = open_req_tables(stripe)?;
        let registry = make_registry(&store, &tables)?;
        let rt = StripedRuntime::open(control.clone(), stripe.clone(), &registry)?;
        let exec = KvServeFunction::new(store.clone(), tables);
        Ok((store, exec, rt))
    };
    let reboot = |rt: &StripedRuntime| -> Result<(PMem, PMemStripe), PError> {
        let next = rt.reopen_all_with(|_, stripe| {
            let mut store = ShardedKvStore::open(stripe.regions(), cfg.variant)?;
            store.set_pipeline(cfg.pipeline);
            let tables = open_req_tables(stripe)?;
            make_registry(&store, &tables)
        })?;
        Ok((next.control().clone(), next.stripe().clone()))
    };

    // The client population and its wire.
    let clock = VirtualClock::new();
    let hub = ChannelHub::new();
    let mut clients: Vec<ClientSim> = (0..cfg.clients)
        .map(|i| {
            ClientSim::new(ClientConfig {
                client_id: i as u32 + 1,
                n_ops: cfg.ops_per_client,
                key_space: cfg.key_space,
                zipf_s: cfg.zipf_s,
                value_range: cfg.value_range,
                mix: cfg.op_mix,
                seed: cfg.seed ^ (i as u64 + 1).wrapping_mul(PHI),
                ..ClientConfig::default()
            })
        })
        .collect();
    let conns: Vec<ChannelConn> = (1..=cfg.clients as u32).map(|id| hub.connect(id)).collect();

    let mut boots = 0usize;
    let mut crashes = 0usize;
    let mut recovery_crashes = 0usize;
    let mut recovered_frames = 0usize;
    let mut crash_sites: Vec<CrashSite> = Vec::new();
    let mut stats = StatsSnapshot::default();
    let mut admitted = 0u64;
    let mut shed = 0u64;
    let mut slo: Vec<CycleSlo> = Vec::new();
    let mut marks = vec![0usize; clients.len()];

    loop {
        boots += 1;
        let (store, exec, rt) = attach(&control, &stripe)?;
        let rt = rt.crash_seed(cfg.seed ^ (boots as u64).wrapping_mul(PHI));
        // The front end is rebuilt every boot: queues are volatile by
        // design, and the clients' retries re-drive anything lost.
        let core = ServerCore::new(exec, cfg.queue_capacity, cfg.batch);

        // Arm kills while the budget lasts: shard fail-points with
        // window-sized countdowns, occasionally the control region so
        // the stack discipline is hit under live load too.
        if crashes + recovery_crashes < cfg.max_crashes {
            for s in 0..cfg.shards {
                if rng.random_bool(cfg.crash_prob) {
                    let countdown = rng.random_range(cfg.crash_window.0..=cfg.crash_window.1);
                    stripe
                        .region(s)
                        .arm_failpoint(FailPlan::after_events(countdown));
                }
            }
            if rng.random_bool(cfg.crash_prob / 2.0) {
                let countdown = rng.random_range(cfg.crash_window.0..=cfg.crash_window.1);
                control.arm_failpoint(FailPlan::after_events(countdown));
            }
        }

        let cycle_seed = cfg.seed ^ (crashes as u64 + 1).wrapping_mul(RECOVERY_SALT);
        let outcome = serve_boot(
            cfg,
            &core,
            &rt,
            &stripe,
            &hub,
            &conns,
            &mut clients,
            &clock,
            cycle_seed,
        )?;
        admitted += core.admitted();
        shed += core.shed();

        match outcome {
            BootOutcome::Quiescent => {
                stripe.disarm_all();
                control.disarm_failpoint();
                stats = stats + stripe.aggregate_stats();
                let mut psan_violations = stripe.psan_violations();
                psan_violations.extend(control.psan_violations());
                // The tail since the last crash closes the SLO table.
                slo.extend(capture_cycle_slo(crashes, &clients, &mut marks));

                let shards: Vec<Vec<Vec<KvWitnessRecord>>> = store
                    .snapshot_sharded()?
                    .into_iter()
                    .map(|chains| {
                        chains
                            .into_iter()
                            .map(|chain| chain.into_iter().map(KvWitnessRecord::from).collect())
                            .collect()
                    })
                    .collect();
                let ops = clients
                    .iter()
                    .flat_map(|c| c.observations().iter().cloned())
                    .collect();
                let history = KvShardedHistory { ops, shards };
                let nshards = cfg.shards;
                let verdict = check_kv_sharded_gen(
                    &history,
                    |key| shard_of(key, nshards),
                    &store.generations()?,
                );
                let mut client_stats = ClientStats::default();
                for c in &clients {
                    let s = c.stats();
                    client_stats.completed += s.completed;
                    client_stats.retransmits += s.retransmits;
                    client_stats.overloads += s.overloads;
                    client_stats.retry_signals += s.retry_signals;
                    client_stats.acks_sent += s.acks_sent;
                    client_stats.stale_signals += s.stale_signals;
                }
                return Ok(ServerCampaignReport {
                    boots,
                    crashes,
                    recovery_crashes,
                    recovered_frames,
                    crash_sites,
                    history,
                    verdict,
                    client_stats,
                    admitted,
                    shed,
                    slo,
                    stats,
                    psan_violations,
                    virtual_duration_ns: clock.now_ns(),
                    telemetry: None,
                });
            }
            BootOutcome::Crashed(site) => {
                crashes += 1;
                crash_sites.extend(site);
                stats = stats + stripe.aggregate_stats();
                slo.extend(capture_cycle_slo(crashes - 1, &clients, &mut marks));
                (control, stripe) = reboot(&rt)?;

                // Stack-driven recovery, possibly killed mid-pass:
                // reopen and retry until one pass completes.
                loop {
                    let (store, _exec, rt) = attach(&control, &stripe)?;
                    let rt = rt.crash_seed(
                        cfg.seed ^ (recovery_crashes as u64 + 1).wrapping_mul(RECOVERY_SALT),
                    );
                    if crashes + recovery_crashes < cfg.max_crashes * 2
                        && rng.random_bool(cfg.recovery_crash_prob)
                    {
                        let target = rng.random_range(0..=cfg.shards as u64) as usize;
                        let countdown = rng.random_range(2..=40);
                        let plan = FailPlan::after_events(countdown);
                        if target == cfg.shards {
                            control.arm_failpoint(plan);
                        } else {
                            stripe.region(target).arm_failpoint(plan);
                        }
                    }
                    let prelude_store = store.clone();
                    let result = rt.recover_with(RecoveryMode::Parallel, |shard, _region| {
                        // Per-shard evidence fan-out before any frame
                        // replays — the witness the recover duals' tag
                        // scans run against.
                        prelude_store.shard(shard).snapshot().map(|_| ())
                    });
                    match result {
                        Ok(rep) => {
                            stripe.disarm_all();
                            control.disarm_failpoint();
                            recovered_frames += rep.total_frames();
                            break;
                        }
                        Err(e) if e.is_crash() => {
                            recovery_crashes += 1;
                            crash_sites.extend(rt.last_crash_site());
                            stats = stats + stripe.aggregate_stats();
                            (control, stripe) = reboot(&rt)?;
                        }
                        Err(e) => return Err(e),
                    }
                }

                // The wire dies with the machine; the clients see a
                // reset, back off, and retransmit under the contract.
                hub.reset();
                clock.advance(cfg.reboot_penalty_ns);
                let now = clock.now_ns();
                for c in &mut clients {
                    c.on_crash(now);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_campaign_exactly_once_under_live_load() {
        let report = run_server_campaign(&ServerCampaignConfig::new(4, 20, 33)).unwrap();
        assert!(report.is_linearizable(), "verdict: {:?}", report.verdict);
        assert!(report.crashes > 0, "kills must land under live load");
        // Zero lost acks: the campaign only terminates quiescent, and
        // every client completed its full quota.
        assert_eq!(report.client_stats.completed, 80);
        assert_eq!(report.history.ops.len(), 80);
        assert!(
            report.client_stats.acks_sent >= report.client_stats.completed,
            "acks are at-least-once"
        );
        assert!(
            report.client_stats.retry_signals > 0,
            "crashes must be client-visible only as Retry signals"
        );
        assert!(
            report.psan_violations.is_empty(),
            "sanitizer findings: {:?}",
            report.psan_violations
        );
        assert!(!report.slo.is_empty(), "per-cycle SLO summaries expected");
        assert!(
            report.slo.iter().all(|c| !c.ops.is_empty()),
            "every reported cycle carries percentiles"
        );
        println!(
            "server campaign: {} boots, {} crashes (+{} in recovery), {} admitted, {} shed",
            report.boots, report.crashes, report.recovery_crashes, report.admitted, report.shed
        );
        println!("{}", report.render_slo());
    }

    #[test]
    fn server_campaign_two_hundred_live_load_cycles() {
        // The acceptance gate: ≥ 200 live-load crash/recover cycles
        // across seeds — zero lost acks, zero duplicate effects, zero
        // PSan violations, SLO percentiles present in every campaign.
        let mut cycles = 0usize;
        let mut campaigns = 0usize;
        let mut recovery_kills = 0usize;
        for seed in 0u64.. {
            let cfg = ServerCampaignConfig::new(4, 16, 4000 + seed);
            let report = run_server_campaign(&cfg).unwrap();
            assert!(
                report.is_linearizable(),
                "seed {seed}: verdict {:?}",
                report.verdict
            );
            assert_eq!(report.client_stats.completed, 64, "seed {seed}: lost acks");
            assert!(
                report.psan_violations.is_empty(),
                "seed {seed}: sanitizer findings: {:?}",
                report.psan_violations
            );
            assert!(!report.slo.is_empty(), "seed {seed}: no SLO summary");
            cycles += report.total_crashes();
            recovery_kills += report.recovery_crashes;
            campaigns += 1;
            if cycles >= 200 {
                break;
            }
        }
        assert!(
            cycles >= 200,
            "only {cycles} crash cycles across {campaigns} campaigns"
        );
        assert!(
            recovery_kills > 0,
            "kills must land inside recovery passes too"
        );
        println!("server campaign gate: {cycles} cycles across {campaigns} campaigns");
    }

    #[test]
    fn pipelined_server_campaign_exactly_once_under_live_load() {
        // The same exactly-once contract with batch windows riding the
        // async flush pipeline: windows of all shards are staged and
        // begun before any commits, so kills land while several shards
        // hold un-awaited flights.
        let cfg = ServerCampaignConfig::new(4, 20, 33).pipeline(true);
        let report = run_server_campaign(&cfg).unwrap();
        assert!(report.is_linearizable(), "verdict: {:?}", report.verdict);
        assert!(report.crashes > 0, "kills must land under live load");
        assert_eq!(report.client_stats.completed, 80);
        assert!(
            report.stats.async_flushes > 0,
            "batch windows never rode the pipeline"
        );
        assert!(
            report.psan_violations.is_empty(),
            "sanitizer findings: {:?}",
            report.psan_violations
        );
    }

    #[test]
    fn server_campaigns_are_deterministic_per_seed() {
        let cfg = ServerCampaignConfig::new(3, 12, 77);
        let a = run_server_campaign(&cfg).unwrap();
        let b = run_server_campaign(&cfg).unwrap();
        assert_eq!(a.history, b.history);
        assert_eq!(a.crashes, b.crashes);
        assert_eq!(a.recovery_crashes, b.recovery_crashes);
        assert_eq!(a.boots, b.boots);
        assert_eq!(a.slo, b.slo);
        assert_eq!(a.client_stats, b.client_stats);
        assert_eq!(a.virtual_duration_ns, b.virtual_duration_ns);
    }

    #[test]
    fn server_campaign_sheds_overload_explicitly() {
        // A queue of 1 under 6 clients: load must shed as Overloaded
        // responses the clients observe — never a drop, never a panic —
        // and still complete exactly once.
        let cfg = ServerCampaignConfig::new(6, 10, 5).queue_capacity(1);
        let report = run_server_campaign(&cfg).unwrap();
        assert!(report.is_linearizable(), "verdict: {:?}", report.verdict);
        assert!(report.shed > 0, "tiny queue must shed");
        assert!(
            report.client_stats.overloads > 0,
            "sheds must surface as Overloaded responses"
        );
        assert_eq!(report.client_stats.completed, 60, "sheds lose nothing");
    }

    #[test]
    fn noscan_server_campaign_is_caught() {
        // Negative control: with the evidence scan removed, a replayed
        // window double-applies mutations whose records were already
        // published — the client-observed history then carries
        // duplicate tags and the checker must say so. Detection is
        // probabilistic per seed, so scan a crash-heavy configuration.
        let mut detected = 0usize;
        let mut runs = 0usize;
        for seed in 0u64..24 {
            if detected >= 2 {
                break;
            }
            let cfg = ServerCampaignConfig {
                max_crashes: 16,
                crash_prob: 0.8,
                crash_window: (4, 40),
                recovery_crash_prob: 0.5,
                ..ServerCampaignConfig::new(4, 16, 6000 + seed)
            }
            .variant(KvVariant::NoScan);
            let report = run_server_campaign(&cfg).unwrap();
            runs += 1;
            if !report.is_linearizable() {
                detected += 1;
            }
        }
        assert!(
            detected > 0,
            "no exactly-once violation detected in {runs} no-scan runs"
        );
    }
}
