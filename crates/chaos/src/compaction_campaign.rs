//! The compaction crash campaign: §5.2's kill-and-recover methodology
//! aimed at the **generational log rewrite** instead of the workload.
//!
//! A sharded store is formatted with a deliberately tiny per-shard log,
//! so sustained traffic repeatedly exhausts shards; the driver watches
//! the per-shard headroom signal ([`ShardLogUsage::headroom_fraction`])
//! and compacts a shard ([`ShardedKvStore::compact_shard`]) whenever it
//! falls below the configured threshold. Kills land in three places the
//! generational design must survive:
//!
//! * **inside the rewrite** — fail-point countdowns shorter than the
//!   carry-copy's event footprint, so the crash interrupts the new
//!   generation mid-build (and, at the right countdowns, exactly **at
//!   the root swap** — the countdown sweep crosses the swap's own
//!   persistence events);
//! * **at the retirement mark** — after the swap but before the old
//!   generation is stamped retired;
//! * **during post-swap recovery** — the evidence-scanning
//!   [`ShardedKvStore::recover_compact_shard`] pass is itself killed
//!   and re-run until it converges.
//!
//! The collected execution is checked by the generation-aware
//! [`check_kv_sharded_gen`]: per-shard chains spanning every
//! generation, carry-overs validated against the boundary state, no
//! live key dropped by any swap. The campaign's headline is the
//! acceptance criterion of PR 5: shards accept strictly more lifetime
//! mutations than their formatted `log_cap` — the store no longer
//! bricks at capacity.
//!
//! The driver is single-threaded (compaction requires per-shard
//! quiescence, which one driver provides trivially), so campaigns are
//! deterministic per seed.
//!
//! [`check_kv_sharded_gen`]: pstack_verify::check_kv_sharded_gen

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pstack_core::PError;
use pstack_kv::{shard_of, KvOpTable, KvVariant, ShardedKvStore, ShardedKvTaskFunction};
use pstack_nvram::{FailPlan, PMemBuilder, PMemStripe, POffset, PsanViolation};
use pstack_verify::{check_kv_sharded_gen, KvShardedHistory, KvVerdict};

use pstack_telemetry::{TelemetrySummary, TraceSession};
use std::time::{Duration, Instant};

use crate::kv_campaign::ShardLogUsage;
use crate::sharded_kv_campaign::{
    build_sharded_history, generate_kv_ops, open_tables, run_shard_round, TABLE_ROOT_OFF,
};

/// Configuration of one compaction crash campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactionCampaignConfig {
    /// Number of KV operations across all shards.
    pub n_ops: usize,
    /// Number of shards (independent regions).
    pub shards: usize,
    /// Keys are drawn from `0..key_space` — keep it small so the live
    /// set stays far below the history and compaction reclaims a lot.
    pub key_space: u64,
    /// Inclusive range put/cas values are drawn from.
    pub value_range: (i64, i64),
    /// Probability weights of (put, get, delete); the rest are cas.
    pub op_mix: (f64, f64, f64),
    /// Master seed; campaigns are deterministic given the seed.
    pub seed: u64,
    /// Correct NSRL recovery or the no-scan bug.
    pub variant: KvVariant,
    /// `Some(k)`: buffered regions, group commits of up to `k`;
    /// `None`: eager regions.
    pub group_commit: Option<usize>,
    /// The deliberately small per-shard log capacity — the campaign
    /// exists to push every shard past it.
    pub log_cap_per_shard: u64,
    /// Compact a shard when its headroom fraction falls below this
    /// (`0.0` disables compaction — the report then *names* the shard
    /// that should have compacted via
    /// [`ShardedKvCampaignReport::compaction_candidate`]-style logic).
    ///
    /// [`ShardedKvCampaignReport::compaction_candidate`]:
    /// crate::ShardedKvCampaignReport::compaction_candidate
    pub compact_threshold: f64,
    /// Total kill budget (workload + compaction + recovery kills).
    pub max_crashes: usize,
    /// Probability of arming a kill inside each compaction window.
    pub compaction_crash_prob: f64,
    /// Probability of arming a kill in each shard region per workload
    /// round.
    pub workload_crash_prob: f64,
    /// Fail-point countdown for workload kills, drawn from this range.
    pub crash_window: (u64, u64),
    /// Probability of arming a kill inside each compaction-recovery
    /// pass.
    pub recovery_crash_prob: f64,
    /// Descriptors driven per shard per round — kept small so headroom
    /// checks interleave with traffic and shards never silently brick
    /// between checks.
    pub ops_per_round: usize,
    /// NVRAM region length *per shard* (also bounds how many retired
    /// generations the shard's heap can retain).
    pub region_len: usize,
    /// Runs the campaign under the persist-order sanitizer; defaults to
    /// the `psan` crate feature.
    pub psan: bool,
    /// Record the campaign with the flight recorder and attach the
    /// collected summary to the report. Defaults to the `telemetry`
    /// crate feature.
    pub telemetry: bool,
}

impl CompactionCampaignConfig {
    /// Defaults: 2 shards whose 32-slot logs a 300-op workload over 10
    /// hot keys overruns several times, compaction below 35% headroom,
    /// kills inside roughly half of all compaction windows.
    #[must_use]
    pub fn new(n_ops: usize, seed: u64) -> Self {
        CompactionCampaignConfig {
            n_ops,
            shards: 2,
            key_space: 10,
            value_range: (-100, 100),
            op_mix: (0.55, 0.2, 0.1),
            seed,
            variant: KvVariant::Nsrl,
            group_commit: Some(4),
            log_cap_per_shard: 32,
            compact_threshold: 0.35,
            max_crashes: 10,
            compaction_crash_prob: 0.5,
            workload_crash_prob: 0.25,
            crash_window: (4, 60),
            recovery_crash_prob: 0.4,
            ops_per_round: 8,
            region_len: 1 << 20,
            psan: cfg!(feature = "psan"),
            telemetry: cfg!(feature = "telemetry"),
        }
    }

    /// Selects the recovery variant.
    #[must_use]
    pub fn variant(mut self, variant: KvVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Selects the commit mode.
    #[must_use]
    pub fn group_commit(mut self, batch: Option<usize>) -> Self {
        self.group_commit = batch;
        self
    }
}

/// Outcome of a compaction campaign.
#[derive(Debug, Clone)]
pub struct CompactionCampaignReport {
    /// Driver rounds executed.
    pub rounds: usize,
    /// Kills that landed in workload (non-compaction) windows.
    pub crashes: usize,
    /// Kills that landed inside compaction windows — the rewrite, the
    /// root swap, or the retirement mark.
    pub compaction_crashes: usize,
    /// Kills that landed inside compaction-*recovery* passes.
    pub recovery_crashes: usize,
    /// Every committed compaction as `(shard, generation committed)`,
    /// in commit order — the report names the shard that triggered
    /// each one.
    pub compactions: Vec<(usize, u64)>,
    /// The collected execution (answers + per-shard generational chain
    /// witness).
    pub history: KvShardedHistory,
    /// The generation-aware sharded linearizability verdict.
    pub verdict: KvVerdict,
    /// Per-shard active generation numbers at the end.
    pub generations: Vec<u64>,
    /// Per-shard log usage of the **active** generations at the end.
    pub log_usage: Vec<ShardLogUsage>,
    /// The per-shard capacity the store was formatted with.
    pub original_log_cap: u64,
    /// Per shard: real (non-carried) records published across all
    /// generations — lifetime mutations the shard absorbed.
    pub published_per_shard: Vec<usize>,
    /// Persist-order sanitizer findings (empty when PSan is off, and —
    /// for the correct variant — when it is on).
    pub psan_violations: Vec<PsanViolation>,
    /// Attribution of every kill, in reboot order: the region index
    /// that tripped first and its frozen persistence-event counter.
    pub crash_sites: Vec<(usize, u64)>,
    /// Wall-clock duration of each crash→recovery cycle — from the
    /// whole-system reboot to the pass (compaction-recovery dual or
    /// workload recovery round) that completed. Kills *inside*
    /// recovery extend the cycle they interrupted.
    pub recovery_durations: Vec<Duration>,
    /// Flight-recorder summary; `None` when recording was off.
    pub telemetry: Option<TelemetrySummary>,
}

impl CompactionCampaignReport {
    /// `true` if the execution passed the generation-aware check.
    #[must_use]
    pub fn is_linearizable(&self) -> bool {
        self.verdict.is_linearizable()
    }

    /// Total crash/recover cycles the campaign survived.
    #[must_use]
    pub fn total_crashes(&self) -> usize {
        self.crashes + self.compaction_crashes + self.recovery_crashes
    }

    /// The acceptance headline: `true` if some shard published strictly
    /// more lifetime mutations than its formatted log capacity — the
    /// store outlived the bound that used to brick it.
    #[must_use]
    pub fn outlived_original_capacity(&self) -> bool {
        self.published_per_shard
            .iter()
            .any(|&p| p as u64 > self.original_log_cap)
    }

    /// The shard with the least headroom below `threshold` — who
    /// triggered (or, with compaction disabled, *should* trigger) the
    /// next compaction.
    #[must_use]
    pub fn compaction_candidate(&self, threshold: f64) -> Option<usize> {
        ShardLogUsage::compaction_candidate(&self.log_usage, threshold)
    }
}

/// Runs one full compaction crash campaign. Deterministic per
/// configuration (single driver thread).
///
/// # Errors
///
/// Propagates setup failures; the kill/restart loop itself handles
/// crashes as part of the experiment.
///
/// # Example
///
/// ```
/// use pstack_chaos::{run_compaction_campaign, CompactionCampaignConfig};
///
/// # fn main() -> Result<(), pstack_core::PError> {
/// let report = run_compaction_campaign(&CompactionCampaignConfig::new(120, 7))?;
/// assert!(report.is_linearizable());
/// assert!(report.outlived_original_capacity());
/// # Ok(())
/// # }
/// ```
pub fn run_compaction_campaign(
    cfg: &CompactionCampaignConfig,
) -> Result<CompactionCampaignReport, PError> {
    let session = cfg.telemetry.then(TraceSession::start);
    let mut report = run_compaction_campaign_inner(cfg)?;
    report.telemetry = session.map(|s| s.finish().summary());
    Ok(report)
}

fn run_compaction_campaign_inner(
    cfg: &CompactionCampaignConfig,
) -> Result<CompactionCampaignReport, PError> {
    assert!(cfg.shards > 0, "at least one shard");
    assert!(cfg.key_space > 0, "empty key space");
    assert!(cfg.log_cap_per_shard > 0, "empty log");
    let (lo, hi) = cfg.value_range;
    assert!(lo <= hi, "empty value range");

    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let ops = generate_kv_ops(
        cfg.n_ops,
        cfg.key_space,
        cfg.value_range,
        cfg.op_mix,
        &mut rng,
    );
    let per_shard = ShardedKvTaskFunction::partition_ops_padded(&ops, cfg.shards);
    let nbuckets = cfg.key_space.max(4);
    let batch = cfg.group_commit.unwrap_or(1).max(1);

    let mut builder = PMemBuilder::new().len(cfg.region_len).psan(cfg.psan);
    if cfg.group_commit.is_none() {
        builder = builder.eager_flush(true);
    }
    let mut stripe = builder.build_striped(cfg.shards);
    {
        let store = ShardedKvStore::format(
            stripe.regions(),
            nbuckets,
            cfg.log_cap_per_shard,
            cfg.variant,
        )?;
        for (s, shard_ops) in per_shard.iter().enumerate() {
            let table = KvOpTable::format(stripe.region(s).clone(), store.heap(s), shard_ops)?;
            stripe
                .region(s)
                .write_u64(POffset::new(TABLE_ROOT_OFF), table.base().get())?;
            stripe.region(s).flush(POffset::new(TABLE_ROOT_OFF), 8)?;
        }
    }

    let mut rounds = 0usize;
    let mut crashes = 0usize;
    let mut compaction_crashes = 0usize;
    let mut recovery_crashes = 0usize;
    let mut compactions: Vec<(usize, u64)> = Vec::new();
    let mut crash_sites: Vec<(usize, u64)> = Vec::new();
    let mut recovery_durations: Vec<Duration> = Vec::new();
    // Set when a workload kill rebooted the stripe: the next workload
    // round drives the recovery duals, and its crash-free completion
    // closes the cycle.
    let mut recovery_started: Option<Instant> = None;
    let mut had_crash = false;

    // Reboots the whole stripe after a kill (whole-system failure,
    // survival probability 0 for determinism) and returns the site of
    // the kill that forced it — read before the failure propagates
    // stripe-wide, while the lowest crashed index still names the
    // region that tripped first.
    let reboot =
        |stripe: &mut PMemStripe, salt: u64, seed: u64| -> Result<Option<(usize, u64)>, PError> {
            let site = stripe.crash_site();
            stripe.crash_all(seed ^ salt, 0.0);
            let _phase = pstack_telemetry::phase("recovery.reopen");
            *stripe = stripe.reopen_all()?;
            Ok(site)
        };

    'campaign: loop {
        rounds += 1;
        let store = ShardedKvStore::open(stripe.regions(), cfg.variant)?;
        let tables = open_tables(&stripe)?;
        let budget_left =
            |crashes: usize, cc: usize, rc: usize| crashes + cc + rc < cfg.max_crashes;

        // Maintenance first: compact any shard whose headroom signal
        // fired, with kills inside the window and inside recovery.
        for s in 0..cfg.shards {
            let usage = ShardLogUsage {
                shard: s,
                reserved: store.shard(s).log_reserved()?,
                capacity: store.shard(s).log_capacity()?,
            };
            if cfg.compact_threshold <= 0.0 || usage.headroom_fraction() >= cfg.compact_threshold {
                continue;
            }
            let from_gen = store.shard(s).generation()?;
            if budget_left(crashes, compaction_crashes, recovery_crashes)
                && rng.random_bool(cfg.compaction_crash_prob)
            {
                // Countdowns 0..=30 sweep the whole window: rewrite
                // events first, then the swap's slot+selector persists,
                // then the retirement mark.
                let countdown = rng.random_range(0..=30);
                stripe
                    .region(s)
                    .arm_failpoint(FailPlan::after_events(countdown));
            }
            match store.compact_shard(s) {
                Ok(stats) => {
                    stripe.region(s).disarm_failpoint();
                    compactions.push((s, stats.to_gen));
                }
                Err(e) if e.is_crash() => {
                    compaction_crashes += 1;
                    had_crash = true;
                    let recovery_t0 = Instant::now();
                    crash_sites.extend(reboot(
                        &mut stripe,
                        0x5153 ^ compaction_crashes as u64,
                        cfg.seed,
                    )?);
                    // The recovery dual, itself under fire: re-run until
                    // a pass completes. Evidence (the root cell) decides
                    // whether the interrupted swap committed.
                    loop {
                        let store = ShardedKvStore::open(stripe.regions(), cfg.variant)?;
                        if budget_left(crashes, compaction_crashes, recovery_crashes)
                            && rng.random_bool(cfg.recovery_crash_prob)
                        {
                            let countdown = rng.random_range(0..=20);
                            stripe
                                .region(s)
                                .arm_failpoint(FailPlan::after_events(countdown));
                        }
                        match store.recover_compact_shard(s, from_gen) {
                            Ok(_committed_before) => {
                                stripe.region(s).disarm_failpoint();
                                compactions.push((s, store.shard(s).generation()?));
                                recovery_durations.push(recovery_t0.elapsed());
                                break;
                            }
                            Err(e) if e.is_crash() => {
                                recovery_crashes += 1;
                                crash_sites.extend(reboot(
                                    &mut stripe,
                                    0x5245 ^ recovery_crashes as u64,
                                    cfg.seed,
                                )?);
                            }
                            Err(e) => return Err(e),
                        }
                    }
                    continue 'campaign; // fresh handles after the reboot
                }
                Err(e) => return Err(e),
            }
        }

        // Quiescent?
        if tables
            .iter()
            .map(KvOpTable::pending)
            .collect::<Result<Vec<_>, _>>()?
            .iter()
            .all(Vec::is_empty)
        {
            let generations = store.generations()?;
            let history = build_sharded_history(&store, &tables)?;
            let nshards = cfg.shards;
            let verdict =
                check_kv_sharded_gen(&history, |key| shard_of(key, nshards), &generations);
            let log_usage = store
                .log_reserved_per_shard()?
                .into_iter()
                .zip(store.log_capacities()?)
                .enumerate()
                .map(|(shard, (reserved, capacity))| ShardLogUsage {
                    shard,
                    reserved,
                    capacity,
                })
                .collect();
            let published_per_shard = history
                .shards
                .iter()
                .map(|chains| chains.iter().flatten().filter(|r| !r.compacted).count())
                .collect();
            if let Some(started) = recovery_started.take() {
                recovery_durations.push(started.elapsed());
            }
            return Ok(CompactionCampaignReport {
                rounds,
                crashes,
                compaction_crashes,
                recovery_crashes,
                compactions,
                history,
                verdict,
                generations,
                log_usage,
                original_log_cap: cfg.log_cap_per_shard,
                published_per_shard,
                psan_violations: stripe.psan_violations(),
                crash_sites,
                recovery_durations,
                telemetry: None,
            });
        }

        // Workload: a bounded slice of every shard's pending
        // descriptors, so the headroom check above interleaves with
        // traffic. Kills land at flush boundaries as usual.
        if budget_left(crashes, compaction_crashes, recovery_crashes) {
            for s in 0..cfg.shards {
                if rng.random_bool(cfg.workload_crash_prob) {
                    let countdown = rng.random_range(cfg.crash_window.0..=cfg.crash_window.1);
                    stripe
                        .region(s)
                        .arm_failpoint(FailPlan::after_events(countdown));
                }
            }
        }
        let mut any_crash = false;
        for (s, table) in tables.iter().enumerate() {
            let mut shard_rng = SmallRng::seed_from_u64(
                cfg.seed
                    ^ (rounds as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (s as u64 + 1).wrapping_mul(0xD134_2543_DE82_EF95),
            );
            match run_shard_round(
                &store,
                s,
                table,
                batch,
                had_crash,
                &mut shard_rng,
                Some(cfg.ops_per_round),
                1,
            ) {
                Ok(true) => any_crash = true,
                Ok(false) => {}
                Err(e) => return Err(e),
            }
        }
        if any_crash {
            crashes += 1;
            had_crash = true;
            recovery_started.get_or_insert_with(Instant::now);
            crash_sites.extend(reboot(&mut stripe, 0x574B ^ crashes as u64, cfg.seed)?);
        } else {
            if let Some(started) = recovery_started.take() {
                recovery_durations.push(started.elapsed());
            }
            stripe.disarm_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compaction_campaign_outlives_capacity_and_verifies() {
        let report = run_compaction_campaign(&CompactionCampaignConfig::new(300, 21)).unwrap();
        assert!(report.is_linearizable(), "verdict: {:?}", report.verdict);
        assert!(
            report.outlived_original_capacity(),
            "published {:?} vs capacity {} — the whole point is to cross it",
            report.published_per_shard,
            report.original_log_cap
        );
        assert!(!report.compactions.is_empty(), "compactions must trigger");
        assert!(
            report.generations.iter().any(|&g| g > 0),
            "generations: {:?}",
            report.generations
        );
        assert!(
            report.total_crashes() > 0,
            "the campaign should experience kills"
        );
        assert!(
            report.psan_violations.is_empty(),
            "sanitizer findings: {:?}",
            report.psan_violations
        );
        // Every compaction names its shard, and the committed
        // generations per shard are strictly increasing.
        for s in 0..2 {
            let gens: Vec<u64> = report
                .compactions
                .iter()
                .filter(|&&(shard, _)| shard == s)
                .map(|&(_, g)| g)
                .collect();
            assert!(
                gens.windows(2).all(|w| w[0] < w[1]),
                "shard {s} generations out of order: {gens:?}"
            );
        }
    }

    #[test]
    fn compaction_campaigns_are_deterministic_per_seed() {
        let cfg = CompactionCampaignConfig::new(200, 5);
        let a = run_compaction_campaign(&cfg).unwrap();
        let b = run_compaction_campaign(&cfg).unwrap();
        assert_eq!(a.history, b.history);
        assert_eq!(a.compactions, b.compactions);
        assert_eq!(a.crashes, b.crashes);
        assert_eq!(a.compaction_crashes, b.compaction_crashes);
        assert_eq!(a.recovery_crashes, b.recovery_crashes);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn eager_compaction_campaign_passes_too() {
        let cfg = CompactionCampaignConfig::new(250, 9).group_commit(None);
        let report = run_compaction_campaign(&cfg).unwrap();
        assert!(report.is_linearizable(), "verdict: {:?}", report.verdict);
        assert!(report.outlived_original_capacity());
        assert!(!report.compactions.is_empty());
    }

    #[test]
    fn disabled_compaction_names_the_shard_that_should_trigger() {
        // threshold 0 disables the compactor; the hot shard fills and
        // the report names it as the candidate — the "should trigger"
        // half of the satellite.
        let mut cfg = CompactionCampaignConfig::new(80, 11);
        cfg.compact_threshold = 0.0;
        cfg.key_space = 1; // one key → one hot shard
        cfg.op_mix = (1.0, 0.0, 0.0); // all puts
        cfg.max_crashes = 0;
        cfg.log_cap_per_shard = 8;
        let report = run_compaction_campaign(&cfg).unwrap();
        assert!(
            report.is_linearizable(),
            "capacity-rejected puts are legal answers: {:?}",
            report.verdict
        );
        assert!(report.compactions.is_empty(), "compaction was disabled");
        let hot = shard_of(0, 2);
        assert_eq!(report.compaction_candidate(0.5), Some(hot));
        assert_eq!(report.generations, vec![0, 0]);
        assert!(!report.outlived_original_capacity());
    }

    #[test]
    fn psan_flags_the_no_persist_before_swap_variant() {
        use pstack_nvram::PsanViolationKind;
        // The seeded bug skips the generation's persist barrier before
        // the root swap. Recovery still converges (the verifier stays
        // green without crashes), but the sanitizer sees the swap
        // publish over dirty lines — the bug the verifier cannot catch.
        let mut cfg =
            CompactionCampaignConfig::new(300, 21).variant(KvVariant::NoPersistBeforeSwap);
        cfg.max_crashes = 0; // deterministic: violations fire at swap time
        cfg.psan = true;
        let report = run_compaction_campaign(&cfg).unwrap();
        assert!(
            report.is_linearizable(),
            "without crashes the buggy variant still verifies: {:?}",
            report.verdict
        );
        assert!(!report.compactions.is_empty(), "compactions must trigger");
        let unordered: Vec<_> = report
            .psan_violations
            .iter()
            .filter(|v| matches!(v.kind, PsanViolationKind::UnorderedCommit))
            .collect();
        assert!(
            !unordered.is_empty(),
            "the skipped persist barrier must surface as unordered commits: {:?}",
            report.psan_violations
        );
        for v in &unordered {
            assert!(
                v.region.starts_with("shard-"),
                "attribution names the shard region: {v:?}"
            );
            assert_eq!(
                v.op_label, "kv.compact",
                "attribution names the compaction op: {v:?}"
            );
        }
    }

    #[test]
    fn two_hundred_compaction_crash_cycles_lose_nothing() {
        // The PR 5 acceptance gate: ≥ 200 crash/recover cycles across
        // seeds, with kills inside compaction rewrites, at the root
        // swap, and inside post-swap recovery passes — zero violations
        // of the generation-aware check, and capacity crossed anyway.
        let mut cycles = 0usize;
        let mut compaction_kills = 0usize;
        let mut recovery_kills = 0usize;
        let mut outlived = 0usize;
        let mut campaigns = 0usize;
        for seed in 0.. {
            let mut cfg = CompactionCampaignConfig::new(260, 9000 + seed);
            cfg.max_crashes = 18;
            cfg.compaction_crash_prob = 0.7;
            cfg.recovery_crash_prob = 0.5;
            cfg.workload_crash_prob = 0.35;
            let report = run_compaction_campaign(&cfg).unwrap();
            assert!(
                report.is_linearizable(),
                "seed {seed}: violation after {} crashes ({} in compaction windows): {:?}",
                report.total_crashes(),
                report.compaction_crashes,
                report.verdict
            );
            assert!(
                report.psan_violations.is_empty(),
                "seed {seed}: sanitizer findings: {:?}",
                report.psan_violations
            );
            cycles += report.total_crashes();
            compaction_kills += report.compaction_crashes;
            recovery_kills += report.recovery_crashes;
            outlived += usize::from(report.outlived_original_capacity());
            campaigns += 1;
            if cycles >= 200 {
                break;
            }
        }
        assert!(
            cycles >= 200,
            "only {cycles} crash/recover cycles across {campaigns} campaigns"
        );
        assert!(
            compaction_kills > 0,
            "kills must land inside compaction windows"
        );
        assert!(
            recovery_kills > 0,
            "kills must land inside compaction recovery passes"
        );
        assert!(
            outlived * 10 >= campaigns * 9,
            "nearly every campaign should cross its original capacity \
             ({outlived}/{campaigns})"
        );
    }
}
