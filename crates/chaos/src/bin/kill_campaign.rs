//! Real-`kill(1)` crash campaign over a file-backed NVRAM image.
//!
//! ```text
//! kill_campaign drive <image> [n_ops] [seed] [--buggy] [--narrow]
//! kill_campaign child-run <image>        # spawned by the driver
//! kill_campaign child-recover <image>    # spawned by the driver
//! ```
//!
//! `drive` formats the image, then repeatedly spawns this same binary
//! in `child-run` mode and SIGKILLs it at a random moment, running
//! `child-recover` processes (also candidates for killing — repeated
//! failures) after each kill, until every CAS descriptor completed.
//! Finally it prints the §5.1 serializability verdict.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pstack_chaos::{
    child_recover, child_run, run_kill_campaign, ChildOutcome, KillCampaignConfig, KillOutcome,
};
use pstack_recoverable::{CasVariant, QueueVariant};

fn usage() -> ExitCode {
    eprintln!(
        "usage: kill_campaign drive <image> [n_ops] [seed] [--buggy] [--narrow] [--queue]\n\
         \x20      kill_campaign child-run <image>\n\
         \x20      kill_campaign child-recover <image>"
    );
    ExitCode::from(2)
}

fn drive(image: PathBuf, mut rest: std::env::Args) -> ExitCode {
    let mut n_ops = 60usize;
    let mut seed = 42u64;
    let mut buggy = false;
    let mut narrow = false;
    let mut queue = false;
    let mut positional = 0;
    for arg in rest.by_ref() {
        match arg.as_str() {
            "--buggy" => buggy = true,
            "--narrow" => narrow = true,
            "--queue" => queue = true,
            other => {
                let parsed: Result<u64, _> = other.parse();
                match (positional, parsed) {
                    (0, Ok(v)) => n_ops = v as usize,
                    (1, Ok(v)) => seed = v,
                    _ => return usage(),
                }
                positional += 1;
            }
        }
    }
    let mut cfg = KillCampaignConfig::new(image, n_ops, seed);
    cfg = if queue {
        cfg.queue(if buggy {
            QueueVariant::NoScan
        } else {
            QueueVariant::Nsrl
        })
    } else {
        cfg.variant(if buggy {
            CasVariant::NoMatrix
        } else {
            CasVariant::Nsrl
        })
    };
    if narrow {
        cfg = cfg.narrow();
    }
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot locate own executable: {e}");
            return ExitCode::from(3);
        }
    };
    println!(
        "driving kill campaign: {} ops, seed {}, workload {:?}, image {}",
        cfg.n_ops,
        cfg.seed,
        cfg.workload,
        cfg.image.display()
    );
    match run_kill_campaign(&exe, &cfg) {
        Ok(report) => {
            println!(
                "rounds: {}  kills: {}  recovery kills: {}  recovery attempts: {}",
                report.rounds, report.kills, report.recovery_kills, report.recovery_attempts
            );
            match &report.outcome {
                KillOutcome::Cas { history, verdict } => {
                    println!(
                        "history: {} ops, {} successful, final value {}",
                        history.ops.len(),
                        history.successful().len(),
                        history.final_value
                    );
                    if verdict.is_serializable() {
                        println!("verdict: SERIALIZABLE");
                    } else {
                        println!("verdict: NON-SERIALIZABLE ({verdict:?})");
                    }
                }
                KillOutcome::Queue { history, verdict } => {
                    println!(
                        "history: {} ops, {} slots linearized, {} consumed",
                        history.ops.len(),
                        history.snapshot.len(),
                        history
                            .snapshot
                            .iter()
                            .filter(|s| s.dequeued_by.is_some())
                            .count()
                    );
                    if verdict.is_fifo() {
                        println!("verdict: FIFO");
                    } else {
                        println!("verdict: NOT FIFO ({verdict:?})");
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("campaign failed: {e}");
            ExitCode::from(3)
        }
    }
}

fn child(mode: &str, image: &Path) -> ExitCode {
    let result = match mode {
        "child-run" => child_run(image).map(|outcome| {
            if let ChildOutcome::Ran { completed } = outcome {
                eprintln!("worker: completed {completed} tasks");
            }
        }),
        "child-recover" => child_recover(image).map(|frames| {
            eprintln!("recovery: {frames} frames");
        }),
        _ => unreachable!("caller dispatches only child modes"),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{mode} failed: {e}");
            ExitCode::from(3)
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _self = args.next();
    let (Some(mode), Some(image)) = (args.next(), args.next()) else {
        return usage();
    };
    let image = PathBuf::from(image);
    match mode.as_str() {
        "drive" => drive(image, args),
        "child-run" | "child-recover" => child(&mode, &image),
        _ => usage(),
    }
}
