//! Exhaustive crash-point enumeration.
//!
//! Counting persistence events makes crash testing *exhaustive* instead
//! of probabilistic: run the operation once to learn its event count
//! `E`, then for every `k < E` replay it on a fresh system with a crash
//! armed after `k` events, reopen, and verify the recovered state. If
//! the scenario passes, **no** crash moment (at persistence-event
//! granularity) can corrupt it.

use pstack_core::PError;
use pstack_nvram::{FailPlan, PMem};

/// A crash-enumeration scenario: how to build the system, the
/// operation under test, and the post-crash verification.
pub trait CrashScenario {
    /// Volatile handles the scenario operates through.
    type System;

    /// Builds a fresh system; returns the region and the handles.
    ///
    /// # Errors
    ///
    /// Propagates setup failures.
    fn setup(&self) -> Result<(PMem, Self::System), PError>;

    /// The operation whose crash-atomicity is being tested.
    ///
    /// # Errors
    ///
    /// Must return the propagated crash when the fail-point fires.
    fn run(&self, system: &mut Self::System) -> Result<(), PError>;

    /// Verifies the state after a crash at event `crash_event` and
    /// reopen. Must accept every legal intermediate state (typically
    /// "either the operation happened entirely or not at all, and
    /// recovery completes").
    ///
    /// # Errors
    ///
    /// Any error fails the enumeration with context.
    fn verify(&self, pmem: PMem, crash_event: u64) -> Result<(), PError>;
}

/// Summary of an enumeration run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumerationReport {
    /// Persistence events the clean operation performs.
    pub total_events: u64,
    /// Crash points exercised (events × survival probabilities).
    pub crash_points_tested: u64,
}

/// Runs `scenario` once cleanly to count events, then once per crash
/// point per survival probability.
///
/// # Errors
///
/// [`PError::InvalidConfig`] if the clean run fails or performs no
/// persistence events; otherwise the first verification failure, with
/// the crash point baked into the message by the scenario's `verify`.
pub fn enumerate_crash_points<S: CrashScenario>(
    scenario: &S,
    survival_probs: &[f64],
) -> Result<EnumerationReport, PError> {
    // Clean run: count events.
    let (pmem, mut system) = scenario.setup()?;
    let e0 = pmem.events();
    scenario.run(&mut system)?;
    let total_events = pmem.events() - e0;
    if total_events == 0 {
        return Err(PError::InvalidConfig(
            "operation performs no persistence events; nothing to enumerate".into(),
        ));
    }

    let mut tested = 0u64;
    for k in 0..total_events {
        for &prob in survival_probs {
            let (pmem, mut system) = scenario.setup()?;
            pmem.arm_failpoint(FailPlan::after_events(k).with_survivors(k ^ 0x5EED, prob));
            match scenario.run(&mut system) {
                Err(e) if e.is_crash() => {}
                Ok(()) => {
                    return Err(PError::InvalidConfig(format!(
                        "crash at event {k} did not interrupt the operation"
                    )))
                }
                Err(e) => return Err(e),
            }
            let reopened = pmem.reopen()?;
            scenario.verify(reopened, k)?;
            tested += 1;
        }
    }
    Ok(EnumerationReport {
        total_events,
        crash_points_tested: tested,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_core::{FixedStack, PersistentStack};
    use pstack_nvram::{PMemBuilder, POffset};

    /// Scenario: pushing one frame onto a fixed stack is atomic.
    struct PushScenario;

    impl CrashScenario for PushScenario {
        type System = FixedStack;

        fn setup(&self) -> Result<(PMem, FixedStack), PError> {
            let pmem = PMemBuilder::new().len(8 * 1024).build_in_memory();
            let mut s = FixedStack::format(pmem.clone(), POffset::new(0), 4 * 1024)?;
            s.push(1, b"anchor")?;
            Ok((pmem, s))
        }

        fn run(&self, s: &mut FixedStack) -> Result<(), PError> {
            s.push(2, &[0xAB; 90])
        }

        fn verify(&self, pmem: PMem, crash_event: u64) -> Result<(), PError> {
            let s = FixedStack::open(pmem, POffset::new(0), 4 * 1024)?;
            if s.depth() != 1 && s.depth() != 2 {
                return Err(PError::CorruptStack(format!(
                    "crash at event {crash_event} left depth {}",
                    s.depth()
                )));
            }
            if s.depth() == 2 {
                let rec = s.frame_record(2)?;
                if rec.args != vec![0xAB; 90] {
                    return Err(PError::CorruptStack(format!(
                        "crash at event {crash_event}: linearized push has torn args"
                    )));
                }
            }
            s.check_consistency()
        }
    }

    #[test]
    fn push_scenario_passes_exhaustively() {
        let report = enumerate_crash_points(&PushScenario, &[0.0, 0.5, 1.0]).unwrap();
        assert!(report.total_events >= 3);
        assert_eq!(report.crash_points_tested, report.total_events * 3);
    }

    /// Scenario deliberately broken: an unflushed write that verify
    /// insists must survive. Enumeration must catch it.
    struct BrokenScenario;

    impl CrashScenario for BrokenScenario {
        type System = PMem;

        fn setup(&self) -> Result<(PMem, PMem), PError> {
            let pmem = PMemBuilder::new().len(1024).build_in_memory();
            Ok((pmem.clone(), pmem))
        }

        fn run(&self, pmem: &mut PMem) -> Result<(), PError> {
            pmem.write_u64(POffset::new(0), 7)?; // never flushed
            pmem.flush(POffset::new(512), 8)?; // unrelated flush
            Ok(())
        }

        fn verify(&self, pmem: PMem, _k: u64) -> Result<(), PError> {
            // Wrongly assumes the write is durable.
            if pmem.read_u64(POffset::new(0))? != 7 {
                return Err(PError::CorruptStack("value lost".into()));
            }
            Ok(())
        }
    }

    #[test]
    fn broken_scenario_is_caught() {
        let err = enumerate_crash_points(&BrokenScenario, &[0.0]).unwrap_err();
        assert!(matches!(err, PError::CorruptStack(_)));
    }

    #[test]
    fn eventless_scenario_is_rejected() {
        struct Noop;
        impl CrashScenario for Noop {
            type System = ();
            fn setup(&self) -> Result<(PMem, ()), PError> {
                Ok((PMemBuilder::new().len(64).build_in_memory(), ()))
            }
            fn run(&self, _: &mut ()) -> Result<(), PError> {
                Ok(())
            }
            fn verify(&self, _: PMem, _: u64) -> Result<(), PError> {
                Ok(())
            }
        }
        assert!(matches!(
            enumerate_crash_points(&Noop, &[0.0]),
            Err(PError::InvalidConfig(_))
        ));
    }
}
