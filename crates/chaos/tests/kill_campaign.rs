//! End-to-end test of the real-`kill(1)` campaign (§5.2's actual
//! methodology): worker processes over a file-backed NVRAM image,
//! SIGKILLed by the driver at random wall-clock moments.
//!
//! These tests spawn the `kill_campaign` binary, so they run only as
//! integration tests of the `pstack-chaos` crate (Cargo builds the
//! binary and exposes its path via `CARGO_BIN_EXE_kill_campaign`).

use std::path::{Path, PathBuf};

use pstack_chaos::{run_kill_campaign, KillCampaignConfig, KillOutcome};
use pstack_core::StackKind;
use pstack_recoverable::{CasVariant, QueueVariant};

fn harness_exe() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_kill_campaign"))
}

fn tmp_image(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pstack-killtest-{tag}-{}.img", std::process::id()));
    p
}

#[test]
fn killed_processes_leave_a_serializable_history() {
    // The headline §5.2 result, with genuine process deaths: the
    // correct CAS + persistent-stack recovery always yields a
    // serializable execution, no matter where SIGKILL lands.
    let image = tmp_image("wide");
    let cfg = KillCampaignConfig::new(&image, 36, 1)
        .kill_delay_ms(4, 30)
        .max_kills(4);
    let report = run_kill_campaign(harness_exe(), &cfg).expect("campaign completes");
    assert!(
        report.is_serializable(),
        "real-kill campaign non-serializable: {:?}",
        report.outcome
    );
    assert_eq!(report.outcome.ops(), 36);
    assert!(
        report.kills > 0,
        "slow persists must let the driver land kills (rounds: {})",
        report.rounds
    );
    assert!(report.recovery_attempts >= report.kills);
    let _ = std::fs::remove_file(&image);
}

#[test]
fn narrow_range_campaign_survives_kills() {
    // Narrow operands force duplicate values (multigraph edges in the
    // verifier) — same guarantee must hold.
    let image = tmp_image("narrow");
    let cfg = KillCampaignConfig::new(&image, 30, 2)
        .narrow()
        .kill_delay_ms(1, 10)
        .max_kills(3);
    let report = run_kill_campaign(harness_exe(), &cfg).expect("campaign completes");
    assert!(report.is_serializable(), "{:?}", report.outcome);
    let _ = std::fs::remove_file(&image);
}

#[test]
fn unbounded_stacks_survive_process_kills() {
    // The list-of-blocks stack keeps block pointers in the NVRAM heap;
    // a SIGKILL must never leave it unparseable for the next process.
    let image = tmp_image("list");
    let mut cfg = KillCampaignConfig::new(&image, 24, 3)
        .kill_delay_ms(1, 8)
        .max_kills(3);
    cfg.stack_kind = StackKind::List;
    let report = run_kill_campaign(harness_exe(), &cfg).expect("campaign completes");
    assert!(report.is_serializable(), "{:?}", report.outcome);
    let _ = std::fs::remove_file(&image);
}

#[test]
fn queue_workload_survives_process_kills() {
    // Future-work direction 1 under the paper's literal methodology:
    // the recoverable queue driven by killed worker processes must
    // still verify as FIFO against its slot witness.
    let image = tmp_image("queue");
    let cfg = KillCampaignConfig::new(&image, 30, 5)
        .queue(QueueVariant::Nsrl)
        .kill_delay_ms(2, 15)
        .max_kills(3);
    let report = run_kill_campaign(harness_exe(), &cfg).expect("campaign completes");
    assert!(report.is_consistent(), "{:?}", report.outcome);
    assert!(matches!(report.outcome, KillOutcome::Queue { .. }));
    assert_eq!(report.outcome.ops(), 30);
    let _ = std::fs::remove_file(&image);
}

#[test]
fn buggy_variant_still_terminates_under_kills() {
    // The no-matrix CAS is *wrong*, not stuck: the campaign must still
    // drive every descriptor to completion and produce a verdict.
    // (Non-serializability detection is probabilistic — the in-process
    // campaign test asserts it with controlled schedules; here we only
    // require liveness plus a well-formed history.)
    let image = tmp_image("buggy");
    let cfg = KillCampaignConfig::new(&image, 24, 4)
        .variant(CasVariant::NoMatrix)
        .narrow()
        .kill_delay_ms(1, 8)
        .max_kills(3);
    let report = run_kill_campaign(harness_exe(), &cfg).expect("campaign completes");
    assert_eq!(report.outcome.ops(), 24);
    let _ = std::fs::remove_file(&image);
}
