//! Concurrency contract of the per-thread event ring: one writer, any
//! number of snapshot readers, no locks. The seqlock slots must never
//! surface a torn event — a reader racing a wrapping writer either
//! sees a slot's complete payload or counts it as dropped.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pstack_telemetry::{EventKind, Ring};

const CAPACITY: usize = 256;
const PUSHES: u64 = 200_000;

/// The writer stamps every event so a reader can verify coherence:
/// the i-th push carries `ts == i` and `label == i % 7`. Any slot torn
/// mid-overwrite would decode with mismatched fields.
fn stamped(i: u64) -> EventKind {
    EventKind::SpanEnter {
        label: (i % 7) as u32,
    }
}

#[test]
fn wrapping_writer_never_surfaces_a_torn_slot() {
    let ring = Arc::new(Ring::new(CAPACITY));
    let done = Arc::new(AtomicBool::new(false));

    let writer = {
        let ring = Arc::clone(&ring);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            for i in 0..PUSHES {
                ring.push(i, stamped(i));
            }
            done.store(true, Ordering::Release);
        })
    };

    // Reader: chase the head while the writer laps the ring hundreds
    // of times. Every event handed out must be coherent and in order;
    // everything overwritten under us must be accounted as dropped.
    let mut cursor = 0u64;
    let mut seen = 0u64;
    let mut dropped = 0u64;
    let drain = |cursor: &mut u64, seen: &mut u64, dropped: &mut u64| {
        let read = ring.read_from(*cursor);
        let first = read.head - read.events.len() as u64;
        assert_eq!(
            read.dropped,
            first - *cursor,
            "every skipped position is a drop"
        );
        for (expect, ev) in (first..).zip(read.events.iter()) {
            assert_eq!(ev.pos, expect, "positions are gapless after the drop gap");
            assert_eq!(ev.ts, ev.pos, "the i-th push carries ts == i");
            assert_eq!(
                ev.kind,
                stamped(ev.pos),
                "payload words belong to the same push"
            );
        }
        *seen += read.events.len() as u64;
        *dropped += read.dropped;
        *cursor = read.head;
    };
    while !done.load(Ordering::Acquire) {
        drain(&mut cursor, &mut seen, &mut dropped);
    }
    writer.join().unwrap();
    drain(&mut cursor, &mut seen, &mut dropped);

    assert_eq!(seen + dropped, PUSHES, "every push is seen or accounted");
    assert!(
        seen > 0,
        "the reader kept up with at least part of the stream"
    );
    assert!(
        dropped > 0,
        "{PUSHES} pushes into {CAPACITY} slots must lap the reader"
    );
    assert_eq!(ring.head(), PUSHES);
}

#[test]
fn many_rings_one_collector_pass() {
    // The collector's view: N writer threads each own a ring; a final
    // single pass over all of them (after the writers quiesce, as
    // TraceSession::finish does) sees exactly the last `capacity`
    // events of each, in order.
    const WRITERS: usize = 4;
    let rings: Vec<Arc<Ring>> = (0..WRITERS).map(|_| Arc::new(Ring::new(64))).collect();
    std::thread::scope(|scope| {
        for (w, ring) in rings.iter().enumerate() {
            let ring = Arc::clone(ring);
            scope.spawn(move || {
                for i in 0..1000u64 {
                    ring.push(i, stamped(i.wrapping_add(w as u64)));
                }
            });
        }
    });
    for (w, ring) in rings.iter().enumerate() {
        let read = ring.read_from(0);
        assert_eq!(read.events.len(), 64);
        assert_eq!(read.dropped, 1000 - 64);
        for ev in &read.events {
            assert_eq!(ev.kind, stamped(ev.ts.wrapping_add(w as u64)));
        }
    }
}
