//! Snapshot analysis: merging per-thread rings into per-op latency
//! histograms, persist-economy counters, and crash→recovery timelines.

use crate::hist::LatencyHistogram;
use crate::ring::{Event, EventKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Events recorded by one ring (≈ one thread; rings are pooled, so a
/// slot may serve several short-lived threads back to back — each
/// closes its spans before handing the ring on, so per-ring nesting
/// stays well-formed).
#[derive(Debug, Clone)]
pub struct ThreadTrace {
    /// Registry slot index.
    pub ring: usize,
    /// Events in position (= time) order.
    pub events: Vec<Event>,
    /// Events lost to wraparound or torn reads in the window.
    pub dropped: u64,
}

/// Everything a [`crate::TraceSession`] recorded.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Interned label table; event label/region ids index into it.
    pub labels: Vec<String>,
    /// Per-ring event streams.
    pub threads: Vec<ThreadTrace>,
}

/// Latency distribution of one span label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpStat {
    /// Span (op) label.
    pub label: String,
    /// Completed spans.
    pub count: u64,
    /// Mean latency in nanoseconds.
    pub mean_ns: u64,
    /// Median latency.
    pub p50_ns: u64,
    /// 99th percentile latency.
    pub p99_ns: u64,
    /// 99.9th percentile latency.
    pub p999_ns: u64,
    /// Worst observed latency.
    pub max_ns: u64,
}

/// Persist round-trips attributed to the innermost open span.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PersistEconomy {
    /// Attributing span label (`unlabeled` when none was open).
    pub label: String,
    /// Persist round-trips.
    pub persists: u64,
    /// Cache lines actually flushed.
    pub lines: u64,
    /// Lines beyond the first per round-trip — the coalescing win.
    pub coalesced: u64,
    /// Round-trips that found nothing dirty.
    pub redundant: u64,
}

/// One recovery phase aggregated within a timeline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryPhaseStat {
    /// Phase label (e.g. `recovery.frame-replay`).
    pub label: String,
    /// Completed phase instances after this crash.
    pub count: u64,
    /// Summed wall-clock duration.
    pub total_ns: u64,
    /// Telemetry events (all threads) inside the phase windows.
    pub events: u64,
}

/// One crash incident and the recovery work that followed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashEntry {
    /// Timestamp of the first crash event of the incident.
    pub at_ns: u64,
    /// Attribution: `CrashSite` when the runtime recorded one
    /// (`shard-N` / `runtime`), else the first crashed region's label.
    pub site: String,
    /// Event-counter reading attached to the attribution.
    pub at_events: u64,
    /// Regions that went down in this incident.
    pub regions_down: u64,
    /// Recovery phases observed before the next incident.
    pub phases: Vec<RecoveryPhaseStat>,
}

/// Collector output: the three views the flight recorder promises.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySummary {
    /// Per-op latency distributions, ordered by span count descending.
    pub ops: Vec<OpStat>,
    /// Persist counters per attributing op, ordered by persists.
    pub persist_economy: Vec<PersistEconomy>,
    /// Crash incidents in time order, each with its recovery phases.
    pub timeline: Vec<CrashEntry>,
    /// Flush-epoch bumps observed.
    pub flush_epochs: u64,
    /// Bare fences observed.
    pub fences: u64,
    /// Total events collected.
    pub events: u64,
    /// Events lost to ring wraparound.
    pub dropped: u64,
}

impl TraceSnapshot {
    fn label(&self, id: u32) -> String {
        self.labels
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| format!("label#{id}"))
    }

    /// All events merged across threads in timestamp order.
    fn merged(&self) -> Vec<(u64, usize, EventKind)> {
        let mut all: Vec<(u64, usize, EventKind)> = self
            .threads
            .iter()
            .flat_map(|t| t.events.iter().map(move |e| (e.ts, t.ring, e.kind)))
            .collect();
        all.sort_by_key(|&(ts, ring, _)| (ts, ring));
        all
    }

    /// Builds the summary views from the raw rings.
    #[must_use]
    pub fn summary(&self) -> TelemetrySummary {
        let mut hists: BTreeMap<u32, LatencyHistogram> = BTreeMap::new();
        let mut economy: BTreeMap<u32, PersistEconomy> = BTreeMap::new();
        let mut flush_epochs = 0u64;
        let mut fences = 0u64;
        let mut events = 0u64;
        let mut dropped = 0u64;

        for t in &self.threads {
            events += t.events.len() as u64;
            dropped += t.dropped;
            // (label, enter-ts) span stack; replay is tolerant of
            // unmatched exits (session started mid-span).
            let mut stack: Vec<(u32, u64)> = Vec::new();
            for e in &t.events {
                match e.kind {
                    EventKind::SpanEnter { label } => stack.push((label, e.ts)),
                    EventKind::SpanExit { label } => {
                        if let Some(top) = stack.iter().rposition(|&(l, _)| l == label) {
                            let (_, enter) = stack[top];
                            stack.truncate(top);
                            hists
                                .entry(label)
                                .or_default()
                                .record(e.ts.saturating_sub(enter));
                        }
                    }
                    EventKind::Persist { lines, .. } => {
                        let owner = stack.last().map_or(0, |&(l, _)| l);
                        let pe = economy.entry(owner).or_default();
                        pe.persists += 1;
                        if lines == 0 {
                            pe.redundant += 1;
                        } else {
                            pe.lines += u64::from(lines);
                            pe.coalesced += u64::from(lines) - 1;
                        }
                    }
                    EventKind::FlushEpoch { .. } => flush_epochs += 1,
                    EventKind::Fence { .. } => fences += 1,
                    _ => {}
                }
            }
        }

        let mut ops: Vec<OpStat> = hists
            .into_iter()
            .map(|(label, h)| OpStat {
                label: self.label(label),
                count: h.count(),
                mean_ns: h.mean(),
                p50_ns: h.quantile(0.5),
                p99_ns: h.quantile(0.99),
                p999_ns: h.quantile(0.999),
                max_ns: h.max(),
            })
            .collect();
        ops.sort_by(|a, b| b.count.cmp(&a.count).then(a.label.cmp(&b.label)));

        let mut persist_economy: Vec<PersistEconomy> = economy
            .into_iter()
            .map(|(label, pe)| PersistEconomy {
                label: self.label(label),
                ..pe
            })
            .collect();
        persist_economy.sort_by(|a, b| b.persists.cmp(&a.persists).then(a.label.cmp(&b.label)));

        TelemetrySummary {
            ops,
            persist_economy,
            timeline: self.timeline(),
            flush_epochs,
            fences,
            events,
            dropped,
        }
    }

    /// Pairs each crash incident with the recovery phases that follow.
    fn timeline(&self) -> Vec<CrashEntry> {
        let merged = self.merged();
        let ts_index: Vec<u64> = merged.iter().map(|&(ts, _, _)| ts).collect();
        let events_within = |start: u64, end: u64| -> u64 {
            let lo = ts_index.partition_point(|&t| t < start);
            let hi = ts_index.partition_point(|&t| t <= end);
            (hi - lo) as u64
        };

        let mut entries: Vec<CrashEntry> = Vec::new();
        // Aggregated phases per entry, keyed by label id.
        let mut agg: Vec<BTreeMap<u32, RecoveryPhaseStat>> = Vec::new();
        // A crash event opens a new incident iff recovery already
        // started since the last one — bursts of near-simultaneous
        // region deaths (crash propagation trips every region) are one
        // incident, a crash *during* recovery is a fresh one.
        let mut recovering = true;
        // Open phase intervals per ring: (ring, label) -> enter ts.
        let mut open_phases: BTreeMap<(usize, u32), u64> = BTreeMap::new();

        for &(ts, ring, kind) in &merged {
            match kind {
                EventKind::Crash { region, events } => {
                    if recovering || entries.is_empty() {
                        entries.push(CrashEntry {
                            at_ns: ts,
                            site: self.label(region),
                            at_events: events,
                            regions_down: 0,
                            phases: Vec::new(),
                        });
                        agg.push(BTreeMap::new());
                        recovering = false;
                    }
                    let last = entries.last_mut().unwrap();
                    last.regions_down += 1;
                }
                EventKind::CrashSite { shard, events } => {
                    if recovering || entries.is_empty() {
                        entries.push(CrashEntry {
                            at_ns: ts,
                            site: String::new(),
                            at_events: 0,
                            regions_down: 0,
                            phases: Vec::new(),
                        });
                        agg.push(BTreeMap::new());
                        recovering = false;
                    }
                    // CrashSite is the authoritative attribution.
                    let last = entries.last_mut().unwrap();
                    last.site = if shard == u64::MAX {
                        "runtime".to_string()
                    } else {
                        format!("shard-{shard}")
                    };
                    last.at_events = events;
                }
                EventKind::PhaseEnter { label } => {
                    recovering = true;
                    open_phases.insert((ring, label), ts);
                }
                EventKind::PhaseExit { label } => {
                    recovering = true;
                    if let (Some(start), Some(map)) =
                        (open_phases.remove(&(ring, label)), agg.last_mut())
                    {
                        let stat = map.entry(label).or_insert_with(|| RecoveryPhaseStat {
                            label: self.label(label),
                            count: 0,
                            total_ns: 0,
                            events: 0,
                        });
                        stat.count += 1;
                        stat.total_ns += ts.saturating_sub(start);
                        stat.events += events_within(start, ts);
                    }
                }
                _ => {}
            }
        }

        for (entry, map) in entries.iter_mut().zip(agg) {
            if entry.site.is_empty() {
                entry.site = "unattributed".to_string();
            }
            entry.phases = map.into_values().collect();
        }
        entries
    }

    /// Schema checks on the raw trace: per-thread timestamps must be
    /// monotone, span and phase enter/exit must balance with proper
    /// nesting, and every label id must resolve. Returns the list of
    /// violations (empty ⇒ valid).
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut errs = Vec::new();
        for t in &self.threads {
            let mut last_ts = 0u64;
            let mut last_pos: Option<u64> = None;
            let mut spans: Vec<u32> = Vec::new();
            let mut phases: Vec<u32> = Vec::new();
            for e in &t.events {
                if e.ts < last_ts {
                    errs.push(format!(
                        "ring {}: timestamp regressed at pos {} ({} < {})",
                        t.ring, e.pos, e.ts, last_ts
                    ));
                }
                last_ts = e.ts;
                if let Some(p) = last_pos {
                    if e.pos <= p {
                        errs.push(format!(
                            "ring {}: position not increasing at {}",
                            t.ring, e.pos
                        ));
                    }
                }
                last_pos = Some(e.pos);
                let referenced = match e.kind {
                    EventKind::SpanEnter { label }
                    | EventKind::SpanExit { label }
                    | EventKind::PhaseEnter { label }
                    | EventKind::PhaseExit { label } => Some(label),
                    EventKind::Persist { region, .. }
                    | EventKind::Fence { region }
                    | EventKind::FlushEpoch { region, .. }
                    | EventKind::Crash { region, .. } => Some(region),
                    EventKind::CrashSite { .. } => None,
                };
                if let Some(id) = referenced {
                    if id as usize >= self.labels.len() {
                        errs.push(format!("ring {}: unknown label id {id}", t.ring));
                    }
                }
                match e.kind {
                    EventKind::SpanEnter { label } => spans.push(label),
                    EventKind::SpanExit { label } if spans.pop() != Some(label) => {
                        errs.push(format!(
                            "ring {}: span exit '{}' does not match innermost open span",
                            t.ring,
                            self.label(label)
                        ));
                    }
                    EventKind::PhaseEnter { label } => phases.push(label),
                    EventKind::PhaseExit { label } if phases.pop() != Some(label) => {
                        errs.push(format!(
                            "ring {}: phase exit '{}' does not match innermost open phase",
                            t.ring,
                            self.label(label)
                        ));
                    }
                    _ => {}
                }
            }
            for label in spans {
                errs.push(format!(
                    "ring {}: span '{}' never closed",
                    t.ring,
                    self.label(label)
                ));
            }
            for label in phases {
                errs.push(format!(
                    "ring {}: phase '{}' never closed",
                    t.ring,
                    self.label(label)
                ));
            }
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }
}

/// Formats nanoseconds with an adaptive unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl TelemetrySummary {
    /// Renders the summary as a human-readable block (the form the
    /// campaigns and the example print).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "telemetry: {} events ({} dropped), {} flush-epoch bumps, {} fences",
            self.events, self.dropped, self.flush_epochs, self.fences
        );
        if !self.ops.is_empty() {
            let _ = writeln!(
                out,
                "  {:<28} {:>8} {:>9} {:>9} {:>9} {:>9}",
                "op", "count", "p50", "p99", "p999", "max"
            );
            for op in &self.ops {
                let _ = writeln!(
                    out,
                    "  {:<28} {:>8} {:>9} {:>9} {:>9} {:>9}",
                    op.label,
                    op.count,
                    fmt_ns(op.p50_ns),
                    fmt_ns(op.p99_ns),
                    fmt_ns(op.p999_ns),
                    fmt_ns(op.max_ns)
                );
            }
        }
        if !self.persist_economy.is_empty() {
            let _ = writeln!(out, "  persist economy (per op):");
            for pe in &self.persist_economy {
                let _ = writeln!(
                    out,
                    "    {:<26} persists={} lines={} coalesced={} redundant={}",
                    pe.label, pe.persists, pe.lines, pe.coalesced, pe.redundant
                );
            }
        }
        if !self.timeline.is_empty() {
            let n = self.timeline.len();
            let _ = writeln!(
                out,
                "  crash→recovery timeline ({n} incident{}):",
                if n == 1 { "" } else { "s" }
            );
            const SHOWN: usize = 10;
            for (i, entry) in self.timeline.iter().take(SHOWN).enumerate() {
                let phases = entry
                    .phases
                    .iter()
                    .map(|p| {
                        format!(
                            "{} ×{} {} ({} ev)",
                            p.label,
                            p.count,
                            fmt_ns(p.total_ns),
                            p.events
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(" · ");
                let _ = writeln!(
                    out,
                    "    [{i}] t={} {} @{}ev ({} region{} down) → {}",
                    fmt_ns(entry.at_ns),
                    entry.site,
                    entry.at_events,
                    entry.regions_down,
                    if entry.regions_down == 1 { "" } else { "s" },
                    if phases.is_empty() {
                        "no recovery observed".to_string()
                    } else {
                        phases
                    }
                );
            }
            if self.timeline.len() > SHOWN {
                let _ = writeln!(out, "    … and {} more", self.timeline.len() - SHOWN);
            }
        }
        out
    }

    /// The op stats whose label starts with `prefix` — a dotted label
    /// family, e.g. `op_family("server.")` pulls the serving-layer ops
    /// (`server.submit`, `server.window`, …) out of a mixed recording.
    /// Returned in the summary's label order.
    #[must_use]
    pub fn op_family(&self, prefix: &str) -> Vec<&OpStat> {
        self.ops
            .iter()
            .filter(|o| o.label.starts_with(prefix))
            .collect()
    }

    /// Distinct recovery-phase labels across the whole timeline.
    #[must_use]
    pub fn distinct_recovery_phases(&self) -> usize {
        let mut labels: Vec<&str> = self
            .timeline
            .iter()
            .flat_map(|e| e.phases.iter().map(|p| p.label.as_str()))
            .collect();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::Event;

    fn ev(pos: u64, ts: u64, kind: EventKind) -> Event {
        Event { pos, ts, kind }
    }

    fn snapshot(events: Vec<Event>) -> TraceSnapshot {
        TraceSnapshot {
            labels: vec![
                "unlabeled".into(),
                "op.a".into(),
                "region".into(),
                "recovery.x".into(),
            ],
            threads: vec![ThreadTrace {
                ring: 0,
                events,
                dropped: 0,
            }],
        }
    }

    #[test]
    fn spans_feed_histograms_and_persists_attribute() {
        let snap = snapshot(vec![
            ev(0, 10, EventKind::SpanEnter { label: 1 }),
            ev(
                1,
                20,
                EventKind::Persist {
                    region: 2,
                    lines: 4,
                    dur_ns: 5,
                },
            ),
            ev(
                2,
                30,
                EventKind::Persist {
                    region: 2,
                    lines: 0,
                    dur_ns: 1,
                },
            ),
            ev(3, 1010, EventKind::SpanExit { label: 1 }),
        ]);
        assert!(snap.validate().is_ok());
        let sum = snap.summary();
        assert_eq!(sum.ops.len(), 1);
        assert_eq!(sum.ops[0].label, "op.a");
        assert_eq!(sum.ops[0].count, 1);
        assert!(sum.ops[0].p50_ns >= 1000);
        let pe = &sum.persist_economy[0];
        assert_eq!(
            (pe.persists, pe.lines, pe.coalesced, pe.redundant),
            (2, 4, 3, 1)
        );
    }

    #[test]
    fn op_family_selects_by_label_prefix() {
        let snap = TraceSnapshot {
            labels: vec![
                "unlabeled".into(),
                "server.submit".into(),
                "server.window".into(),
                "kv.batch".into(),
            ],
            threads: vec![ThreadTrace {
                ring: 0,
                events: vec![
                    ev(0, 10, EventKind::SpanEnter { label: 1 }),
                    ev(1, 20, EventKind::SpanExit { label: 1 }),
                    ev(2, 30, EventKind::SpanEnter { label: 2 }),
                    ev(3, 40, EventKind::SpanExit { label: 2 }),
                    ev(4, 50, EventKind::SpanEnter { label: 3 }),
                    ev(5, 60, EventKind::SpanExit { label: 3 }),
                ],
                dropped: 0,
            }],
        };
        let sum = snap.summary();
        assert_eq!(sum.ops.len(), 3);
        let served = sum.op_family("server.");
        assert_eq!(
            served.iter().map(|o| o.label.as_str()).collect::<Vec<_>>(),
            ["server.submit", "server.window"]
        );
        assert!(sum.op_family("queue.").is_empty());
    }

    #[test]
    fn timeline_pairs_crashes_with_phases() {
        let snap = snapshot(vec![
            ev(
                0,
                100,
                EventKind::Crash {
                    region: 2,
                    events: 7,
                },
            ),
            ev(
                1,
                101,
                EventKind::Crash {
                    region: 2,
                    events: 9,
                },
            ),
            ev(
                2,
                102,
                EventKind::CrashSite {
                    shard: 1,
                    events: 7,
                },
            ),
            ev(3, 110, EventKind::PhaseEnter { label: 3 }),
            ev(4, 150, EventKind::PhaseExit { label: 3 }),
            // Crash during/after recovery opens a new incident.
            ev(
                5,
                200,
                EventKind::Crash {
                    region: 2,
                    events: 3,
                },
            ),
        ]);
        let sum = snap.summary();
        assert_eq!(sum.timeline.len(), 2);
        let first = &sum.timeline[0];
        assert_eq!(first.site, "shard-1");
        assert_eq!(first.regions_down, 2);
        assert_eq!(first.phases.len(), 1);
        assert_eq!(first.phases[0].label, "recovery.x");
        assert_eq!(first.phases[0].total_ns, 40);
        assert!(first.phases[0].events >= 2);
        assert_eq!(sum.timeline[1].site, "region");
        assert_eq!(sum.distinct_recovery_phases(), 1);
    }

    #[test]
    fn validate_flags_imbalance_and_regression() {
        let snap = snapshot(vec![
            ev(0, 10, EventKind::SpanEnter { label: 1 }),
            ev(1, 5, EventKind::SpanExit { label: 99 }),
        ]);
        let errs = snap.validate().unwrap_err();
        assert!(errs.iter().any(|e| e.contains("timestamp regressed")));
        assert!(errs.iter().any(|e| e.contains("unknown label id")));
        assert!(errs.iter().any(|e| e.contains("does not match")));
    }
}
