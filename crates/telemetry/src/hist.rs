//! Log-scale latency histogram (HDR-style).
//!
//! Values are bucketed with a fixed number of linear sub-buckets per
//! power of two, so the relative quantile error is bounded by
//! `2^-SUB_BITS` (≈3.1% at 5 sub-bucket bits) across the full `u64`
//! range while the table stays a flat ~2k-counter array. This is the
//! same layout trick as HdrHistogram at lowest precision, hand-rolled
//! because the build environment vendors no registry crates.

/// Linear sub-bucket bits per power-of-two band.
const SUB_BITS: u32 = 5;
/// Sub-buckets per band (also the size of the initial linear region).
const SUB: u64 = 1 << SUB_BITS;
/// Bucket count: one linear region plus `(64 - SUB_BITS)` bands.
const BUCKETS: usize = ((64 - SUB_BITS + 1) << SUB_BITS) as usize;

/// Fixed-footprint log-scale histogram of `u64` samples (nanoseconds
/// by convention, but unit-agnostic).
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

/// Index of the bucket holding `v`.
fn bucket_of(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // >= SUB_BITS
        let shift = exp - SUB_BITS;
        let band = (exp - SUB_BITS + 1) as u64;
        ((band << SUB_BITS) + ((v >> shift) - SUB)) as usize
    }
}

/// Highest value mapping to bucket `idx` (the reported quantile bound).
fn bucket_high(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        idx
    } else {
        let band = idx >> SUB_BITS;
        let off = idx & (SUB - 1);
        let shift = (band - 1) as u32;
        let low = (SUB + off) << shift;
        low + ((1u64 << shift) - 1)
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: vec![0u64; BUCKETS].into_boxed_slice().try_into().unwrap(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / u128::from(self.count)) as u64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: an upper bound on the true
    /// quantile with relative error at most `2^-5` (one sub-bucket).
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the sample we want, 1-based: ceil(q * count).
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_high(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_tile_the_u64_range() {
        // Every value maps to exactly one bucket whose bounds contain it.
        for v in (0..4096u64).chain([u64::MAX, u64::MAX / 3, 1 << 40, (1 << 40) + 12345]) {
            let idx = bucket_of(v);
            assert!(v <= bucket_high(idx), "v={v} idx={idx}");
            if idx > 0 {
                assert!(bucket_high(idx - 1) < v, "v={v} idx={idx}");
            }
        }
        // Bucket highs are strictly increasing.
        for idx in 1..BUCKETS {
            assert!(bucket_high(idx) > bucket_high(idx - 1));
        }
    }

    #[test]
    fn exact_below_linear_region() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUB {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), SUB - 1);
        assert_eq!(h.quantile(0.5), SUB / 2 - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        // Uniform 1..=100_000: every quantile estimate must be within
        // one sub-bucket (3.125%) of the true order statistic.
        let mut h = LatencyHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = ((q * 100_000f64).ceil() as u64).clamp(1, 100_000);
            let est = h.quantile(q);
            assert!(est >= exact, "q={q} est={est} exact={exact}");
            let err = (est - exact) as f64 / exact as f64;
            assert!(err <= 1.0 / 32.0 + 1e-9, "q={q} err={err}");
        }
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for v in 0..1000u64 {
            let v = v * v % 7919 + 1;
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        for q in [0.1, 0.5, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
        assert_eq!(a.mean(), all.mean());
    }
}
