//! Per-thread lock-free event rings.
//!
//! Each recording thread owns one ring: the owner is the only writer,
//! so slots need no CAS. A per-slot sequence word (seqlock discipline,
//! the crossbeam `AtomicCell` recipe) lets a collector snapshot the
//! ring while the owner keeps writing: readers detect torn or
//! overwritten slots from the sequence and skip them, and the
//! monotonic head counter turns wraparound into an explicit
//! dropped-events count instead of silent truncation.

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Words per slot: sequence, timestamp, kind+label, payload b, payload c.
const SLOT_WORDS: usize = 5;

/// One recorded event, decoded from a ring slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Monotonic position in the owning ring (defines per-thread order).
    pub pos: u64,
    /// Nanoseconds since the process-wide trace epoch.
    pub ts: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Event payloads. Label/region fields are interned-string ids
/// resolved through the snapshot's label table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An `op_label` (or telemetry-only) span opened.
    SpanEnter { label: u32 },
    /// The innermost span closed.
    SpanExit { label: u32 },
    /// A recovery phase opened (evidence scan, frame replay, …).
    PhaseEnter { label: u32 },
    /// A recovery phase closed.
    PhaseExit { label: u32 },
    /// One persist round-trip: `lines` cache lines actually flushed
    /// (0 ⇒ redundant — the barrier found nothing dirty).
    Persist {
        region: u32,
        lines: u32,
        dur_ns: u64,
    },
    /// An explicit fence with no range.
    Fence { region: u32 },
    /// The store bumped its flush epoch (group-commit publication).
    FlushEpoch { region: u32, epoch: u64 },
    /// A region crashed; `events` is its event-counter reading.
    Crash { region: u32, events: u64 },
    /// Runtime-level crash attribution (`CrashSite`): `shard` is the
    /// shard index, or `u64::MAX` for the control region.
    CrashSite { shard: u64, events: u64 },
}

const K_SPAN_ENTER: u64 = 1;
const K_SPAN_EXIT: u64 = 2;
const K_PHASE_ENTER: u64 = 3;
const K_PHASE_EXIT: u64 = 4;
const K_PERSIST: u64 = 5;
const K_FENCE: u64 = 6;
const K_FLUSH_EPOCH: u64 = 7;
const K_CRASH: u64 = 8;
const K_CRASH_SITE: u64 = 9;

impl EventKind {
    /// Packs into (kind|label word, b, c).
    pub(crate) fn encode(self) -> (u64, u64, u64) {
        let pack = |k: u64, a: u32| (k << 32) | u64::from(a);
        match self {
            EventKind::SpanEnter { label } => (pack(K_SPAN_ENTER, label), 0, 0),
            EventKind::SpanExit { label } => (pack(K_SPAN_EXIT, label), 0, 0),
            EventKind::PhaseEnter { label } => (pack(K_PHASE_ENTER, label), 0, 0),
            EventKind::PhaseExit { label } => (pack(K_PHASE_EXIT, label), 0, 0),
            EventKind::Persist {
                region,
                lines,
                dur_ns,
            } => (pack(K_PERSIST, region), u64::from(lines), dur_ns),
            EventKind::Fence { region } => (pack(K_FENCE, region), 0, 0),
            EventKind::FlushEpoch { region, epoch } => (pack(K_FLUSH_EPOCH, region), epoch, 0),
            EventKind::Crash { region, events } => (pack(K_CRASH, region), events, 0),
            EventKind::CrashSite { shard, events } => (pack(K_CRASH_SITE, 0), shard, events),
        }
    }

    /// Decodes from packed words; `None` for an unknown kind tag.
    pub(crate) fn decode(ka: u64, b: u64, c: u64) -> Option<Self> {
        let a = ka as u32;
        Some(match ka >> 32 {
            K_SPAN_ENTER => EventKind::SpanEnter { label: a },
            K_SPAN_EXIT => EventKind::SpanExit { label: a },
            K_PHASE_ENTER => EventKind::PhaseEnter { label: a },
            K_PHASE_EXIT => EventKind::PhaseExit { label: a },
            K_PERSIST => EventKind::Persist {
                region: a,
                lines: b as u32,
                dur_ns: c,
            },
            K_FENCE => EventKind::Fence { region: a },
            K_FLUSH_EPOCH => EventKind::FlushEpoch {
                region: a,
                epoch: b,
            },
            K_CRASH => EventKind::Crash {
                region: a,
                events: b,
            },
            K_CRASH_SITE => EventKind::CrashSite {
                shard: b,
                events: c,
            },
            _ => return None,
        })
    }

    /// Wire tag used by the trace-file format.
    #[must_use]
    pub fn tag(&self) -> u64 {
        self.encode().0 >> 32
    }
}

/// Single-writer, multi-reader event ring.
pub struct Ring {
    slots: Box<[AtomicU64]>,
    mask: u64,
    /// Next write position; grows without bound (wraps modulo capacity
    /// into `slots`). Readers use it to find the live window.
    head: AtomicU64,
}

impl Ring {
    /// Creates a ring holding `capacity` events (rounded up to a power
    /// of two, minimum 64).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(64).next_power_of_two();
        let slots = (0..cap * SLOT_WORDS).map(|_| AtomicU64::new(0)).collect();
        Self {
            slots,
            mask: cap as u64 - 1,
            head: AtomicU64::new(0),
        }
    }

    /// Event capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        (self.mask + 1) as usize
    }

    /// Number of events ever pushed.
    #[must_use]
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    fn slot(&self, pos: u64) -> &[AtomicU64] {
        let base = (pos & self.mask) as usize * SLOT_WORDS;
        &self.slots[base..base + SLOT_WORDS]
    }

    /// Appends one event. Caller must be the ring's owning thread —
    /// the single-writer contract is what makes this lock-free.
    pub fn push(&self, ts: u64, kind: EventKind) {
        let pos = self.head.load(Ordering::Relaxed);
        let slot = self.slot(pos);
        // Seqlock write: odd = in progress. The RMW with AcqRel keeps
        // the payload stores from floating above it.
        slot[0].swap(2 * pos + 1, Ordering::AcqRel);
        let (ka, b, c) = kind.encode();
        slot[1].store(ts, Ordering::Relaxed);
        slot[2].store(ka, Ordering::Relaxed);
        slot[3].store(b, Ordering::Relaxed);
        slot[4].store(c, Ordering::Relaxed);
        slot[0].store(2 * pos + 2, Ordering::Release);
        self.head.store(pos + 1, Ordering::Release);
    }

    /// Reads events at positions `[from, head)`, oldest first. Events
    /// already overwritten (the window outran the capacity) and slots
    /// torn by a concurrent write are counted in `dropped` instead of
    /// appearing in the result.
    pub fn read_from(&self, from: u64) -> RingRead {
        let head = self.head.load(Ordering::Acquire);
        let lo = from.max(head.saturating_sub(self.mask + 1));
        let mut events = Vec::with_capacity((head - lo) as usize);
        let mut dropped = lo - from.min(lo);
        for pos in lo..head {
            let slot = self.slot(pos);
            let s1 = slot[0].load(Ordering::Acquire);
            if s1 != 2 * pos + 2 {
                // Torn or already recycled by a faster writer.
                dropped += 1;
                continue;
            }
            let ts = slot[1].load(Ordering::Relaxed);
            let ka = slot[2].load(Ordering::Relaxed);
            let b = slot[3].load(Ordering::Relaxed);
            let c = slot[4].load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            let s2 = slot[0].load(Ordering::Relaxed);
            if s1 != s2 {
                dropped += 1;
                continue;
            }
            match EventKind::decode(ka, b, c) {
                Some(kind) => events.push(Event { pos, ts, kind }),
                None => dropped += 1,
            }
        }
        RingRead {
            events,
            dropped,
            head,
        }
    }
}

/// Result of [`Ring::read_from`].
pub struct RingRead {
    /// Decoded events in position order.
    pub events: Vec<Event>,
    /// Events in the requested window that could not be decoded
    /// (overwritten by wraparound or torn mid-write).
    pub dropped: u64,
    /// Ring head at snapshot time (pass as the next `from`).
    pub head: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_every_kind() {
        let kinds = [
            EventKind::SpanEnter { label: 7 },
            EventKind::SpanExit { label: 7 },
            EventKind::PhaseEnter { label: 1 },
            EventKind::PhaseExit { label: 1 },
            EventKind::Persist {
                region: 3,
                lines: 12,
                dur_ns: 999,
            },
            EventKind::Fence { region: 3 },
            EventKind::FlushEpoch {
                region: 2,
                epoch: 41,
            },
            EventKind::Crash {
                region: 2,
                events: 1234,
            },
            EventKind::CrashSite {
                shard: u64::MAX,
                events: 55,
            },
        ];
        let ring = Ring::new(64);
        for (i, k) in kinds.iter().enumerate() {
            ring.push(i as u64, *k);
        }
        let read = ring.read_from(0);
        assert_eq!(read.dropped, 0);
        assert_eq!(read.events.len(), kinds.len());
        for (ev, k) in read.events.iter().zip(kinds.iter()) {
            assert_eq!(ev.kind, *k);
        }
    }

    #[test]
    fn wraparound_reports_dropped() {
        let ring = Ring::new(64);
        for i in 0..200u64 {
            ring.push(i, EventKind::SpanEnter { label: 1 });
        }
        let read = ring.read_from(0);
        assert_eq!(read.head, 200);
        assert_eq!(read.events.len(), 64);
        assert_eq!(read.dropped, 136);
        // The survivors are the newest window, in order.
        assert_eq!(read.events.first().unwrap().pos, 136);
        assert_eq!(read.events.last().unwrap().pos, 199);
        // Resuming from the head sees nothing new.
        let again = ring.read_from(read.head);
        assert!(again.events.is_empty());
        assert_eq!(again.dropped, 0);
    }
}
