//! Trace persistence: a line-oriented on-disk format (what the
//! example writes and `trace-dump` reads) plus hand-rolled JSON
//! rendering — the build environment vendors no serde.

use crate::collect::{TelemetrySummary, ThreadTrace, TraceSnapshot};
use crate::ring::{Event, EventKind};
use std::fmt::Write as _;
use std::path::Path;

const MAGIC: &str = "pstack-trace v1";

fn escape(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\s"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut chars = name.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('s') => out.push(' '),
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

impl TraceSnapshot {
    /// Serializes the snapshot to the trace-file text format.
    #[must_use]
    pub fn to_trace_string(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC}");
        for (id, name) in self.labels.iter().enumerate() {
            let _ = writeln!(out, "label {id} {}", escape(name));
        }
        for t in &self.threads {
            let _ = writeln!(out, "ring {} dropped={}", t.ring, t.dropped);
            for e in &t.events {
                let (ka, b, c) = e.kind.encode();
                let _ = writeln!(out, "e {} {} {ka} {b} {c}", e.pos, e.ts);
            }
        }
        out
    }

    /// Parses a trace file produced by [`Self::to_trace_string`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, l)) if l.trim_end() == MAGIC => {}
            _ => return Err(format!("missing magic header '{MAGIC}'")),
        }
        let mut snap = TraceSnapshot::default();
        for (no, line) in lines {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split(' ');
            let tag = parts.next().unwrap_or("");
            let fail = |what: &str| format!("line {}: {what}: '{line}'", no + 1);
            match tag {
                "label" => {
                    let id: usize = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| fail("bad label id"))?;
                    let name = unescape(parts.next().ok_or_else(|| fail("missing label name"))?);
                    if id != snap.labels.len() {
                        return Err(fail("label ids must be dense and in order"));
                    }
                    snap.labels.push(name);
                }
                "ring" => {
                    let ring: usize = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| fail("bad ring index"))?;
                    let dropped: u64 = parts
                        .next()
                        .and_then(|v| v.strip_prefix("dropped="))
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| fail("bad dropped count"))?;
                    snap.threads.push(ThreadTrace {
                        ring,
                        events: Vec::new(),
                        dropped,
                    });
                }
                "e" => {
                    let mut next_u64 = || parts.next().and_then(|v| v.parse::<u64>().ok());
                    let (pos, ts, ka, b, c) = (
                        next_u64().ok_or_else(|| fail("bad event pos"))?,
                        next_u64().ok_or_else(|| fail("bad event ts"))?,
                        next_u64().ok_or_else(|| fail("bad event kind word"))?,
                        next_u64().ok_or_else(|| fail("bad event payload b"))?,
                        next_u64().ok_or_else(|| fail("bad event payload c"))?,
                    );
                    let kind =
                        EventKind::decode(ka, b, c).ok_or_else(|| fail("unknown event kind"))?;
                    snap.threads
                        .last_mut()
                        .ok_or_else(|| fail("event before any ring header"))?
                        .events
                        .push(Event { pos, ts, kind });
                }
                _ => return Err(fail("unknown record tag")),
            }
        }
        Ok(snap)
    }

    /// Writes the trace-file format to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_trace_string())
    }

    /// Reads and parses a trace file.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed traces (as `InvalidData`).
    pub fn read_file(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::parse(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Renders the snapshot (raw events + derived summary) as a JSON
    /// document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"labels\": [");
        for (i, name) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(name));
        }
        out.push_str("],\n  \"threads\": [");
        for (ti, t) in self.threads.iter().enumerate() {
            if ti > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"ring\": {}, \"dropped\": {}, \"events\": [",
                t.ring, t.dropped
            );
            for (ei, e) in t.events.iter().enumerate() {
                if ei > 0 {
                    out.push(',');
                }
                out.push_str("\n      ");
                out.push_str(&self.event_json(e));
            }
            out.push_str("\n    ]}");
        }
        out.push_str("\n  ],\n  \"summary\": ");
        out.push_str(&summary_json(&self.summary(), "  "));
        out.push_str("\n}\n");
        out
    }

    fn name(&self, id: u32) -> String {
        self.labels
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| format!("label#{id}"))
    }

    fn event_json(&self, e: &Event) -> String {
        let head = format!("{{\"pos\": {}, \"ts\": {}, ", e.pos, e.ts);
        let body = match e.kind {
            EventKind::SpanEnter { label } => {
                format!(
                    "\"kind\": \"span-enter\", \"label\": {}",
                    json_str(&self.name(label))
                )
            }
            EventKind::SpanExit { label } => {
                format!(
                    "\"kind\": \"span-exit\", \"label\": {}",
                    json_str(&self.name(label))
                )
            }
            EventKind::PhaseEnter { label } => {
                format!(
                    "\"kind\": \"phase-enter\", \"label\": {}",
                    json_str(&self.name(label))
                )
            }
            EventKind::PhaseExit { label } => {
                format!(
                    "\"kind\": \"phase-exit\", \"label\": {}",
                    json_str(&self.name(label))
                )
            }
            EventKind::Persist {
                region,
                lines,
                dur_ns,
            } => format!(
                "\"kind\": \"persist\", \"region\": {}, \"lines\": {lines}, \"dur_ns\": {dur_ns}",
                json_str(&self.name(region))
            ),
            EventKind::Fence { region } => {
                format!(
                    "\"kind\": \"fence\", \"region\": {}",
                    json_str(&self.name(region))
                )
            }
            EventKind::FlushEpoch { region, epoch } => format!(
                "\"kind\": \"flush-epoch\", \"region\": {}, \"epoch\": {epoch}",
                json_str(&self.name(region))
            ),
            EventKind::Crash { region, events } => format!(
                "\"kind\": \"crash\", \"region\": {}, \"events\": {events}",
                json_str(&self.name(region))
            ),
            EventKind::CrashSite { shard, events } => format!(
                "\"kind\": \"crash-site\", \"site\": {}, \"events\": {events}",
                if shard == u64::MAX {
                    json_str("runtime")
                } else {
                    json_str(&format!("shard-{shard}"))
                }
            ),
        };
        format!("{head}{body}}}")
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a [`TelemetrySummary`] as JSON (also used standalone by
/// campaign reports).
#[must_use]
pub fn summary_json(s: &TelemetrySummary, indent: &str) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\n{indent}  \"events\": {}, \"dropped\": {}, \"flush_epochs\": {}, \"fences\": {},",
        s.events, s.dropped, s.flush_epochs, s.fences
    );
    let _ = write!(out, "\n{indent}  \"ops\": [");
    for (i, op) in s.ops.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n{indent}    {{\"label\": {}, \"count\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}}}",
            json_str(&op.label), op.count, op.mean_ns, op.p50_ns, op.p99_ns, op.p999_ns, op.max_ns
        );
    }
    let _ = write!(out, "\n{indent}  ],\n{indent}  \"persist_economy\": [");
    for (i, pe) in s.persist_economy.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n{indent}    {{\"label\": {}, \"persists\": {}, \"lines\": {}, \"coalesced\": {}, \"redundant\": {}}}",
            json_str(&pe.label), pe.persists, pe.lines, pe.coalesced, pe.redundant
        );
    }
    let _ = write!(out, "\n{indent}  ],\n{indent}  \"timeline\": [");
    for (i, entry) in s.timeline.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n{indent}    {{\"at_ns\": {}, \"site\": {}, \"at_events\": {}, \"regions_down\": {}, \"phases\": [",
            entry.at_ns, json_str(&entry.site), entry.at_events, entry.regions_down
        );
        for (pi, p) in entry.phases.iter().enumerate() {
            if pi > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n{indent}      {{\"label\": {}, \"count\": {}, \"total_ns\": {}, \"events\": {}}}",
                json_str(&p.label), p.count, p.total_ns, p.events
            );
        }
        let _ = write!(out, "\n{indent}    ]}}");
    }
    let _ = write!(out, "\n{indent}  ]\n{indent}}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceSnapshot {
        TraceSnapshot {
            labels: vec!["unlabeled".into(), "kv put".into(), "shard-0".into()],
            threads: vec![ThreadTrace {
                ring: 3,
                dropped: 2,
                events: vec![
                    Event {
                        pos: 10,
                        ts: 100,
                        kind: EventKind::SpanEnter { label: 1 },
                    },
                    Event {
                        pos: 11,
                        ts: 150,
                        kind: EventKind::Persist {
                            region: 2,
                            lines: 5,
                            dur_ns: 42,
                        },
                    },
                    Event {
                        pos: 12,
                        ts: 200,
                        kind: EventKind::SpanExit { label: 1 },
                    },
                ],
            }],
        }
    }

    #[test]
    fn trace_format_roundtrips() {
        let snap = sample();
        let text = snap.to_trace_string();
        let back = TraceSnapshot::parse(&text).expect("parses");
        assert_eq!(back.labels, snap.labels);
        assert_eq!(back.threads.len(), 1);
        assert_eq!(back.threads[0].ring, 3);
        assert_eq!(back.threads[0].dropped, 2);
        assert_eq!(back.threads[0].events, snap.threads[0].events);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TraceSnapshot::parse("not a trace").is_err());
        assert!(TraceSnapshot::parse("pstack-trace v1\nbogus line").is_err());
        assert!(TraceSnapshot::parse("pstack-trace v1\ne 1 2 3 4 5").is_err());
    }

    #[test]
    fn json_contains_required_keys_and_resolved_labels() {
        let json = sample().to_json();
        for key in [
            "\"version\"",
            "\"labels\"",
            "\"threads\"",
            "\"events\"",
            "\"summary\"",
            "\"ops\"",
            "\"persist_economy\"",
            "\"timeline\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"kv put\""));
        assert!(json.contains("\"shard-0\""));
    }
}
