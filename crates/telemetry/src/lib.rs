//! `pstack-telemetry` — an always-compiled, feature-gated flight
//! recorder for the persistent-stack runtime.
//!
//! The recorder turns the sanitizer's `op_label()` stack into real
//! spans: per-thread lock-free ring buffers record span enter/exit,
//! persist round-trips, flush-epoch bumps, crash events, and recovery
//! phases with monotonic timestamps. A collector merges the rings
//! into per-op latency histograms (p50/p99/p999), persist-economy
//! counters attributed per op, and a crash→recovery timeline.
//!
//! Cost model, in three gates:
//!
//! 1. **Feature off** (`recorder` not enabled): every hook body is
//!    behind `cfg!(feature = "recorder")`, a compile-time constant, so
//!    the persist path carries literally nothing — the
//!    `telemetry_overhead` bench in `pstack-bench` holds this gate.
//! 2. **Feature on, recording off**: one relaxed atomic load per hook.
//! 3. **Recording on** (inside a [`TraceSession`]): one seqlock slot
//!    write into the calling thread's ring — no locks, no allocation
//!    after the ring exists.
//!
//! Rings are pooled: when a thread exits, its ring returns to a free
//! list and the next spawned thread reuses it, so chaos campaigns
//! that spawn hundreds of short-lived workers stay bounded at
//! (max concurrent threads) × ring size.

mod collect;
mod hist;
mod ring;
mod trace;

pub use collect::{
    CrashEntry, OpStat, PersistEconomy, RecoveryPhaseStat, TelemetrySummary, ThreadTrace,
    TraceSnapshot,
};
pub use hist::LatencyHistogram;
pub use ring::{Event, EventKind, Ring, RingRead};
pub use trace::summary_json;

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// True when the recorder is compiled in (`recorder` feature).
#[must_use]
pub const fn compiled() -> bool {
    cfg!(feature = "recorder")
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static ACTIVE_SESSIONS: AtomicUsize = AtomicUsize::new(0);

/// True when events are being recorded right now. This is the hot-path
/// gate: with the `recorder` feature off it is a compile-time `false`
/// and every hook folds away.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    compiled() && ENABLED.load(Ordering::Relaxed)
}

/// Nanoseconds since the process-wide trace epoch (first use).
fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Label interning

struct Interner {
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERN: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERN.get_or_init(|| {
        Mutex::new(Interner {
            // Id 0 is the attribution sink for events outside any span.
            names: vec!["unlabeled".to_string()],
            by_name: HashMap::from([("unlabeled".to_string(), 0)]),
        })
    })
}

/// Interns a label, returning its stable id (0 when the recorder is
/// compiled out). Region names go through here once at build time.
#[must_use]
pub fn intern(name: &str) -> u32 {
    if !compiled() {
        return 0;
    }
    let mut it = interner().lock().unwrap();
    if let Some(&id) = it.by_name.get(name) {
        return id;
    }
    let id = u32::try_from(it.names.len()).expect("label table overflow");
    it.names.push(name.to_string());
    it.by_name.insert(name.to_string(), id);
    id
}

/// Interns a `&'static str` through a per-thread pointer cache, so the
/// span hot path pays a hash of (ptr, len) instead of the string.
fn intern_static(name: &'static str) -> u32 {
    thread_local! {
        static CACHE: RefCell<HashMap<(usize, usize), u32>> = RefCell::new(HashMap::new());
    }
    CACHE
        .try_with(|c| {
            let key = (name.as_ptr() as usize, name.len());
            if let Some(&id) = c.borrow().get(&key) {
                return id;
            }
            let id = intern(name);
            c.borrow_mut().insert(key, id);
            id
        })
        .unwrap_or_else(|_| intern(name))
}

fn label_names() -> Vec<String> {
    interner().lock().unwrap().names.clone()
}

// ---------------------------------------------------------------------------
// Ring registry (pooled per-thread rings)

struct Registry {
    rings: Vec<Arc<Ring>>,
    free: Vec<usize>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            rings: Vec::new(),
            free: Vec::new(),
        })
    })
}

fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("PSTACK_TELEMETRY_RING")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(1 << 15)
    })
}

/// Owns this thread's slot in the registry; returning it to the free
/// list on thread exit is what keeps campaign memory bounded.
struct ThreadRing {
    idx: usize,
    ring: Arc<Ring>,
}

impl Drop for ThreadRing {
    fn drop(&mut self) {
        if let Ok(mut reg) = registry().lock() {
            reg.free.push(self.idx);
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<ThreadRing>> = const { RefCell::new(None) };
}

/// Runs `f` with this thread's ring, acquiring one on first use.
/// Silently skips during thread teardown (TLS already destroyed).
fn with_ring(f: impl FnOnce(&Ring)) {
    let _ = CURRENT.try_with(|cur| {
        let mut cur = cur.borrow_mut();
        if cur.is_none() {
            let mut reg = registry().lock().unwrap();
            let idx = reg.free.pop().unwrap_or_else(|| {
                reg.rings.push(Arc::new(Ring::new(ring_capacity())));
                reg.rings.len() - 1
            });
            let ring = reg.rings[idx].clone();
            *cur = Some(ThreadRing { idx, ring });
        }
        f(&cur.as_ref().unwrap().ring);
    });
}

fn push_event(kind: EventKind) {
    with_ring(|ring| ring.push(now_ns(), kind));
}

// ---------------------------------------------------------------------------
// Hooks

/// Records a span-enter for `label`; returns true if recorded (the
/// caller should then emit the matching [`span_exit`] on drop).
#[inline]
pub fn span_enter(label: &'static str) -> bool {
    if !enabled() {
        return false;
    }
    let id = intern_static(label);
    push_event(EventKind::SpanEnter { label: id });
    true
}

/// Records the matching span-exit. Call only when [`span_enter`]
/// returned true, so toggling mid-span cannot unbalance a trace.
#[inline]
pub fn span_exit(label: &'static str) {
    if !enabled() {
        return;
    }
    let id = intern_static(label);
    push_event(EventKind::SpanExit { label: id });
}

/// RAII span for call sites without an `op_label` (telemetry-only).
pub struct SpanGuard {
    label: &'static str,
    armed: bool,
}

/// Opens a telemetry-only span (no sanitizer attribution).
#[inline]
#[must_use]
pub fn span(label: &'static str) -> SpanGuard {
    SpanGuard {
        label,
        armed: span_enter(label),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            span_exit(self.label);
        }
    }
}

/// RAII recovery-phase marker. Phases are the currency of the
/// crash→recovery timeline; unlike spans they do not attribute
/// persists, so they can wrap whole recovery passes without stealing
/// attribution from the op labels inside.
pub struct PhaseGuard {
    label: u32,
    armed: bool,
}

/// Opens a recovery phase (e.g. `recovery.evidence-scan`).
#[inline]
#[must_use]
pub fn phase(label: &'static str) -> PhaseGuard {
    if !enabled() {
        return PhaseGuard {
            label: 0,
            armed: false,
        };
    }
    let id = intern_static(label);
    push_event(EventKind::PhaseEnter { label: id });
    PhaseGuard {
        label: id,
        armed: true,
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if self.armed {
            push_event(EventKind::PhaseExit { label: self.label });
        }
    }
}

/// Start-of-persist timestamp capture. Constructed unconditionally on
/// the persist path; costs one branch when recording is off.
pub struct PersistProbe {
    start: Option<Instant>,
}

/// Captures the persist round-trip start time (None when off).
#[inline]
#[must_use]
pub fn persist_probe() -> PersistProbe {
    PersistProbe {
        start: enabled().then(Instant::now),
    }
}

impl PersistProbe {
    /// Completes the round-trip: `lines` actually-flushed cache lines
    /// (0 means the barrier was redundant).
    #[inline]
    pub fn record(self, region: u32, lines: usize) {
        if let Some(t0) = self.start {
            let dur_ns = t0.elapsed().as_nanos() as u64;
            push_event(EventKind::Persist {
                region,
                lines: u32::try_from(lines).unwrap_or(u32::MAX),
                dur_ns,
            });
        }
    }
}

/// Records a bare fence (ordering barrier with no flushed range).
#[inline]
pub fn fence_event(region: u32) {
    if enabled() {
        push_event(EventKind::Fence { region });
    }
}

/// Records a flush-epoch bump (group-commit publication point).
#[inline]
pub fn flush_epoch(region: u32, epoch: u64) {
    if enabled() {
        push_event(EventKind::FlushEpoch { region, epoch });
    }
}

/// Records a region crash with its event-counter reading.
#[inline]
pub fn crash(region: u32, events: u64) {
    if enabled() {
        push_event(EventKind::Crash { region, events });
    }
}

/// Records runtime-level crash attribution. `shard` is the shard
/// index, or [`CONTROL_REGION`] for the control region.
#[inline]
pub fn crash_site(shard: u64, events: u64) {
    if enabled() {
        push_event(EventKind::CrashSite { shard, events });
    }
}

/// `shard` value in [`crash_site`] naming the runtime control region.
pub const CONTROL_REGION: u64 = u64::MAX;

// ---------------------------------------------------------------------------
// Sessions

/// A recording window. Starting a session turns the recorder on (if
/// compiled); finishing it collects every event recorded since the
/// start into a [`TraceSnapshot`]. Sessions nest/overlap: each keeps
/// its own per-ring cursors, and the recorder switches off when the
/// last one finishes.
pub struct TraceSession {
    /// Ring-head positions at start, indexed by registry slot. Rings
    /// created after the session started implicitly begin at 0.
    start: Vec<u64>,
    /// Still holding a recorder activation (cleared by `finish`; the
    /// `Drop` impl releases it if the session is abandoned).
    live: bool,
}

fn deactivate() {
    if ACTIVE_SESSIONS.fetch_sub(1, Ordering::Relaxed) == 1 {
        ENABLED.store(false, Ordering::Relaxed);
    }
}

impl TraceSession {
    /// Starts recording and marks the collection window.
    #[must_use]
    pub fn start() -> Self {
        if !compiled() {
            return Self {
                start: Vec::new(),
                live: false,
            };
        }
        let reg = registry().lock().unwrap();
        let start = reg.rings.iter().map(|r| r.head()).collect();
        ACTIVE_SESSIONS.fetch_add(1, Ordering::Relaxed);
        ENABLED.store(true, Ordering::Relaxed);
        Self { start, live: true }
    }

    /// Stops this session and returns everything it recorded.
    #[must_use]
    pub fn finish(mut self) -> TraceSnapshot {
        if !compiled() {
            return TraceSnapshot::default();
        }
        if std::mem::take(&mut self.live) {
            deactivate();
        }
        let reg = registry().lock().unwrap();
        let mut threads = Vec::new();
        for (idx, ring) in reg.rings.iter().enumerate() {
            let from = self.start.get(idx).copied().unwrap_or(0);
            let read = ring.read_from(from);
            if !read.events.is_empty() || read.dropped > 0 {
                threads.push(ThreadTrace {
                    ring: idx,
                    events: read.events,
                    dropped: read.dropped,
                });
            }
        }
        TraceSnapshot {
            labels: label_names(),
            threads,
        }
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        if std::mem::take(&mut self.live) {
            deactivate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Sessions share global recorder state; keep session-based tests in
    // one #[test] so parallel test threads don't cross-pollinate the
    // enabled flag in ways the assertions below care about. (Even so,
    // assertions only ever look at labels this test itself creates.)
    #[test]
    fn session_records_spans_and_persists() {
        if !compiled() {
            let snap = TraceSession::start().finish();
            assert!(snap.threads.is_empty());
            return;
        }
        let session = TraceSession::start();
        {
            let _outer = span("lib-test.outer");
            let probe = persist_probe();
            probe.record(intern("lib-test.region"), 3);
            let _inner = span("lib-test.inner");
        }
        flush_epoch(intern("lib-test.region"), 9);
        let snap = session.finish();
        let sum = snap.summary();
        let outer = sum
            .ops
            .iter()
            .find(|o| o.label == "lib-test.outer")
            .expect("outer span present");
        assert_eq!(outer.count, 1);
        let pe = sum
            .persist_economy
            .iter()
            .find(|p| p.label == "lib-test.outer")
            .expect("persist attributed to innermost open span");
        assert_eq!(pe.persists, 1);
        assert_eq!(pe.lines, 3);
        assert_eq!(pe.coalesced, 2);
        assert_eq!(pe.redundant, 0);
    }
}
