//! KV workload descriptors and the recoverable function gluing the
//! [`PKvStore`] to the persistent-stack runtime — the KV analogue of
//! the §5.2 CAS machinery (`TaskTable` + `CasTaskFunction`) and of the
//! queue's `QueueOpTable` + `QueueTaskFunction`.

use std::sync::Arc;

use pstack_core::{PContext, PError, RecoverableFunction, RetBytes, Task};
use pstack_heap::PHeap;
use pstack_nvram::{op_label, PMem, POffset};

use crate::shard::{shard_of, ShardedKvStore};
use crate::store::{KvBatchOp, PKvStore};

/// Function id under which [`KvTaskFunction`] is registered.
pub const KV_TASK_FUNC_ID: u64 = 0x0FFD;

/// Function id under which [`ShardedKvTaskFunction`] is registered.
pub const KV_SHARDED_FUNC_ID: u64 = 0x0FFE;

/// Function id under which [`KvCompactFunction`] is registered.
pub const KV_COMPACT_FUNC_ID: u64 = 0x0FFC;

const TABLE_MAGIC: u64 = 0x5053_4B56_5441_4231; // "PSKVTAB1"
const HEADER_LEN: u64 = 16;
const ENTRY_STRIDE: u64 = 48;

const KIND_PUT: u8 = 0;
const KIND_GET: u8 = 1;
const KIND_DEL: u8 = 2;
const KIND_CAS: u8 = 3;

const ST_DONE: u8 = 1;

/// One KV operation descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvTaskOp {
    /// Store `value` under `key`.
    Put {
        /// The key.
        key: u64,
        /// The value to store.
        value: i64,
    },
    /// Read `key`'s current value.
    Get {
        /// The key.
        key: u64,
    },
    /// Remove `key`.
    Delete {
        /// The key.
        key: u64,
    },
    /// Replace `key`'s value with `new` iff it equals `expected`.
    Cas {
        /// The key.
        key: u64,
        /// The value the key must currently hold.
        expected: i64,
        /// The replacement value.
        new: i64,
    },
}

impl KvTaskOp {
    /// The key the operation targets (what the shard router hashes).
    #[must_use]
    pub fn key(&self) -> u64 {
        match *self {
            KvTaskOp::Put { key, .. }
            | KvTaskOp::Get { key }
            | KvTaskOp::Delete { key }
            | KvTaskOp::Cas { key, .. } => key,
        }
    }
}

/// A completed descriptor's answer, with the worker that executed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvTaskAnswer {
    /// Worker (process) id that completed the operation — together with
    /// the descriptor index this is the operation's `(pid, seq)` tag.
    pub executor: u32,
    /// The operation's result.
    pub result: KvTaskResult,
}

/// The result payload of a completed KV descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvTaskResult {
    /// Put answer: stored, or rejected because the store's lifetime
    /// version-log capacity was exhausted.
    Stored(bool),
    /// Get answer.
    Got(Option<i64>),
    /// Delete answer: `true` if the key was present.
    Deleted(bool),
    /// Cas answer: `true` if the expected value matched.
    Swapped(bool),
}

/// A persistent table of KV operation descriptors and answers, driving
/// re-enqueue after restarts exactly like the §5.2 CAS table.
///
/// # Example
///
/// ```
/// use pstack_nvram::PMemBuilder;
/// use pstack_heap::PHeap;
/// use pstack_kv::{KvOpTable, KvTaskOp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pmem = PMemBuilder::new().len(1 << 14).eager_flush(true).build_in_memory();
/// let heap = PHeap::format(pmem.clone(), 0u64.into(), 1 << 14)?;
/// let ops = [KvTaskOp::Put { key: 1, value: 5 }, KvTaskOp::Get { key: 1 }];
/// let table = KvOpTable::format(pmem, &heap, &ops)?;
/// assert_eq!(table.pending()?, vec![0, 1]);
/// assert_eq!(table.op(1)?, KvTaskOp::Get { key: 1 });
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KvOpTable {
    pmem: PMem,
    base: POffset,
    len: usize,
}

impl KvOpTable {
    /// Bytes of NVRAM needed for `n` descriptors.
    #[must_use]
    pub fn required_len(n: usize) -> usize {
        (HEADER_LEN + n as u64 * ENTRY_STRIDE) as usize
    }

    /// Allocates and persists a table holding `ops`, all pending.
    ///
    /// # Errors
    ///
    /// Heap or NVRAM errors, or [`PError::InvalidConfig`] for an empty
    /// op list.
    pub fn format(pmem: PMem, heap: &PHeap, ops: &[KvTaskOp]) -> Result<Self, PError> {
        if ops.is_empty() {
            return Err(PError::InvalidConfig(
                "KV op table needs at least one descriptor".into(),
            ));
        }
        let len = Self::required_len(ops.len());
        let base = heap.alloc_aligned(len, 64)?;
        pmem.fill(base, 0, len)?;
        pmem.write_u64(base, TABLE_MAGIC)?;
        pmem.write_u64(base + 8u64, ops.len() as u64)?;
        for (i, op) in ops.iter().enumerate() {
            let e = Self::entry_off(base, i);
            match *op {
                KvTaskOp::Put { key, value } => {
                    pmem.write_u8(e, KIND_PUT)?;
                    pmem.write_u64(e + 8u64, key)?;
                    pmem.write_i64(e + 16u64, value)?;
                }
                KvTaskOp::Get { key } => {
                    pmem.write_u8(e, KIND_GET)?;
                    pmem.write_u64(e + 8u64, key)?;
                }
                KvTaskOp::Delete { key } => {
                    pmem.write_u8(e, KIND_DEL)?;
                    pmem.write_u64(e + 8u64, key)?;
                }
                KvTaskOp::Cas { key, expected, new } => {
                    pmem.write_u8(e, KIND_CAS)?;
                    pmem.write_u64(e + 8u64, key)?;
                    pmem.write_i64(e + 16u64, new)?;
                    pmem.write_i64(e + 24u64, expected)?;
                }
            }
        }
        pmem.flush(base, len)?;
        Ok(KvOpTable {
            pmem,
            base,
            len: ops.len(),
        })
    }

    /// Re-attaches to a table created at `base`.
    ///
    /// # Errors
    ///
    /// [`PError::CorruptStack`] on a bad magic word.
    pub fn open(pmem: PMem, base: POffset) -> Result<Self, PError> {
        let magic = pmem.read_u64(base)?;
        if magic != TABLE_MAGIC {
            return Err(PError::CorruptStack(format!(
                "bad KV-op-table magic {magic:#x} at {base}"
            )));
        }
        let len = pmem.read_u64(base + 8u64)? as usize;
        Ok(KvOpTable { pmem, base, len })
    }

    fn entry_off(base: POffset, idx: usize) -> POffset {
        base + (HEADER_LEN + idx as u64 * ENTRY_STRIDE)
    }

    fn entry(&self, idx: usize) -> Result<POffset, PError> {
        if idx >= self.len {
            return Err(PError::InvalidConfig(format!(
                "descriptor index {idx} out of range ({} descriptors)",
                self.len
            )));
        }
        Ok(Self::entry_off(self.base, idx))
    }

    /// The table's base offset (persist it to find the table again).
    #[must_use]
    pub fn base(&self) -> POffset {
        self.base
    }

    /// Number of descriptors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the table holds no descriptors (never happens for
    /// tables built through [`KvOpTable::format`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads descriptor `idx`'s operation.
    ///
    /// # Errors
    ///
    /// Out-of-range index or NVRAM errors.
    pub fn op(&self, idx: usize) -> Result<KvTaskOp, PError> {
        let e = self.entry(idx)?;
        let key = self.pmem.read_u64(e + 8u64)?;
        match self.pmem.read_u8(e)? {
            KIND_PUT => Ok(KvTaskOp::Put {
                key,
                value: self.pmem.read_i64(e + 16u64)?,
            }),
            KIND_GET => Ok(KvTaskOp::Get { key }),
            KIND_DEL => Ok(KvTaskOp::Delete { key }),
            KIND_CAS => Ok(KvTaskOp::Cas {
                key,
                expected: self.pmem.read_i64(e + 24u64)?,
                new: self.pmem.read_i64(e + 16u64)?,
            }),
            other => Err(PError::CorruptStack(format!(
                "descriptor {idx} has unknown kind {other}"
            ))),
        }
    }

    /// Reads descriptor `idx`'s answer, if it completed.
    ///
    /// # Errors
    ///
    /// Out-of-range index, an unknown kind byte (corruption), or NVRAM
    /// errors.
    pub fn result(&self, idx: usize) -> Result<Option<KvTaskAnswer>, PError> {
        let e = self.entry(idx)?;
        if self.pmem.read_u8(e + 1u64)? != ST_DONE {
            return Ok(None);
        }
        let executor = self.pmem.read_u32(e + 4u64)?;
        let flag = self.pmem.read_u8(e + 2u64)? != 0;
        let result = match self.pmem.read_u8(e)? {
            KIND_PUT => KvTaskResult::Stored(flag),
            KIND_GET => KvTaskResult::Got(if flag {
                Some(self.pmem.read_i64(e + 32u64)?)
            } else {
                None
            }),
            KIND_DEL => KvTaskResult::Deleted(flag),
            KIND_CAS => KvTaskResult::Swapped(flag),
            other => {
                return Err(PError::CorruptStack(format!(
                    "descriptor {idx} has unknown kind {other}"
                )))
            }
        };
        Ok(Some(KvTaskAnswer { executor, result }))
    }

    /// Writes descriptor `idx`'s answer payload (volatile on a
    /// buffered region until flushed).
    fn write_answer(
        &self,
        idx: usize,
        executor: u32,
        result: KvTaskResult,
    ) -> Result<POffset, PError> {
        let e = self.entry(idx)?;
        self.pmem.write_u32(e + 4u64, executor)?;
        match result {
            KvTaskResult::Stored(ok) | KvTaskResult::Deleted(ok) | KvTaskResult::Swapped(ok) => {
                self.pmem.write_u8(e + 2u64, u8::from(ok))?;
            }
            KvTaskResult::Got(None) => {
                self.pmem.write_u8(e + 2u64, 0)?;
            }
            KvTaskResult::Got(Some(v)) => {
                self.pmem.write_i64(e + 32u64, v)?;
                self.pmem.write_u8(e + 2u64, 1)?;
            }
        }
        Ok(e)
    }

    /// Persists descriptor `idx`'s answer. The answer payload is
    /// persisted before the one-byte done flag, so a crash in between
    /// leaves the descriptor pending and recovery recomputes the
    /// answer — the same discipline as the stack's marker flips.
    ///
    /// # Errors
    ///
    /// Out-of-range index or NVRAM errors.
    pub fn mark_done(&self, idx: usize, executor: u32, result: KvTaskResult) -> Result<(), PError> {
        let e = self.write_answer(idx, executor, result)?;
        self.pmem.flush(e, ENTRY_STRIDE as usize)?;
        self.pmem.write_u8(e + 1u64, ST_DONE)?;
        self.pmem.flush(e + 1u64, 1)?;
        Ok(())
    }

    /// Persists a whole batch of answers with two coalesced persists
    /// (all payloads, then all done flags) instead of two per answer —
    /// the answer half of the group-commit discipline. Per entry the
    /// ordering invariant of [`KvOpTable::mark_done`] is preserved:
    /// every payload is durable strictly before its flag, and a flag
    /// line persists atomically with the (already durable) payload it
    /// shares the line with — so a crash anywhere in the batch leaves
    /// a clean mix of done and still-pending descriptors, never a
    /// flagged descriptor with a torn answer.
    ///
    /// # Errors
    ///
    /// Out-of-range index or NVRAM errors.
    pub fn mark_done_batch(&self, entries: &[(usize, u32, KvTaskResult)]) -> Result<(), PError> {
        let Some(&(first, ..)) = entries.first() else {
            return Ok(());
        };
        let mut lo = Self::entry_off(self.base, first).get();
        let mut hi = lo;
        for &(idx, executor, result) in entries {
            let e = self.write_answer(idx, executor, result)?;
            lo = lo.min(e.get());
            hi = hi.max(e.get());
        }
        let span = (hi - lo + ENTRY_STRIDE) as usize;
        self.pmem.flush(POffset::new(lo), span)?;
        for &(idx, ..) in entries {
            self.pmem
                .write_u8(Self::entry_off(self.base, idx) + 1u64, ST_DONE)?;
        }
        self.pmem.flush(POffset::new(lo), span)?;
        Ok(())
    }

    /// Indexes of descriptors that have not completed, in table order.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn pending(&self) -> Result<Vec<usize>, PError> {
        let mut out = Vec::new();
        for i in 0..self.len {
            if self.pmem.read_u8(self.entry(i)? + 1u64)? != ST_DONE {
                out.push(i);
            }
        }
        Ok(out)
    }

    /// All answers, `None` for still-pending descriptors.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn results(&self) -> Result<Vec<Option<KvTaskAnswer>>, PError> {
        (0..self.len).map(|i| self.result(i)).collect()
    }
}

/// Executes descriptor `idx` of a [`KvOpTable`] against a [`PKvStore`].
///
/// * `call` runs the operation tagged `(worker pid, idx + 1)` and
///   persists the answer in the table;
/// * `recover` first checks the table (the answer may already be
///   durable), then runs the store's *recovery* procedure — which scans
///   the published chain evidence before re-executing — and persists
///   its verdict.
#[derive(Clone)]
pub struct KvTaskFunction {
    store: PKvStore,
    table: KvOpTable,
}

impl KvTaskFunction {
    /// Bundles a store and its descriptor table.
    #[must_use]
    pub fn new(store: PKvStore, table: KvOpTable) -> Self {
        KvTaskFunction { store, table }
    }

    /// Convenience: wraps into the `Arc<dyn RecoverableFunction>` shape
    /// the registry wants.
    #[must_use]
    pub fn into_arc(self) -> Arc<dyn RecoverableFunction> {
        Arc::new(self)
    }

    fn seq_of(idx: usize) -> u64 {
        idx as u64 + 1
    }

    fn parse_index(args: &[u8]) -> Result<usize, PError> {
        let bytes: [u8; 8] = args
            .get(..8)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(|| PError::Task("KV task arguments must hold an 8-byte index".into()))?;
        Ok(u64::from_le_bytes(bytes) as usize)
    }

    fn encode_answer(result: KvTaskResult) -> Option<RetBytes> {
        let mut b = [0u8; 8];
        match result {
            KvTaskResult::Stored(ok) => {
                b[0] = 1;
                b[1] = u8::from(ok);
            }
            KvTaskResult::Got(None) => b[0] = 2,
            KvTaskResult::Got(Some(v)) => {
                b[0] = 3;
                // Squeeze the low 7 bytes through the small-return slot;
                // the authoritative full answer lives in the table.
                b[1..8].copy_from_slice(&v.to_le_bytes()[..7]);
            }
            KvTaskResult::Deleted(ok) => {
                b[0] = 4;
                b[1] = u8::from(ok);
            }
            KvTaskResult::Swapped(ok) => {
                b[0] = 5;
                b[1] = u8::from(ok);
            }
        }
        Some(b)
    }

    fn run(
        &self,
        ctx: &mut PContext<'_>,
        idx: usize,
        recovery: bool,
    ) -> Result<Option<RetBytes>, PError> {
        let _label = op_label(if recovery {
            "kv_task.recover"
        } else {
            "kv_task.call"
        });
        if let Some(answer) = self.table.result(idx)? {
            return Ok(Self::encode_answer(answer.result));
        }
        let pid = ctx.pid as u64;
        let seq = Self::seq_of(idx);
        let result = match self.table.op(idx)? {
            KvTaskOp::Put { key, value } => {
                let ok = if recovery {
                    self.store.recover_put(pid, seq, key, value)?
                } else {
                    self.store.put(pid, seq, key, value)?
                };
                KvTaskResult::Stored(ok)
            }
            KvTaskOp::Get { key } => KvTaskResult::Got(self.store.get(key)?),
            KvTaskOp::Delete { key } => {
                let ok = if recovery {
                    self.store.recover_delete(pid, seq, key)?
                } else {
                    self.store.delete(pid, seq, key)?
                };
                KvTaskResult::Deleted(ok)
            }
            KvTaskOp::Cas { key, expected, new } => {
                let ok = if recovery {
                    self.store.recover_cas(pid, seq, key, expected, new)?
                } else {
                    self.store.cas(pid, seq, key, expected, new)?
                };
                KvTaskResult::Swapped(ok)
            }
        };
        self.table.mark_done(idx, ctx.pid as u32, result)?;
        Ok(Self::encode_answer(result))
    }
}

impl RecoverableFunction for KvTaskFunction {
    fn call(&self, ctx: &mut PContext<'_>, args: &[u8]) -> Result<Option<RetBytes>, PError> {
        let idx = Self::parse_index(args)?;
        self.run(ctx, idx, false)
    }

    fn recover(&self, ctx: &mut PContext<'_>, args: &[u8]) -> Result<Option<RetBytes>, PError> {
        let idx = Self::parse_index(args)?;
        self.run(ctx, idx, true)
    }
}

/// Executes descriptors of **per-shard** [`KvOpTable`]s against a
/// [`ShardedKvStore`] — the sharded analogue of [`KvTaskFunction`].
///
/// Each shard carries its own descriptor table (ideally allocated from
/// the shard's own region via [`ShardedKvStore::heap`]), so executing,
/// answering and recovering a descriptor touches exactly one shard:
/// workers driving different shards never contend on a region lock.
/// Arguments name either a single descriptor, `(shard, index)`
/// ([`ShardedKvTaskFunction::args_for`]), or a **batch window**,
/// `(shard, start, count)`
/// ([`ShardedKvTaskFunction::batch_args_for`]) — a whole group commit
/// executed under one persistent frame, which is how sharded batches
/// ride the stack-driven recovery path. The operation tag is
/// `(worker pid, (shard << 32) | (index + 1))`, globally unique across
/// shards so the sharded verifier can match records to operations.
#[derive(Clone)]
pub struct ShardedKvTaskFunction {
    store: ShardedKvStore,
    tables: Vec<KvOpTable>,
    mutators: usize,
}

impl ShardedKvTaskFunction {
    /// Bundles a sharded store with one descriptor table per shard.
    ///
    /// # Panics
    ///
    /// Panics if the table count differs from the store's shard count.
    #[must_use]
    pub fn new(store: ShardedKvStore, tables: Vec<KvOpTable>) -> Self {
        assert_eq!(
            store.nshards(),
            tables.len(),
            "one descriptor table per shard"
        );
        ShardedKvTaskFunction {
            store,
            tables,
            mutators: 1,
        }
    }

    /// Sets how many concurrent mutator threads a batch window drives
    /// per shard (default 1, the quiesced group commit). With more,
    /// the window's mutations run through the lock-free detectable
    /// publication path instead: each thread reserves, persists and
    /// publishes its records independently, overlapping their persist
    /// round-trips. Recovery windows are unaffected — replays stay on
    /// the evidence-scanning [`PKvStore::recover_batch`] dual.
    ///
    /// Answers still linearize (each op takes effect exactly once at
    /// its head-CAS), but ops on the *same key* in one window may
    /// interleave in any real-time order rather than table order.
    #[must_use]
    pub fn with_mutators(mut self, mutators: usize) -> Self {
        self.mutators = mutators.max(1);
        self
    }

    /// Convenience: wraps into the `Arc<dyn RecoverableFunction>` shape
    /// the registry wants.
    #[must_use]
    pub fn into_arc(self) -> Arc<dyn RecoverableFunction> {
        Arc::new(self)
    }

    /// Encodes descriptor `(shard, idx)` as task arguments.
    #[must_use]
    pub fn args_for(shard: u32, idx: u32) -> [u8; 8] {
        let mut b = [0u8; 8];
        b[..4].copy_from_slice(&shard.to_le_bytes());
        b[4..].copy_from_slice(&idx.to_le_bytes());
        b
    }

    /// Encodes a **batch window** — descriptors `start..start + count`
    /// of shard `shard`'s table — as task arguments. The window runs as
    /// *one* persistent-stack task: gets resolve directly, mutations go
    /// through the shard's group commit ([`PKvStore::apply_batch`] in a
    /// normal run, its evidence-scanning dual
    /// [`PKvStore::recover_batch`] when the frame is replayed), and all
    /// answers persist with one coalesced
    /// [`KvOpTable::mark_done_batch`]. Already-completed descriptors
    /// inside the window are skipped, so replaying the frame after a
    /// crash is idempotent.
    #[must_use]
    pub fn batch_args_for(shard: u32, start: u32, count: u32) -> [u8; 12] {
        let mut b = [0u8; 12];
        b[..4].copy_from_slice(&shard.to_le_bytes());
        b[4..8].copy_from_slice(&start.to_le_bytes());
        b[8..].copy_from_slice(&count.to_le_bytes());
        b
    }

    /// Builds one [`Task`] per still-pending window of every shard's
    /// table, registered under `func_id`: each shard's pending
    /// descriptors are chunked into groups of at most `batch`
    /// (consecutive in table order), and each chunk becomes a batch
    /// window spanning it. With `batch <= 1` every pending descriptor
    /// gets its own single-op task instead. This is the re-enqueue
    /// step of the §5.2 loop, sharded: a driver calls it after every
    /// restart and feeds the tasks to `run_tasks`.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn pending_tasks(&self, func_id: u64, batch: usize) -> Result<Vec<Task>, PError> {
        let mut tasks = Vec::new();
        for (shard, table) in self.tables.iter().enumerate() {
            let shard = shard as u32;
            let pending = table.pending()?;
            if batch <= 1 {
                tasks.extend(
                    pending
                        .iter()
                        .map(|&idx| Task::new(func_id, Self::args_for(shard, idx as u32).to_vec())),
                );
                continue;
            }
            for chunk in pending.chunks(batch) {
                let (Some(&first), Some(&last)) = (chunk.first(), chunk.last()) else {
                    continue;
                };
                let count = (last - first + 1) as u32;
                tasks.push(Task::new(
                    func_id,
                    Self::batch_args_for(shard, first as u32, count).to_vec(),
                ));
            }
        }
        Ok(tasks)
    }

    /// Partitions a global operation list into per-shard descriptor
    /// lists by key routing, so each shard's table only names keys the
    /// shard owns. Returns `nshards` lists (some possibly empty).
    #[must_use]
    pub fn partition_ops(ops: &[KvTaskOp], nshards: usize) -> Vec<Vec<KvTaskOp>> {
        let mut out = vec![Vec::new(); nshards];
        for op in ops {
            out[shard_of(op.key(), nshards)].push(*op);
        }
        out
    }

    /// [`ShardedKvTaskFunction::partition_ops`], with every idle shard
    /// padded by a harmless get on a key it owns — [`KvOpTable`]s must
    /// be non-empty, and keeping the pad key home-routed keeps the
    /// routing invariant checkable on every table.
    #[must_use]
    pub fn partition_ops_padded(ops: &[KvTaskOp], nshards: usize) -> Vec<Vec<KvTaskOp>> {
        let mut per_shard = Self::partition_ops(ops, nshards);
        for (s, shard_ops) in per_shard.iter_mut().enumerate() {
            if shard_ops.is_empty() {
                let key = (0..)
                    .find(|&k| shard_of(k, nshards) == s)
                    .expect("router is total");
                shard_ops.push(KvTaskOp::Get { key });
            }
        }
        per_shard
    }

    /// The globally unique operation tag of descriptor `(shard, idx)`.
    #[must_use]
    pub fn seq_of(shard: u32, idx: usize) -> u64 {
        (u64::from(shard) << 32) | (idx as u64 + 1)
    }

    /// Decodes `(shard, index, count)`: 8-byte args name one
    /// descriptor (`count == 1`), 12-byte args a batch window.
    fn parse_args(args: &[u8]) -> Result<(u32, usize, usize), PError> {
        let bytes: [u8; 8] = args
            .get(..8)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(|| {
                PError::Task("sharded KV task arguments must hold (shard, index) u32s".into())
            })?;
        let shard = u32::from_le_bytes(bytes[..4].try_into().expect("slice length"));
        let idx = u32::from_le_bytes(bytes[4..].try_into().expect("slice length"));
        let count = match args.len() {
            8 => 1,
            12 => u32::from_le_bytes(args[8..].try_into().expect("slice length")) as usize,
            _ => {
                return Err(PError::Task(
                    "sharded KV task arguments must be 8 bytes (one op) or 12 (a window)".into(),
                ))
            }
        };
        Ok((shard, idx as usize, count.max(1)))
    }

    fn run(
        &self,
        ctx: &mut PContext<'_>,
        shard: u32,
        idx: usize,
        recovery: bool,
    ) -> Result<Option<RetBytes>, PError> {
        let _label = op_label(if recovery {
            "kv_task.recover"
        } else {
            "kv_task.call"
        });
        let table = self.tables.get(shard as usize).ok_or_else(|| {
            PError::Task(format!(
                "shard {shard} out of range ({} shards)",
                self.tables.len()
            ))
        })?;
        if let Some(answer) = table.result(idx)? {
            return Ok(KvTaskFunction::encode_answer(answer.result));
        }
        let pid = ctx.pid as u64;
        let seq = Self::seq_of(shard, idx);
        let result = match table.op(idx)? {
            KvTaskOp::Put { key, value } => {
                let ok = if recovery {
                    self.store.recover_put(pid, seq, key, value)?
                } else {
                    self.store.put(pid, seq, key, value)?
                };
                KvTaskResult::Stored(ok)
            }
            KvTaskOp::Get { key } => KvTaskResult::Got(self.store.get(key)?),
            KvTaskOp::Delete { key } => {
                let ok = if recovery {
                    self.store.recover_delete(pid, seq, key)?
                } else {
                    self.store.delete(pid, seq, key)?
                };
                KvTaskResult::Deleted(ok)
            }
            KvTaskOp::Cas { key, expected, new } => {
                let ok = if recovery {
                    self.store.recover_cas(pid, seq, key, expected, new)?
                } else {
                    self.store.cas(pid, seq, key, expected, new)?
                };
                KvTaskResult::Swapped(ok)
            }
        };
        table.mark_done(idx, ctx.pid as u32, result)?;
        Ok(KvTaskFunction::encode_answer(result))
    }

    /// Executes a batch window (descriptors `start..start + count` of
    /// one shard, clamped to the table) as one group commit: gets
    /// resolve immediately, mutations stage into the shard's
    /// [`PKvStore::apply_batch`] (or its [`PKvStore::recover_batch`]
    /// dual when the frame is replayed after a crash), and every answer
    /// persists through one coalesced [`KvOpTable::mark_done_batch`].
    /// Completed descriptors are skipped, so replays are idempotent.
    /// Returns the number of descriptors this execution completed.
    fn run_window(
        &self,
        ctx: &mut PContext<'_>,
        shard: u32,
        start: usize,
        count: usize,
        recovery: bool,
    ) -> Result<Option<RetBytes>, PError> {
        let _label = op_label("kv_task.window");
        let table = self.tables.get(shard as usize).ok_or_else(|| {
            PError::Task(format!(
                "shard {shard} out of range ({} shards)",
                self.tables.len()
            ))
        })?;
        let pstore = self.store.shard(shard as usize);
        let pid = ctx.pid as u64;
        let end = start.saturating_add(count).min(table.len());
        let mut answers: Vec<(usize, u32, KvTaskResult)> = Vec::new();
        let mut staged: Vec<(usize, KvBatchOp)> = Vec::new();
        for idx in start..end {
            if table.result(idx)?.is_some() {
                continue; // answer already durable: never re-run
            }
            let seq = Self::seq_of(shard, idx);
            match table.op(idx)? {
                KvTaskOp::Get { key } => {
                    answers.push((idx, ctx.pid as u32, KvTaskResult::Got(pstore.get(key)?)));
                }
                KvTaskOp::Put { key, value } => staged.push((
                    idx,
                    KvBatchOp::Put {
                        pid,
                        seq,
                        key,
                        value,
                    },
                )),
                KvTaskOp::Delete { key } => staged.push((idx, KvBatchOp::Delete { pid, seq, key })),
                KvTaskOp::Cas { key, expected, new } => staged.push((
                    idx,
                    KvBatchOp::Cas {
                        pid,
                        seq,
                        key,
                        expected,
                        new,
                    },
                )),
            }
        }
        if !staged.is_empty() {
            let ops: Vec<KvBatchOp> = staged.iter().map(|&(_, op)| op).collect();
            let effects: Vec<bool> = if recovery {
                pstore
                    .recover_batch(&ops)?
                    .iter()
                    .map(|o| o.took_effect())
                    .collect()
            } else if self.mutators > 1 {
                Self::apply_concurrent(pstore, &ops, self.mutators)?
            } else {
                pstore
                    .apply_batch(&ops)?
                    .iter()
                    .map(|o| o.took_effect())
                    .collect()
            };
            for (&(idx, op), effect) in staged.iter().zip(effects) {
                let result = match op {
                    KvBatchOp::Put { .. } => KvTaskResult::Stored(effect),
                    KvBatchOp::Delete { .. } => KvTaskResult::Deleted(effect),
                    KvBatchOp::Cas { .. } => KvTaskResult::Swapped(effect),
                };
                answers.push((idx, ctx.pid as u32, result));
            }
        }
        table.mark_done_batch(&answers)?;
        let mut b = [0u8; 8];
        b[0] = 6; // window marker, distinct from single-op answers
        b[1..5].copy_from_slice(&(answers.len() as u32).to_le_bytes());
        Ok(Some(b))
    }

    /// Applies a window's mutations with `mutators` concurrent
    /// threads, each publishing its share lock-free. Outcomes come
    /// back in op order; a crash in any thread surfaces as the first
    /// error (the whole window then replays through recovery).
    fn apply_concurrent(
        store: &PKvStore,
        ops: &[KvBatchOp],
        mutators: usize,
    ) -> Result<Vec<bool>, PError> {
        let mut effects = vec![false; ops.len()];
        let mut collected: Vec<(usize, bool)> = Vec::with_capacity(ops.len());
        std::thread::scope(|sc| {
            let handles: Vec<_> = (0..mutators.min(ops.len()))
                .map(|m| {
                    let st = store.clone();
                    sc.spawn(move || -> Result<Vec<(usize, bool)>, PError> {
                        (m..ops.len())
                            .step_by(mutators)
                            .map(|i| {
                                let ok = match ops[i] {
                                    KvBatchOp::Put {
                                        pid,
                                        seq,
                                        key,
                                        value,
                                    } => st.put(pid, seq, key, value)?,
                                    KvBatchOp::Delete { pid, seq, key } => {
                                        st.delete(pid, seq, key)?
                                    }
                                    KvBatchOp::Cas {
                                        pid,
                                        seq,
                                        key,
                                        expected,
                                        new,
                                    } => st.cas(pid, seq, key, expected, new)?,
                                };
                                Ok((i, ok))
                            })
                            .collect()
                    })
                })
                .collect();
            for h in handles {
                collected.extend(h.join().expect("window mutator panicked")?);
            }
            Ok::<(), PError>(())
        })?;
        for (i, ok) in collected {
            effects[i] = ok;
        }
        Ok(effects)
    }

    fn dispatch(
        &self,
        ctx: &mut PContext<'_>,
        args: &[u8],
        recovery: bool,
    ) -> Result<Option<RetBytes>, PError> {
        let (shard, idx, count) = Self::parse_args(args)?;
        if count == 1 {
            self.run(ctx, shard, idx, recovery)
        } else {
            self.run_window(ctx, shard, idx, count, recovery)
        }
    }
}

impl RecoverableFunction for ShardedKvTaskFunction {
    fn call(&self, ctx: &mut PContext<'_>, args: &[u8]) -> Result<Option<RetBytes>, PError> {
        self.dispatch(ctx, args, false)
    }

    fn recover(&self, ctx: &mut PContext<'_>, args: &[u8]) -> Result<Option<RetBytes>, PError> {
        self.dispatch(ctx, args, true)
    }
}

/// Compaction as a **recoverable operation** on the persistent stack:
/// a registered function whose frame survives the crash and whose
/// recovery dual is an evidence scan over the shard's root cell.
///
/// Arguments name `(shard, from_gen)` — the shard to compact and the
/// generation the requester observed. `call` runs
/// [`ShardedKvStore::compact_shard`] when the shard still sits at
/// `from_gen` (and answers without effect when another compaction
/// already moved it — compaction requests are idempotent maintenance,
/// not linearizable mutations). `recover` consults the evidence: if the
/// root cell moved past `from_gen`, the interrupted compaction's swap
/// committed, so recovery only finishes the idempotent retirement mark;
/// otherwise the half-built generation block is an unreachable orphan
/// and the compaction re-executes safely. Either way a crash *anywhere*
/// inside the rewrite, at the swap, or during post-swap cleanup resumes
/// or safely abandons — never double-commits — which the crash-point
/// enumeration test below walks boundary by boundary.
///
/// The answer encodes `[9, outcome, gen as le bytes..]` where `outcome`
/// is 1 if this execution (re-)ran the rewrite and 0 if evidence
/// short-circuited it, and `gen` is the shard's generation afterwards.
#[derive(Clone)]
pub struct KvCompactFunction {
    store: ShardedKvStore,
}

impl KvCompactFunction {
    /// Wraps a sharded store (single stores ride as a 1-shard stripe).
    #[must_use]
    pub fn new(store: ShardedKvStore) -> Self {
        KvCompactFunction { store }
    }

    /// Convenience: wraps into the `Arc<dyn RecoverableFunction>` shape
    /// the registry wants.
    #[must_use]
    pub fn into_arc(self) -> Arc<dyn RecoverableFunction> {
        Arc::new(self)
    }

    /// Encodes a compaction request for shard `shard` observed at
    /// generation `from_gen` as task arguments.
    #[must_use]
    pub fn args_for(shard: u32, from_gen: u64) -> [u8; 12] {
        let mut b = [0u8; 12];
        b[..4].copy_from_slice(&shard.to_le_bytes());
        b[4..].copy_from_slice(&from_gen.to_le_bytes());
        b
    }

    fn parse_args(args: &[u8]) -> Result<(usize, u64), PError> {
        let bytes: [u8; 12] = args.try_into().map_err(|_| {
            PError::Task("compaction task arguments must hold (shard: u32, from_gen: u64)".into())
        })?;
        let shard = u32::from_le_bytes(bytes[..4].try_into().expect("slice length")) as usize;
        let from_gen = u64::from_le_bytes(bytes[4..].try_into().expect("slice length"));
        Ok((shard, from_gen))
    }

    fn answer(ran: bool, gen: u64) -> Option<RetBytes> {
        let mut b = [0u8; 8];
        b[0] = 9; // compaction marker, distinct from the op answers
        b[1] = u8::from(ran);
        b[2..8].copy_from_slice(&gen.to_le_bytes()[..6]);
        Some(b)
    }

    fn dispatch(&self, args: &[u8], recovery: bool) -> Result<Option<RetBytes>, PError> {
        let _label = op_label("kv_task.compact");
        let (shard, from_gen) = Self::parse_args(args)?;
        if shard >= self.store.nshards() {
            return Err(PError::Task(format!(
                "compaction shard {shard} out of range ({} shards)",
                self.store.nshards()
            )));
        }
        let ran = if recovery {
            // The evidence scan decides: resume (finish retirement) or
            // safely abandon-and-redo.
            !self.store.recover_compact_shard(shard, from_gen)?
        } else if self.store.shard(shard).generation()? == from_gen {
            self.store.compact_shard(shard)?;
            true
        } else {
            false // another compaction already moved the shard
        };
        Ok(Self::answer(ran, self.store.shard(shard).generation()?))
    }
}

impl RecoverableFunction for KvCompactFunction {
    fn call(&self, _ctx: &mut PContext<'_>, args: &[u8]) -> Result<Option<RetBytes>, PError> {
        self.dispatch(args, false)
    }

    fn recover(&self, _ctx: &mut PContext<'_>, args: &[u8]) -> Result<Option<RetBytes>, PError> {
        self.dispatch(args, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::KvVariant;
    use pstack_core::{FixedStack, FunctionRegistry};
    use pstack_nvram::PMemBuilder;

    fn fixture(ops: &[KvTaskOp]) -> (PMem, PHeap, PKvStore, KvOpTable) {
        let pmem = PMemBuilder::new()
            .len(1 << 18)
            .eager_flush(true)
            .build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(8192), (1 << 18) - 8192).unwrap();
        let store = PKvStore::format(pmem.clone(), &heap, 8, 64, KvVariant::Nsrl).unwrap();
        let table = KvOpTable::format(pmem.clone(), &heap, ops).unwrap();
        (pmem, heap, store, table)
    }

    #[test]
    fn table_round_trips_ops_and_answers() {
        let ops = [
            KvTaskOp::Put { key: 1, value: -5 },
            KvTaskOp::Get { key: 1 },
            KvTaskOp::Delete { key: 1 },
            KvTaskOp::Cas {
                key: 2,
                expected: i64::MIN,
                new: i64::MAX,
            },
        ];
        let (pmem, _, _, table) = fixture(&ops);
        assert_eq!(table.len(), 4);
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(table.op(i).unwrap(), *op);
        }
        assert_eq!(table.pending().unwrap(), vec![0, 1, 2, 3]);

        table.mark_done(0, 2, KvTaskResult::Stored(true)).unwrap();
        table.mark_done(1, 3, KvTaskResult::Got(Some(-5))).unwrap();
        table.mark_done(2, 1, KvTaskResult::Deleted(true)).unwrap();
        assert_eq!(table.pending().unwrap(), vec![3]);
        assert_eq!(
            table.result(1).unwrap(),
            Some(KvTaskAnswer {
                executor: 3,
                result: KvTaskResult::Got(Some(-5))
            })
        );
        // Reopen sees the same state.
        let t2 = KvOpTable::open(pmem, table.base()).unwrap();
        assert_eq!(t2.pending().unwrap(), vec![3]);
        assert_eq!(
            t2.result(2).unwrap().unwrap().result,
            KvTaskResult::Deleted(true)
        );
    }

    #[test]
    fn got_none_and_false_answers_round_trip() {
        let ops = [
            KvTaskOp::Get { key: 9 },
            KvTaskOp::Cas {
                key: 9,
                expected: 0,
                new: 1,
            },
        ];
        let (_, _, _, table) = fixture(&ops);
        table.mark_done(0, 0, KvTaskResult::Got(None)).unwrap();
        table.mark_done(1, 0, KvTaskResult::Swapped(false)).unwrap();
        assert_eq!(
            table.result(0).unwrap().unwrap().result,
            KvTaskResult::Got(None)
        );
        assert_eq!(
            table.result(1).unwrap().unwrap().result,
            KvTaskResult::Swapped(false)
        );
    }

    #[test]
    fn mark_done_batch_coalesces_and_round_trips() {
        use pstack_nvram::PMemBuilder;
        let pmem = PMemBuilder::new().len(1 << 16).build_in_memory(); // buffered
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 16).unwrap();
        let ops: Vec<KvTaskOp> = (0..8).map(|key| KvTaskOp::Get { key }).collect();
        let table = KvOpTable::format(pmem.clone(), &heap, &ops).unwrap();
        let entries: Vec<(usize, u32, KvTaskResult)> = (0..8)
            .map(|i| (i, 1u32, KvTaskResult::Got(Some(i as i64))))
            .collect();
        let before = pmem.stats().snapshot();
        table.mark_done_batch(&entries).unwrap();
        let delta = pmem.stats().snapshot() - before;
        assert_eq!(delta.persists, 2, "one payload persist + one flag persist");
        assert!(delta.coalesced_lines > 0);
        assert!(table.pending().unwrap().is_empty());
        for i in 0..8 {
            assert_eq!(
                table.result(i).unwrap().unwrap().result,
                KvTaskResult::Got(Some(i as i64))
            );
        }
        assert!(table.mark_done_batch(&[]).is_ok());
    }

    #[test]
    fn mark_done_batch_crash_points_leave_clean_mix() {
        // Crash at every flush boundary of a batched answer persist:
        // each descriptor must end up either still pending or done
        // with its full, untorn answer.
        use pstack_nvram::{FailPlan, PMemBuilder};
        let build = || {
            let pmem = PMemBuilder::new().len(1 << 16).build_in_memory();
            let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 16).unwrap();
            let ops: Vec<KvTaskOp> = (0..4).map(|key| KvTaskOp::Get { key }).collect();
            let table = KvOpTable::format(pmem.clone(), &heap, &ops).unwrap();
            (pmem, table)
        };
        let entries: Vec<(usize, u32, KvTaskResult)> = (0..4)
            .map(|i| (i, 2u32, KvTaskResult::Got(Some(-(i as i64) - 1))))
            .collect();
        let (pmem, table) = build();
        let e0 = pmem.events();
        table.mark_done_batch(&entries).unwrap();
        let total = pmem.events() - e0;
        assert!(total >= 2);

        for k in 0..total {
            let (pmem, table) = build();
            pmem.arm_failpoint(FailPlan::after_events(k));
            assert!(table.mark_done_batch(&entries).unwrap_err().is_crash());
            let pmem2 = pmem.reopen().unwrap();
            let t2 = KvOpTable::open(pmem2, table.base()).unwrap();
            for i in 0..4 {
                if let Some(ans) = t2.result(i).unwrap() {
                    assert_eq!(
                        ans.result,
                        KvTaskResult::Got(Some(-(i as i64) - 1)),
                        "crash at event {k}: descriptor {i} has a torn answer"
                    );
                }
            }
        }
    }

    #[test]
    fn table_rejects_bad_magic_and_empty_ops() {
        let (pmem, heap, _, _) = fixture(&[KvTaskOp::Get { key: 0 }]);
        let junk = heap.alloc_zeroed(64).unwrap();
        assert!(matches!(
            KvOpTable::open(pmem.clone(), junk),
            Err(PError::CorruptStack(_))
        ));
        assert!(matches!(
            KvOpTable::format(pmem, &heap, &[]),
            Err(PError::InvalidConfig(_))
        ));
    }

    #[test]
    fn out_of_range_index_is_rejected() {
        let (_, _, _, table) = fixture(&[KvTaskOp::Get { key: 0 }]);
        assert!(table.op(1).is_err());
        assert!(table.mark_done(1, 0, KvTaskResult::Got(None)).is_err());
    }

    #[test]
    fn task_function_runs_and_replays_answers() {
        let ops = [
            KvTaskOp::Put { key: 7, value: 70 },
            KvTaskOp::Cas {
                key: 7,
                expected: 70,
                new: 71,
            },
            KvTaskOp::Get { key: 7 },
            KvTaskOp::Delete { key: 7 },
        ];
        let (pmem, heap, store, table) = fixture(&ops);
        let f = KvTaskFunction::new(store.clone(), table.clone());
        let mut registry = FunctionRegistry::new();
        registry.register(KV_TASK_FUNC_ID, f.into_arc()).unwrap();
        let mut stack = FixedStack::format(pmem.clone(), POffset::new(0), 4096).unwrap();
        let mut ctx = PContext::new(
            pmem.clone(),
            heap.clone(),
            &registry,
            &mut stack,
            0,
            POffset::new(64),
        );
        for i in 0..4u64 {
            ctx.call(KV_TASK_FUNC_ID, &i.to_le_bytes()).unwrap();
        }
        assert_eq!(
            table.result(1).unwrap().unwrap().result,
            KvTaskResult::Swapped(true)
        );
        assert_eq!(
            table.result(2).unwrap().unwrap().result,
            KvTaskResult::Got(Some(71))
        );
        assert_eq!(
            table.result(3).unwrap().unwrap().result,
            KvTaskResult::Deleted(true)
        );
        // Re-running a completed descriptor replays the answer without
        // touching the store.
        let before = store.log_reserved().unwrap();
        ctx.call(KV_TASK_FUNC_ID, &0u64.to_le_bytes()).unwrap();
        assert_eq!(store.log_reserved().unwrap(), before);
    }

    fn sharded_fixture(
        ops: &[KvTaskOp],
        nshards: usize,
    ) -> (
        pstack_nvram::PMemStripe,
        PMem,
        PHeap,
        ShardedKvStore,
        Vec<KvOpTable>,
    ) {
        use pstack_nvram::PMemBuilder;
        let stripe = PMemBuilder::new()
            .len(1 << 18)
            .eager_flush(true)
            .build_striped(nshards);
        let store = ShardedKvStore::format(stripe.regions(), 8, 128, KvVariant::Nsrl).unwrap();
        let tables: Vec<KvOpTable> = ShardedKvTaskFunction::partition_ops_padded(ops, nshards)
            .iter()
            .enumerate()
            .map(|(s, shard_ops)| {
                KvOpTable::format(stripe.region(s).clone(), store.heap(s), shard_ops).unwrap()
            })
            .collect();
        let main = PMemBuilder::new()
            .len(1 << 18)
            .eager_flush(true)
            .build_in_memory();
        let heap = PHeap::format(main.clone(), POffset::new(8192), (1 << 18) - 8192).unwrap();
        (stripe, main, heap, store, tables)
    }

    #[test]
    fn sharded_task_function_runs_and_replays_per_shard() {
        let nshards = 2usize;
        let ops: Vec<KvTaskOp> = (0..12u64)
            .map(|key| KvTaskOp::Put {
                key,
                value: key as i64 * 10,
            })
            .collect();
        let (_stripe, main, heap, store, tables) = sharded_fixture(&ops, nshards);
        let partitioned = ShardedKvTaskFunction::partition_ops(&ops, nshards);
        let f = ShardedKvTaskFunction::new(store.clone(), tables.clone());
        let mut registry = FunctionRegistry::new();
        registry.register(KV_SHARDED_FUNC_ID, f.into_arc()).unwrap();
        let mut stack = FixedStack::format(main.clone(), POffset::new(0), 4096).unwrap();
        let mut ctx = PContext::new(
            main.clone(),
            heap,
            &registry,
            &mut stack,
            0,
            POffset::new(64),
        );
        for (s, shard_ops) in partitioned.iter().enumerate() {
            for idx in 0..shard_ops.len() {
                ctx.call(
                    KV_SHARDED_FUNC_ID,
                    &ShardedKvTaskFunction::args_for(s as u32, idx as u32),
                )
                .unwrap();
            }
        }
        assert_eq!(store.contents().unwrap().len(), 12);
        // Answers landed in each shard's own table, in that shard's
        // own region; records landed only in the key's home shard.
        for (s, table) in tables.iter().enumerate() {
            assert!(table.pending().unwrap().is_empty(), "shard {s} drained");
            for idx in 0..table.len() {
                assert!(matches!(
                    table.result(idx).unwrap().unwrap().result,
                    KvTaskResult::Stored(true)
                ));
            }
        }
        // Replaying a completed descriptor re-reads the answer without
        // consuming a new log slot anywhere.
        let before = store.log_reserved_per_shard().unwrap();
        ctx.call(KV_SHARDED_FUNC_ID, &ShardedKvTaskFunction::args_for(0, 0))
            .unwrap();
        assert_eq!(store.log_reserved_per_shard().unwrap(), before);
    }

    #[test]
    fn sharded_tags_are_globally_unique() {
        assert_ne!(
            ShardedKvTaskFunction::seq_of(0, 1),
            ShardedKvTaskFunction::seq_of(1, 1)
        );
        assert_ne!(
            ShardedKvTaskFunction::seq_of(0, 0),
            ShardedKvTaskFunction::seq_of(0, 1)
        );
        let args = ShardedKvTaskFunction::args_for(3, 7);
        assert_eq!(
            ShardedKvTaskFunction::parse_args(&args).unwrap(),
            (3, 7usize, 1)
        );
        let args = ShardedKvTaskFunction::batch_args_for(2, 5, 4);
        assert_eq!(
            ShardedKvTaskFunction::parse_args(&args).unwrap(),
            (2, 5usize, 4)
        );
        // A zero count degrades to a single op; odd lengths are errors.
        let args = ShardedKvTaskFunction::batch_args_for(2, 5, 0);
        assert_eq!(
            ShardedKvTaskFunction::parse_args(&args).unwrap(),
            (2, 5usize, 1)
        );
        assert!(ShardedKvTaskFunction::parse_args(&[0; 4]).is_err());
        assert!(ShardedKvTaskFunction::parse_args(&[0; 10]).is_err());
    }

    /// Buffered-stripe fixture for the batch-window paths.
    fn sharded_buffered_fixture(
        ops: &[KvTaskOp],
        nshards: usize,
    ) -> (
        pstack_nvram::PMemStripe,
        PMem,
        PHeap,
        ShardedKvStore,
        Vec<KvOpTable>,
    ) {
        use pstack_nvram::PMemBuilder;
        let stripe = PMemBuilder::new().len(1 << 18).build_striped(nshards);
        let store = ShardedKvStore::format(stripe.regions(), 8, 128, KvVariant::Nsrl).unwrap();
        let tables: Vec<KvOpTable> = ShardedKvTaskFunction::partition_ops_padded(ops, nshards)
            .iter()
            .enumerate()
            .map(|(s, shard_ops)| {
                KvOpTable::format(stripe.region(s).clone(), store.heap(s), shard_ops).unwrap()
            })
            .collect();
        let main = PMemBuilder::new()
            .len(1 << 18)
            .eager_flush(true)
            .build_in_memory();
        let heap = PHeap::format(main.clone(), POffset::new(8192), (1 << 18) - 8192).unwrap();
        (stripe, main, heap, store, tables)
    }

    #[test]
    fn batch_window_group_commits_and_answers_in_one_pass() {
        let nshards = 2usize;
        let mut ops: Vec<KvTaskOp> = (0..16u64)
            .map(|key| KvTaskOp::Put {
                key,
                value: key as i64 + 1,
            })
            .collect();
        ops.push(KvTaskOp::Get { key: 3 });
        let (_stripe, main, heap, store, tables) = sharded_buffered_fixture(&ops, nshards);
        let f = ShardedKvTaskFunction::new(store.clone(), tables.clone());
        let mut registry = FunctionRegistry::new();
        registry
            .register(KV_SHARDED_FUNC_ID, f.clone().into_arc())
            .unwrap();
        let mut stack = FixedStack::format(main.clone(), POffset::new(0), 4096).unwrap();
        let mut ctx = PContext::new(
            main.clone(),
            heap,
            &registry,
            &mut stack,
            0,
            POffset::new(64),
        );
        // One window per shard covering the whole table.
        for (s, table) in tables.iter().enumerate() {
            let ret = ctx
                .call(
                    KV_SHARDED_FUNC_ID,
                    &ShardedKvTaskFunction::batch_args_for(s as u32, 0, table.len() as u32),
                )
                .unwrap()
                .unwrap();
            assert_eq!(ret[0], 6, "window answers carry the window marker");
            assert_eq!(
                u32::from_le_bytes(ret[1..5].try_into().unwrap()) as usize,
                table.len()
            );
            assert!(table.pending().unwrap().is_empty(), "shard {s} drained");
        }
        assert_eq!(store.contents().unwrap().len(), 16);
        // Exactly one group commit per shard whose window staged
        // mutations — the batch rode the persistent-stack task.
        for (s, epoch) in store.flush_epochs().unwrap().into_iter().enumerate() {
            assert!(epoch <= 1, "shard {s} must commit its window at most once");
        }
        // A replayed window is a no-op: answers are durable.
        let before = store.log_reserved_per_shard().unwrap();
        ctx.call(
            KV_SHARDED_FUNC_ID,
            &ShardedKvTaskFunction::batch_args_for(0, 0, tables[0].len() as u32),
        )
        .unwrap();
        assert_eq!(store.log_reserved_per_shard().unwrap(), before);
    }

    #[test]
    fn multi_mutator_window_publishes_lock_free() {
        // The same window contract as the group commit — every
        // descriptor answered, every put landed exactly once — but
        // driven by four concurrent mutators per shard through the
        // lock-free publication path (no group-commit epoch at all).
        let nshards = 2usize;
        let ops: Vec<KvTaskOp> = (0..24u64)
            .map(|key| KvTaskOp::Put {
                key,
                value: key as i64 + 1,
            })
            .collect();
        let (_stripe, main, heap, store, tables) = sharded_buffered_fixture(&ops, nshards);
        let f = ShardedKvTaskFunction::new(store.clone(), tables.clone()).with_mutators(4);
        let mut registry = FunctionRegistry::new();
        registry
            .register(KV_SHARDED_FUNC_ID, f.clone().into_arc())
            .unwrap();
        let mut stack = FixedStack::format(main.clone(), POffset::new(0), 4096).unwrap();
        let mut ctx = PContext::new(
            main.clone(),
            heap,
            &registry,
            &mut stack,
            0,
            POffset::new(64),
        );
        for (s, table) in tables.iter().enumerate() {
            let ret = ctx
                .call(
                    KV_SHARDED_FUNC_ID,
                    &ShardedKvTaskFunction::batch_args_for(s as u32, 0, table.len() as u32),
                )
                .unwrap()
                .unwrap();
            assert_eq!(ret[0], 6);
            assert!(table.pending().unwrap().is_empty(), "shard {s} drained");
        }
        assert_eq!(store.contents().unwrap().len(), 24);
        for (s, epoch) in store.flush_epochs().unwrap().into_iter().enumerate() {
            assert_eq!(epoch, 0, "shard {s} published per-op, not by group commit");
        }
        // Replays stay idempotent: answers are durable.
        let before = store.log_reserved_per_shard().unwrap();
        ctx.call(
            KV_SHARDED_FUNC_ID,
            &ShardedKvTaskFunction::batch_args_for(0, 0, tables[0].len() as u32),
        )
        .unwrap();
        assert_eq!(store.log_reserved_per_shard().unwrap(), before);
    }

    #[test]
    fn batch_window_crash_points_recover_exactly_once() {
        // Enumerate every shard-region crash point inside one batch
        // window; the recover dual (evidence scan + recover_batch) must
        // complete each op exactly once from every intermediate state.
        use pstack_nvram::FailPlan;
        let nshards = 2usize;
        let shard = 0u32;
        let ops: Vec<KvTaskOp> = (0..12u64)
            .map(|key| KvTaskOp::Put {
                key,
                value: key as i64 + 50,
            })
            .collect();

        // Clean run: count the shard region's events for one window.
        let (stripe, main, heap, store, tables) = sharded_buffered_fixture(&ops, nshards);
        let window = tables[shard as usize].len() as u32;
        let f = ShardedKvTaskFunction::new(store.clone(), tables.clone());
        let mut registry = FunctionRegistry::new();
        registry.register(KV_SHARDED_FUNC_ID, f.into_arc()).unwrap();
        let mut stack = FixedStack::format(main.clone(), POffset::new(0), 4096).unwrap();
        let e0 = stripe.region(shard as usize).events();
        {
            let mut ctx = PContext::new(main, heap, &registry, &mut stack, 0, POffset::new(64));
            ctx.call(
                KV_SHARDED_FUNC_ID,
                &ShardedKvTaskFunction::batch_args_for(shard, 0, window),
            )
            .unwrap();
        }
        let total = stripe.region(shard as usize).events() - e0;
        assert!(total >= 3, "stage + publish + answers in the shard region");

        for k in 0..total {
            let (stripe, main, heap, store, tables) = sharded_buffered_fixture(&ops, nshards);
            let f = ShardedKvTaskFunction::new(store.clone(), tables.clone());
            let mut registry = FunctionRegistry::new();
            registry
                .register(KV_SHARDED_FUNC_ID, f.clone().into_arc())
                .unwrap();
            let mut stack = FixedStack::format(main.clone(), POffset::new(0), 4096).unwrap();
            stripe
                .region(shard as usize)
                .arm_failpoint(FailPlan::after_events(k));
            {
                let mut ctx = PContext::new(
                    main.clone(),
                    heap,
                    &registry,
                    &mut stack,
                    0,
                    POffset::new(64),
                );
                let err = ctx
                    .call(
                        KV_SHARDED_FUNC_ID,
                        &ShardedKvTaskFunction::batch_args_for(shard, 0, window),
                    )
                    .unwrap_err();
                assert!(err.is_crash(), "crash at shard event {k}");
            }
            // Whole-system failure, then the recovery boot.
            stripe.crash_all(7, 0.0);
            main.crash_now(7, 0.0);
            let stripe2 = stripe.reopen_all().unwrap();
            let main2 = main.reopen().unwrap();
            let store2 = ShardedKvStore::open(stripe2.regions(), KvVariant::Nsrl).unwrap();
            let tables2: Vec<KvOpTable> = tables
                .iter()
                .enumerate()
                .map(|(s, t)| KvOpTable::open(stripe2.region(s).clone(), t.base()).unwrap())
                .collect();
            let f2 = ShardedKvTaskFunction::new(store2.clone(), tables2.clone());
            let heap2 = PHeap::open(main2.clone(), POffset::new(8192)).unwrap();
            let registry2 = FunctionRegistry::new();
            let mut stack2 = FixedStack::open(main2.clone(), POffset::new(0), 4096).unwrap();
            let mut ctx2 =
                PContext::new(main2, heap2, &registry2, &mut stack2, 0, POffset::new(64));
            f2.recover(
                &mut ctx2,
                &ShardedKvTaskFunction::batch_args_for(shard, 0, window),
            )
            .unwrap();
            // Every op of the window applied exactly once.
            let table = &tables2[shard as usize];
            assert!(table.pending().unwrap().is_empty(), "crash at {k}");
            let published: usize = store2.snapshot_sharded().unwrap()[shard as usize]
                .iter()
                .map(Vec::len)
                .sum();
            assert_eq!(
                published,
                table.len(),
                "crash at {k}: exactly one record per put"
            );
        }
    }

    #[test]
    fn compaction_task_runs_and_is_idempotent() {
        // Compaction as a persistent-stack task: the call path swaps the
        // generation; a stale request (from_gen already superseded) is a
        // no-op answer, not a second swap.
        let ops: Vec<KvTaskOp> = (0..8u64)
            .map(|key| KvTaskOp::Put { key, value: 1 })
            .collect();
        let (_stripe, main, heap, store, _tables) = sharded_buffered_fixture(&ops, 2);
        for (i, key) in (0..8u64).filter(|&k| shard_of(k, 2) == 0).enumerate() {
            store.put(0, i as u64 + 1, key, key as i64).unwrap();
        }
        let f = KvCompactFunction::new(store.clone());
        let mut registry = FunctionRegistry::new();
        registry
            .register(KV_COMPACT_FUNC_ID, f.clone().into_arc())
            .unwrap();
        let mut stack = FixedStack::format(main.clone(), POffset::new(0), 4096).unwrap();
        let mut ctx = PContext::new(
            main.clone(),
            heap,
            &registry,
            &mut stack,
            0,
            POffset::new(64),
        );
        let want = store.contents().unwrap();
        let ret = ctx
            .call(KV_COMPACT_FUNC_ID, &KvCompactFunction::args_for(0, 0))
            .unwrap()
            .unwrap();
        assert_eq!(ret[0], 9, "compaction answers carry the marker");
        assert_eq!(ret[1], 1, "this execution ran the rewrite");
        assert_eq!(store.generations().unwrap(), vec![1, 0]);
        assert_eq!(store.contents().unwrap(), want);
        // Stale request: evidence short-circuits, no second swap.
        let ret = ctx
            .call(KV_COMPACT_FUNC_ID, &KvCompactFunction::args_for(0, 0))
            .unwrap()
            .unwrap();
        assert_eq!(ret[1], 0, "stale compaction request must not re-run");
        assert_eq!(store.generations().unwrap(), vec![1, 0]);
        // Out-of-range shard is a task error, not a panic.
        assert!(ctx
            .call(KV_COMPACT_FUNC_ID, &KvCompactFunction::args_for(9, 0))
            .is_err());
    }

    #[test]
    fn compaction_task_crash_points_resume_or_safely_abandon() {
        // Crash the compaction task at every persistence event of the
        // shard's region (inside the rewrite, at the root swap, during
        // retirement); the frame's recovery dual must leave the shard at
        // exactly generation 1 — resumed or redone, never double-swapped
        // — with contents intact.
        use pstack_nvram::FailPlan;
        let shard = 0u32;
        let ops: Vec<KvTaskOp> = (0..8u64)
            .map(|key| KvTaskOp::Put { key, value: 1 })
            .collect();
        let fill = |store: &ShardedKvStore| {
            for (i, key) in (0..16u64).filter(|&k| shard_of(k, 2) == 0).enumerate() {
                store.put(0, i as u64 + 1, key, key as i64 + 5).unwrap();
            }
        };

        // Clean run: the shard region's event footprint of one task.
        let (stripe, main, heap, store, _tables) = sharded_buffered_fixture(&ops, 2);
        fill(&store);
        let want = store.contents().unwrap();
        let f = KvCompactFunction::new(store.clone());
        let mut registry = FunctionRegistry::new();
        registry.register(KV_COMPACT_FUNC_ID, f.into_arc()).unwrap();
        let mut stack = FixedStack::format(main.clone(), POffset::new(0), 4096).unwrap();
        let e0 = stripe.region(shard as usize).events();
        {
            let mut ctx = PContext::new(main, heap, &registry, &mut stack, 0, POffset::new(64));
            ctx.call(KV_COMPACT_FUNC_ID, &KvCompactFunction::args_for(shard, 0))
                .unwrap();
        }
        let total = stripe.region(shard as usize).events() - e0;
        assert!(total >= 3, "rewrite + swap + retirement in the region");

        for k in 0..total {
            let (stripe, main, heap, store, _tables) = sharded_buffered_fixture(&ops, 2);
            fill(&store);
            let f = KvCompactFunction::new(store.clone());
            let mut registry = FunctionRegistry::new();
            registry
                .register(KV_COMPACT_FUNC_ID, f.clone().into_arc())
                .unwrap();
            let mut stack = FixedStack::format(main.clone(), POffset::new(0), 4096).unwrap();
            stripe
                .region(shard as usize)
                .arm_failpoint(FailPlan::after_events(k));
            {
                let mut ctx = PContext::new(
                    main.clone(),
                    heap,
                    &registry,
                    &mut stack,
                    0,
                    POffset::new(64),
                );
                let err = ctx
                    .call(KV_COMPACT_FUNC_ID, &KvCompactFunction::args_for(shard, 0))
                    .unwrap_err();
                assert!(err.is_crash(), "crash at shard event {k}");
            }
            // Whole-system failure, then the recovery dual.
            stripe.crash_all(3, 0.0);
            main.crash_now(3, 0.0);
            let stripe2 = stripe.reopen_all().unwrap();
            let main2 = main.reopen().unwrap();
            let store2 = ShardedKvStore::open(stripe2.regions(), KvVariant::Nsrl).unwrap();
            let f2 = KvCompactFunction::new(store2.clone());
            let heap2 = PHeap::open(main2.clone(), POffset::new(8192)).unwrap();
            let registry2 = FunctionRegistry::new();
            let mut stack2 = FixedStack::open(main2.clone(), POffset::new(0), 4096).unwrap();
            let mut ctx2 =
                PContext::new(main2, heap2, &registry2, &mut stack2, 0, POffset::new(64));
            let ret = f2
                .recover(&mut ctx2, &KvCompactFunction::args_for(shard, 0))
                .unwrap()
                .unwrap();
            assert_eq!(ret[0], 9);
            assert_eq!(
                store2.shard(shard as usize).generation().unwrap(),
                1,
                "crash at {k}: resumed or redone, never double-swapped"
            );
            assert_eq!(store2.contents().unwrap(), want, "crash at {k}");
            let gens = store2.shard(shard as usize).generations().unwrap();
            assert!(gens[0].retired, "crash at {k}: retirement finished");
            // A second recovery pass is a no-op.
            let ret = f2
                .recover(&mut ctx2, &KvCompactFunction::args_for(shard, 0))
                .unwrap()
                .unwrap();
            assert_eq!(ret[1], 0, "crash at {k}: recovery is idempotent");
        }
    }

    #[test]
    fn pending_tasks_cover_exactly_the_pending_descriptors() {
        let nshards = 2usize;
        let ops: Vec<KvTaskOp> = (0..10u64)
            .map(|key| KvTaskOp::Put { key, value: 1 })
            .collect();
        let (_stripe, _main, _heap, store, tables) = sharded_buffered_fixture(&ops, nshards);
        // Complete a couple of descriptors by hand to make the pending
        // sets sparse.
        tables[0]
            .mark_done(0, 0, KvTaskResult::Stored(true))
            .unwrap();
        let f = ShardedKvTaskFunction::new(store, tables.clone());

        // batch <= 1: one single-op task per pending descriptor.
        let singles = f.pending_tasks(KV_SHARDED_FUNC_ID, 1).unwrap();
        let expected: usize = tables.iter().map(|t| t.pending().unwrap().len()).sum();
        assert_eq!(singles.len(), expected);
        assert!(singles.iter().all(|t| t.args.len() == 8));

        // Windows: chunks of ≤ 3 pending descriptors, each window's
        // range covering exactly its chunk.
        let windows = f.pending_tasks(KV_SHARDED_FUNC_ID, 3).unwrap();
        assert!(windows.iter().all(|t| t.args.len() == 12));
        for (s, table) in tables.iter().enumerate() {
            let pending = table.pending().unwrap();
            let shard_windows: Vec<_> = windows
                .iter()
                .filter(|t| u32::from_le_bytes(t.args[..4].try_into().unwrap()) as usize == s)
                .collect();
            assert_eq!(shard_windows.len(), pending.len().div_ceil(3));
        }
        // A drained table contributes nothing.
        for table in &tables {
            for idx in table.pending().unwrap() {
                table.mark_done(idx, 0, KvTaskResult::Stored(true)).unwrap();
            }
        }
        assert!(f.pending_tasks(KV_SHARDED_FUNC_ID, 3).unwrap().is_empty());
    }

    #[test]
    fn sharded_crash_between_store_op_and_mark_done_recovers_once() {
        // The §5.2 window, per shard: the shard's head CAS landed but
        // the answer in the shard's table never persisted. Recovery
        // must find the chain evidence inside that shard alone.
        use pstack_nvram::FailPlan;
        let ops = [KvTaskOp::Put { key: 3, value: 33 }];
        let shard = shard_of(3, 2) as u32;

        // Clean run: count the shard region's events for one call.
        let (stripe, main, heap, store, tables) = sharded_fixture(&ops, 2);
        let f = ShardedKvTaskFunction::new(store.clone(), tables.clone());
        let mut registry = FunctionRegistry::new();
        registry
            .register(KV_SHARDED_FUNC_ID, f.clone().into_arc())
            .unwrap();
        let mut stack = FixedStack::format(main.clone(), POffset::new(0), 4096).unwrap();
        let e0 = stripe.region(shard as usize).events();
        {
            let mut ctx = PContext::new(
                main.clone(),
                heap.clone(),
                &registry,
                &mut stack,
                0,
                POffset::new(64),
            );
            ctx.call(
                KV_SHARDED_FUNC_ID,
                &ShardedKvTaskFunction::args_for(shard, 0),
            )
            .unwrap();
        }
        let total = stripe.region(shard as usize).events() - e0;
        assert!(total >= 2, "store op + answer persist in the shard region");

        for k in 0..total {
            let (stripe, main, heap, store, tables) = sharded_fixture(&ops, 2);
            let f = ShardedKvTaskFunction::new(store.clone(), tables.clone());
            let mut registry = FunctionRegistry::new();
            registry
                .register(KV_SHARDED_FUNC_ID, f.clone().into_arc())
                .unwrap();
            let mut stack = FixedStack::format(main.clone(), POffset::new(0), 4096).unwrap();
            stripe
                .region(shard as usize)
                .arm_failpoint(FailPlan::after_events(k));
            {
                let mut ctx = PContext::new(
                    main.clone(),
                    heap,
                    &registry,
                    &mut stack,
                    0,
                    POffset::new(64),
                );
                let err = ctx
                    .call(
                        KV_SHARDED_FUNC_ID,
                        &ShardedKvTaskFunction::args_for(shard, 0),
                    )
                    .unwrap_err();
                assert!(err.is_crash(), "crash at shard event {k}");
            }
            // System failure: the other regions die with the shard.
            stripe.crash_all(5, 0.0);
            main.crash_now(5, 0.0);
            let stripe2 = stripe.reopen_all().unwrap();
            let main2 = main.reopen().unwrap();
            let store2 = ShardedKvStore::open(stripe2.regions(), KvVariant::Nsrl).unwrap();
            let tables2: Vec<KvOpTable> = tables
                .iter()
                .enumerate()
                .map(|(s, t)| KvOpTable::open(stripe2.region(s).clone(), t.base()).unwrap())
                .collect();
            let f2 = ShardedKvTaskFunction::new(store2.clone(), tables2.clone());
            let heap2 = PHeap::open(main2.clone(), POffset::new(8192)).unwrap();
            let registry2 = FunctionRegistry::new();
            let mut stack2 = FixedStack::open(main2.clone(), POffset::new(0), 4096).unwrap();
            let mut ctx2 =
                PContext::new(main2, heap2, &registry2, &mut stack2, 0, POffset::new(64));
            f2.recover(&mut ctx2, &ShardedKvTaskFunction::args_for(shard, 0))
                .unwrap();
            assert_eq!(store2.get(3).unwrap(), Some(33), "crash at {k}");
            let published: usize = store2
                .snapshot_sharded()
                .unwrap()
                .iter()
                .flatten()
                .map(Vec::len)
                .sum();
            assert_eq!(published, 1, "crash at {k}: exactly one record");
            assert!(matches!(
                tables2[shard as usize].result(0).unwrap().unwrap().result,
                KvTaskResult::Stored(true)
            ));
        }
    }

    #[test]
    fn crash_between_store_op_and_mark_done_recovers_exactly_once() {
        // The critical §5.2-style window: the head CAS landed but the
        // answer never persisted. Recovery must find the chain evidence
        // and not double-apply.
        use pstack_nvram::FailPlan;
        let build = || fixture(&[KvTaskOp::Put { key: 3, value: 33 }]);

        // Count events for a clean run to know the crash range.
        let (pmem, heap, store, table) = build();
        let f = KvTaskFunction::new(store.clone(), table.clone());
        let mut registry = FunctionRegistry::new();
        registry.register(KV_TASK_FUNC_ID, f.into_arc()).unwrap();
        let mut stack = FixedStack::format(pmem.clone(), POffset::new(0), 4096).unwrap();
        let e0 = pmem.events();
        {
            let mut ctx = PContext::new(
                pmem.clone(),
                heap.clone(),
                &registry,
                &mut stack,
                0,
                POffset::new(64),
            );
            ctx.call(KV_TASK_FUNC_ID, &0u64.to_le_bytes()).unwrap();
        }
        let total = pmem.events() - e0;

        for k in 0..total {
            let (pmem, heap, store, table) = build();
            let mut registry = FunctionRegistry::new();
            registry
                .register(
                    KV_TASK_FUNC_ID,
                    KvTaskFunction::new(store.clone(), table.clone()).into_arc(),
                )
                .unwrap();
            let mut stack = FixedStack::format(pmem.clone(), POffset::new(0), 4096).unwrap();
            pmem.arm_failpoint(FailPlan::after_events(k));
            {
                let mut ctx = PContext::new(
                    pmem.clone(),
                    heap,
                    &registry,
                    &mut stack,
                    0,
                    POffset::new(64),
                );
                let err = ctx.call(KV_TASK_FUNC_ID, &0u64.to_le_bytes()).unwrap_err();
                assert!(err.is_crash(), "crash at event {k}");
            }
            let pmem2 = pmem.reopen().unwrap();
            let heap2 = PHeap::open(pmem2.clone(), POffset::new(8192)).unwrap();
            let store2 = PKvStore::open(pmem2.clone(), store.base(), KvVariant::Nsrl).unwrap();
            let t2 = KvOpTable::open(pmem2.clone(), table.base()).unwrap();
            let mut registry2 = FunctionRegistry::new();
            registry2
                .register(
                    KV_TASK_FUNC_ID,
                    KvTaskFunction::new(store2.clone(), t2.clone()).into_arc(),
                )
                .unwrap();
            let mut stack2 = FixedStack::open(pmem2.clone(), POffset::new(0), 4096).unwrap();
            let mut ctx2 =
                PContext::new(pmem2, heap2, &registry2, &mut stack2, 0, POffset::new(64));
            pstack_core::recover_stack(&mut ctx2).unwrap();
            // Whether or not the operation linearized before the crash,
            // the key holds the value at most once in the published log;
            // if the descriptor is marked done, exactly once.
            let published: usize = store2.snapshot().unwrap().iter().map(Vec::len).sum();
            assert!(published <= 1, "crash at event {k}: duplicate record");
            if let Some(ans) = t2.result(0).unwrap() {
                assert_eq!(ans.result, KvTaskResult::Stored(true));
                assert_eq!(published, 1, "crash at event {k}: answer without record");
                assert_eq!(store2.get(3).unwrap(), Some(33));
            }
        }
    }
}
