//! `pstack-kv` — a recoverable key-value store on the persistent-stack
//! runtime.
//!
//! The ROADMAP's north star asks for a real workload on top of the
//! micro-primitives (CAS, counter, queue); a durable KV store is the
//! canonical end-to-end application of this literature (it is the
//! evaluation vehicle of both FliT and NVTraverse). This crate provides
//! one in the NSRL style of `pstack-recoverable`:
//!
//! * [`PKvStore`] — a persistent hash-indexed map from `u64` keys to
//!   `i64` values, laid out in the `PMem` region via `PHeap`, with
//!   `put`/`get`/`delete`/`cas` operations and their recovery duals;
//! * [`KvOpTable`] — the persistent table of operation descriptors and
//!   answers that lets a §5.2-style experiment re-enqueue unfinished
//!   operations after every restart;
//! * [`KvTaskFunction`] — glue registering KV operations as recoverable
//!   functions, so KV traffic runs through `Runtime::run_tasks` and
//!   survives crashes via the persistent stack;
//! * [`ShardedKvStore`] — the scaling layer: the key space striped
//!   across `N` complete stores, one independent region (one lock, one
//!   version log, one recovery scan) per shard behind the [`shard_of`]
//!   router, with [`KvBatch`] group commits and
//!   [`ShardedKvTaskFunction`] + per-shard [`KvOpTable`]s as the
//!   runtime glue.
//!
//! # Scaling: sharding and group commit
//!
//! Two §5-adjacent results justify the scaling layer. FliT shows that
//! most persistence overhead is redundant flushes on the hot path;
//! NVTraverse shows only the *destination* stores (here: records a
//! published head can reach, the head itself, and the log tail) need
//! eager persistence. Accordingly, a store on a **buffered** region
//! batches mutations ([`PKvStore::apply_batch`]): all records and the
//! log tail become durable in one coalesced persist, the touched
//! bucket heads are published once each and persisted together, and a
//! persistent flush epoch closes the batch. A crash at any flush
//! boundary leaves each bucket entirely pre- or post-batch — never a
//! torn head — so the evidence-scan recovery argument is unchanged,
//! and the per-mutation persist count drops by the batch factor.
//! Sharding multiplies this by core count: different shards are
//! different regions, so their critical sections never serialize.
//!
//! # Design: a hash index over an append-only version log
//!
//! Updating a value *in place* destroys the evidence recovery needs —
//! exactly the problem §5's recoverable CAS solves with its helping
//! matrix `R`. The store sidesteps it the same way the recoverable
//! queue does: **effects are never overwritten**. The store is a bucket
//! array of chain heads plus a bounded log of immutable version
//! records:
//!
//! ```text
//! bucket[h(k)] ──▶ record ──next──▶ record ──next──▶ … ──▶ ∅
//!                  (newest)                (oldest)
//! ```
//!
//! A mutation reserves a log slot (CAS on the persistent tail counter),
//! writes the full record — `(kind, key, value, pid, seq, next)` fits
//! in 48 bytes of a 64-byte-aligned slot, so it persists atomically —
//! and then *publishes* it with a single 8-byte CAS on the bucket head.
//! The record is unreachable until that CAS, so a crash can only leave
//! an invisible orphan, never a torn or half-visible update. The bucket
//! chain order **is** the linearization order of the key's mutations,
//! which is what makes the execution verifiable (`pstack-verify`'s
//! `check_kv`) and recovery a scan: an interrupted operation linearized
//! iff some published record carries its `(pid, seq)` tag.
//! [`KvVariant::NoScan`] removes that scan — the analogue of the paper
//! removing the matrix `R` — and the verifier catches the resulting
//! double applications.
//!
//! Like every §5 object, the store requires an `eager_flush` region:
//! the algorithm is specified for cache-less NVRAM, where every write
//! is durable the moment it completes.

mod funcs;
mod reqtable;
mod shard;
mod store;

pub use funcs::{
    KvCompactFunction, KvOpTable, KvTaskAnswer, KvTaskFunction, KvTaskOp, KvTaskResult,
    ShardedKvTaskFunction, KV_COMPACT_FUNC_ID, KV_SHARDED_FUNC_ID, KV_TASK_FUNC_ID,
};
pub use reqtable::{KvRequestTable, ReqSubmit};
pub use shard::{shard_of, KvBatch, ShardedKvStore};
pub use store::{
    CompactionStats, GenerationInfo, KvApplied, KvBatchOp, KvPendingBatch, KvVariant, PKvStore,
    VersionRecord,
};
