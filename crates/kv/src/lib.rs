//! `pstack-kv` — a recoverable key-value store on the persistent-stack
//! runtime.
//!
//! The ROADMAP's north star asks for a real workload on top of the
//! micro-primitives (CAS, counter, queue); a durable KV store is the
//! canonical end-to-end application of this literature (it is the
//! evaluation vehicle of both FliT and NVTraverse). This crate provides
//! one in the NSRL style of `pstack-recoverable`:
//!
//! * [`PKvStore`] — a persistent hash-indexed map from `u64` keys to
//!   `i64` values, laid out in the `PMem` region via `PHeap`, with
//!   `put`/`get`/`delete`/`cas` operations and their recovery duals;
//! * [`KvOpTable`] — the persistent table of operation descriptors and
//!   answers that lets a §5.2-style experiment re-enqueue unfinished
//!   operations after every restart;
//! * [`KvTaskFunction`] — glue registering KV operations as recoverable
//!   functions, so KV traffic runs through `Runtime::run_tasks` and
//!   survives crashes via the persistent stack.
//!
//! # Design: a hash index over an append-only version log
//!
//! Updating a value *in place* destroys the evidence recovery needs —
//! exactly the problem §5's recoverable CAS solves with its helping
//! matrix `R`. The store sidesteps it the same way the recoverable
//! queue does: **effects are never overwritten**. The store is a bucket
//! array of chain heads plus a bounded log of immutable version
//! records:
//!
//! ```text
//! bucket[h(k)] ──▶ record ──next──▶ record ──next──▶ … ──▶ ∅
//!                  (newest)                (oldest)
//! ```
//!
//! A mutation reserves a log slot (CAS on the persistent tail counter),
//! writes the full record — `(kind, key, value, pid, seq, next)` fits
//! in 48 bytes of a 64-byte-aligned slot, so it persists atomically —
//! and then *publishes* it with a single 8-byte CAS on the bucket head.
//! The record is unreachable until that CAS, so a crash can only leave
//! an invisible orphan, never a torn or half-visible update. The bucket
//! chain order **is** the linearization order of the key's mutations,
//! which is what makes the execution verifiable (`pstack-verify`'s
//! `check_kv`) and recovery a scan: an interrupted operation linearized
//! iff some published record carries its `(pid, seq)` tag.
//! [`KvVariant::NoScan`] removes that scan — the analogue of the paper
//! removing the matrix `R` — and the verifier catches the resulting
//! double applications.
//!
//! Like every §5 object, the store requires an `eager_flush` region:
//! the algorithm is specified for cache-less NVRAM, where every write
//! is durable the moment it completes.

mod funcs;
mod store;

pub use funcs::{KvOpTable, KvTaskAnswer, KvTaskFunction, KvTaskOp, KvTaskResult, KV_TASK_FUNC_ID};
pub use store::{KvVariant, PKvStore, VersionRecord};
