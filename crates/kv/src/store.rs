//! The persistent hash-indexed key-value store.
//!
//! See the crate-level documentation for the design rationale. The
//! persistent layout, starting at the heap allocation's base:
//!
//! ```text
//! header (64 B): magic, bucket count, log capacity, log tail
//! buckets:       nbuckets × 8 B   — absolute offset of the newest
//!                                   record of each chain (0 = empty)
//! version log:   log_cap × 64 B   — immutable records, 64-aligned
//! ```
//!
//! A record occupies the first 48 bytes of its 64-byte slot:
//!
//! ```text
//! 0      kind   (0 = unpublished, 1 = PUT, 2 = DELETE)
//! 8..16  key
//! 16..24 value  (the stored value; for DELETE, the value removed)
//! 24..32 pid    (writer's process id)
//! 32..40 seq    (writer's operation tag)
//! 40..48 next   (offset of the chain's previous record, 0 = end)
//! ```
//!
//! Records become visible only through the bucket-head CAS, after every
//! field is durable (the region is eager-flush), so no crash moment can
//! expose a torn record. Reserved-but-unpublished slots are orphans:
//! invisible to lookups, scans and the verifier alike.

use std::collections::BTreeMap;

use pstack_core::PError;
use pstack_heap::PHeap;
use pstack_nvram::{PMem, POffset};

const KV_MAGIC: u64 = 0x5053_4B56_5354_4F31; // "PSKVSTO1"
const HEADER_LEN: u64 = 64;
const RECORD_STRIDE: u64 = 64;
const RECORD_LEN: usize = 48;

const OFF_MAGIC: u64 = 0;
const OFF_NBUCKETS: u64 = 8;
const OFF_LOG_CAP: u64 = 16;
const OFF_LOG_TAIL: u64 = 24;

const KIND_PUT: u8 = 1;
const KIND_DEL: u8 = 2;

/// Which recovery procedure the store runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KvVariant {
    /// Correct NSRL recovery: scan the key's published chain for the
    /// interrupted operation's tag before re-executing.
    #[default]
    Nsrl,
    /// Injected bug mirroring §5.2's matrix removal: recovery skips the
    /// evidence scan and always re-executes — operations that already
    /// linearized are applied twice, which the KV verifier flags.
    NoScan,
}

impl KvVariant {
    /// One-byte encoding for persistent configuration records.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        match self {
            KvVariant::Nsrl => 0,
            KvVariant::NoScan => 1,
        }
    }

    /// Decodes [`KvVariant::as_u8`].
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] for unknown encodings.
    pub fn from_u8(v: u8) -> Result<Self, PError> {
        match v {
            0 => Ok(KvVariant::Nsrl),
            1 => Ok(KvVariant::NoScan),
            other => Err(PError::InvalidConfig(format!(
                "unknown KV variant encoding {other}"
            ))),
        }
    }
}

/// One published version record, decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionRecord {
    /// The key this record belongs to.
    pub key: u64,
    /// The value stored (for a delete: the value that was removed).
    pub value: i64,
    /// Writer's process id.
    pub pid: u64,
    /// Writer's operation tag.
    pub seq: u64,
    /// `true` for a DELETE record, `false` for a PUT record.
    pub is_delete: bool,
}

/// Outcome of the internal append loop.
enum Append {
    /// The record was published.
    Applied,
    /// The precondition failed against the current chain state.
    PrecondFailed,
    /// The version log's lifetime capacity is exhausted.
    LogFull,
}

/// Precondition checked atomically with the publish CAS (the head CAS
/// fails if any other mutation intervened, so a passed check still
/// holds at the linearization point).
enum Precond {
    /// No precondition (plain put).
    None,
    /// The key must currently be present (delete).
    Exists,
    /// The key must currently hold exactly this value (cas).
    ValueIs(i64),
}

/// A crash-recoverable hash-indexed map from `u64` keys to `i64`
/// values. Cheap to clone; all clones share the same store. See the
/// [module docs](self) for the persistent layout and the crate docs
/// for the recovery argument.
///
/// # Example
///
/// ```
/// use pstack_nvram::PMemBuilder;
/// use pstack_heap::PHeap;
/// use pstack_kv::{KvVariant, PKvStore};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pmem = PMemBuilder::new().len(1 << 18).eager_flush(true).build_in_memory();
/// let heap = PHeap::format(pmem.clone(), 0u64.into(), 1 << 18)?;
/// let kv = PKvStore::format(pmem, &heap, 16, 64, KvVariant::Nsrl)?;
/// assert!(kv.put(0, 1, 7, 700)?);
/// assert_eq!(kv.get(7)?, Some(700));
/// assert!(kv.cas(0, 2, 7, 700, 701)?);
/// assert!(kv.delete(0, 3, 7)?);
/// assert_eq!(kv.get(7)?, None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PKvStore {
    pmem: PMem,
    base: POffset,
    nbuckets: u64,
    log_cap: u64,
    variant: KvVariant,
}

fn round64(v: u64) -> u64 {
    (v + 63) & !63
}

/// SplitMix64 finalizer: a full-avalanche mix so sequential keys spread
/// across buckets.
fn mix(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl PKvStore {
    /// Bytes of NVRAM the store needs for `nbuckets` buckets and a
    /// `log_cap`-record version log.
    #[must_use]
    pub fn required_len(nbuckets: u64, log_cap: u64) -> usize {
        (round64(HEADER_LEN + nbuckets * 8) + log_cap * RECORD_STRIDE) as usize
    }

    /// Allocates and persists an empty store. `log_cap` bounds the
    /// store's *lifetime* mutation count (records are never recycled —
    /// the same trade the recoverable queue makes to keep recovery a
    /// scan; compaction is future work).
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] for a zero bucket count or log
    /// capacity, or a region without `eager_flush`; heap/NVRAM errors
    /// otherwise.
    pub fn format(
        pmem: PMem,
        heap: &PHeap,
        nbuckets: u64,
        log_cap: u64,
        variant: KvVariant,
    ) -> Result<Self, PError> {
        if nbuckets == 0 || log_cap == 0 {
            return Err(PError::InvalidConfig(
                "KV store needs at least one bucket and one log slot".into(),
            ));
        }
        if !pmem.is_eager_flush() {
            return Err(PError::InvalidConfig(
                "KV store requires an eager-flush region (the algorithm assumes cache-less \
                 NVRAM, like §5's CAS)"
                    .into(),
            ));
        }
        let len = Self::required_len(nbuckets, log_cap);
        let base = heap.alloc_aligned(len, 64)?;
        pmem.fill(base, 0, len)?;
        pmem.write_u64(base + OFF_NBUCKETS, nbuckets)?;
        pmem.write_u64(base + OFF_LOG_CAP, log_cap)?;
        pmem.write_u64(base + OFF_MAGIC, KV_MAGIC)?;
        Ok(PKvStore {
            pmem,
            base,
            nbuckets,
            log_cap,
            variant,
        })
    }

    /// Re-attaches to a store previously created at `base` (recovery
    /// boot).
    ///
    /// # Errors
    ///
    /// [`PError::CorruptStack`] on a bad magic word,
    /// [`PError::InvalidConfig`] without `eager_flush`.
    pub fn open(pmem: PMem, base: POffset, variant: KvVariant) -> Result<Self, PError> {
        if !pmem.is_eager_flush() {
            return Err(PError::InvalidConfig(
                "KV store requires an eager-flush region".into(),
            ));
        }
        let magic = pmem.read_u64(base + OFF_MAGIC)?;
        if magic != KV_MAGIC {
            return Err(PError::CorruptStack(format!(
                "bad KV store magic {magic:#x} at {base}"
            )));
        }
        let nbuckets = pmem.read_u64(base + OFF_NBUCKETS)?;
        let log_cap = pmem.read_u64(base + OFF_LOG_CAP)?;
        Ok(PKvStore {
            pmem,
            base,
            nbuckets,
            log_cap,
            variant,
        })
    }

    /// The store's base offset (persist it to find the store again).
    #[must_use]
    pub fn base(&self) -> POffset {
        self.base
    }

    /// Number of hash buckets.
    #[must_use]
    pub fn nbuckets(&self) -> u64 {
        self.nbuckets
    }

    /// Lifetime version-log capacity in records.
    #[must_use]
    pub fn log_capacity(&self) -> u64 {
        self.log_cap
    }

    /// The recovery variant this handle runs.
    #[must_use]
    pub fn variant(&self) -> KvVariant {
        self.variant
    }

    /// Log slots reserved so far (published plus crash orphans).
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn log_reserved(&self) -> Result<u64, PError> {
        Ok(self.pmem.read_u64(self.base + OFF_LOG_TAIL)?)
    }

    fn bucket_off(&self, key: u64) -> POffset {
        let b = mix(key) % self.nbuckets;
        self.base + (HEADER_LEN + b * 8)
    }

    fn record_off(&self, idx: u64) -> u64 {
        self.base.get() + round64(HEADER_LEN + self.nbuckets * 8) + idx * RECORD_STRIDE
    }

    fn read_record(&self, off: u64) -> Result<(VersionRecord, u64), PError> {
        let mut b = [0u8; RECORD_LEN];
        self.pmem.read(POffset::new(off), &mut b)?;
        let kind = b[0];
        if kind != KIND_PUT && kind != KIND_DEL {
            return Err(PError::CorruptStack(format!(
                "published KV record at {off:#x} has kind {kind}"
            )));
        }
        let rec = VersionRecord {
            key: u64::from_le_bytes(b[8..16].try_into().expect("slice length")),
            value: i64::from_le_bytes(b[16..24].try_into().expect("slice length")),
            pid: u64::from_le_bytes(b[24..32].try_into().expect("slice length")),
            seq: u64::from_le_bytes(b[32..40].try_into().expect("slice length")),
            is_delete: kind == KIND_DEL,
        };
        let next = u64::from_le_bytes(b[40..48].try_into().expect("slice length"));
        Ok((rec, next))
    }

    /// Walks a chain from `head` for `key`: the newest record decides.
    fn lookup_from(&self, head: u64, key: u64) -> Result<Option<i64>, PError> {
        let mut off = head;
        while off != 0 {
            let (rec, next) = self.read_record(off)?;
            if rec.key == key {
                return Ok(if rec.is_delete { None } else { Some(rec.value) });
            }
            off = next;
        }
        Ok(None)
    }

    /// Reserves one log slot; `None` when the log is exhausted.
    fn reserve(&self) -> Result<Option<u64>, PError> {
        loop {
            let t = self.pmem.read_u64(self.base + OFF_LOG_TAIL)?;
            if t >= self.log_cap {
                return Ok(None);
            }
            if self.pmem.compare_exchange(
                self.base + OFF_LOG_TAIL,
                &t.to_le_bytes(),
                &(t + 1).to_le_bytes(),
            )? {
                return Ok(Some(self.record_off(t)));
            }
        }
    }

    /// The append loop shared by every mutation: check the precondition
    /// against the current chain, write the full record into a reserved
    /// slot, publish it with the bucket-head CAS. A failed CAS means
    /// another mutation intervened — re-check and retry. The slot is
    /// reserved lazily and at most once; if the precondition fails
    /// after a slot was reserved, the slot is abandoned as an invisible
    /// orphan (the price of never recycling evidence).
    fn append(
        &self,
        pid: u64,
        seq: u64,
        key: u64,
        kind: u8,
        value: i64,
        precond: &Precond,
    ) -> Result<Append, PError> {
        let bucket = self.bucket_off(key);
        let mut slot: Option<u64> = None;
        loop {
            let head = self.pmem.read_u64(bucket)?;
            let value = match precond {
                Precond::None => value,
                Precond::Exists => match self.lookup_from(head, key)? {
                    // A delete records the value it removed.
                    Some(current) => current,
                    None => return Ok(Append::PrecondFailed),
                },
                Precond::ValueIs(expected) => {
                    if self.lookup_from(head, key)? != Some(*expected) {
                        return Ok(Append::PrecondFailed);
                    }
                    value
                }
            };
            let off = match slot {
                Some(off) => off,
                None => match self.reserve()? {
                    Some(off) => {
                        slot = Some(off);
                        off
                    }
                    None => return Ok(Append::LogFull),
                },
            };
            let mut b = [0u8; RECORD_LEN];
            b[0] = kind;
            b[8..16].copy_from_slice(&key.to_le_bytes());
            b[16..24].copy_from_slice(&value.to_le_bytes());
            b[24..32].copy_from_slice(&pid.to_le_bytes());
            b[32..40].copy_from_slice(&seq.to_le_bytes());
            b[40..48].copy_from_slice(&head.to_le_bytes());
            self.pmem.write(POffset::new(off), &b)?;
            if self
                .pmem
                .compare_exchange(bucket, &head.to_le_bytes(), &off.to_le_bytes())?
            {
                return Ok(Append::Applied);
            }
        }
    }

    /// Stores `value` under `key` as process `pid` with unique tag
    /// `seq`, inserting or overwriting. Returns `false` if the version
    /// log's lifetime capacity is exhausted (the store is then
    /// read-only).
    ///
    /// # Errors
    ///
    /// A propagated crash (complete with [`PKvStore::recover_put`]
    /// after restart).
    pub fn put(&self, pid: u64, seq: u64, key: u64, value: i64) -> Result<bool, PError> {
        match self.append(pid, seq, key, KIND_PUT, value, &Precond::None)? {
            Append::Applied => Ok(true),
            Append::LogFull => Ok(false),
            Append::PrecondFailed => unreachable!("put has no precondition"),
        }
    }

    /// Reads the current value of `key`.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn get(&self, key: u64) -> Result<Option<i64>, PError> {
        let head = self.pmem.read_u64(self.bucket_off(key))?;
        self.lookup_from(head, key)
    }

    /// Removes `key` as process `pid` with unique tag `seq`. Returns
    /// `true` if the key was present (and is now removed), `false` if
    /// it was absent or the log is full.
    ///
    /// # Errors
    ///
    /// A propagated crash (complete with [`PKvStore::recover_delete`]
    /// after restart).
    pub fn delete(&self, pid: u64, seq: u64, key: u64) -> Result<bool, PError> {
        match self.append(pid, seq, key, KIND_DEL, 0, &Precond::Exists)? {
            Append::Applied => Ok(true),
            Append::PrecondFailed | Append::LogFull => Ok(false),
        }
    }

    /// Replaces `key`'s value with `new` iff it currently equals
    /// `expected`, as process `pid` with unique tag `seq`. Returns
    /// `false` if the current value differs (or the key is absent, or
    /// the log is full).
    ///
    /// # Errors
    ///
    /// A propagated crash (complete with [`PKvStore::recover_cas`]
    /// after restart).
    pub fn cas(
        &self,
        pid: u64,
        seq: u64,
        key: u64,
        expected: i64,
        new: i64,
    ) -> Result<bool, PError> {
        match self.append(pid, seq, key, KIND_PUT, new, &Precond::ValueIs(expected))? {
            Append::Applied => Ok(true),
            Append::PrecondFailed | Append::LogFull => Ok(false),
        }
    }

    /// Searches `key`'s published chain for the record tagged
    /// `(pid, seq)` — the evidence scan of the NSRL recovery duals.
    fn find_tag(&self, key: u64, pid: u64, seq: u64) -> Result<Option<VersionRecord>, PError> {
        let mut off = self.pmem.read_u64(self.bucket_off(key))?;
        while off != 0 {
            let (rec, next) = self.read_record(off)?;
            if rec.pid == pid && rec.seq == seq {
                return Ok(Some(rec));
            }
            off = next;
        }
        Ok(None)
    }

    /// Completes an interrupted `put(pid, seq, key, value)`: the
    /// operation linearized iff a published record carries its tag;
    /// only then is re-execution skipped.
    ///
    /// # Errors
    ///
    /// A propagated crash; recovery is then re-run after restart.
    pub fn recover_put(&self, pid: u64, seq: u64, key: u64, value: i64) -> Result<bool, PError> {
        if self.variant == KvVariant::Nsrl && self.find_tag(key, pid, seq)?.is_some() {
            return Ok(true);
        }
        self.put(pid, seq, key, value)
    }

    /// Completes an interrupted `delete(pid, seq, key)`.
    ///
    /// A delete that observed an absent key and crashed before
    /// reporting leaves no evidence — recovery re-executes it, which is
    /// correct because an answer that was never persisted is
    /// indistinguishable from the operation not having run (the same
    /// argument the recoverable queue makes for empty dequeues).
    ///
    /// # Errors
    ///
    /// A propagated crash; recovery is then re-run after restart.
    pub fn recover_delete(&self, pid: u64, seq: u64, key: u64) -> Result<bool, PError> {
        if self.variant == KvVariant::Nsrl && self.find_tag(key, pid, seq)?.is_some() {
            return Ok(true);
        }
        self.delete(pid, seq, key)
    }

    /// Completes an interrupted `cas(pid, seq, key, expected, new)`. A
    /// successful CAS left a tagged record; a failed one left no effect
    /// and is safely re-executed.
    ///
    /// # Errors
    ///
    /// A propagated crash; recovery is then re-run after restart.
    pub fn recover_cas(
        &self,
        pid: u64,
        seq: u64,
        key: u64,
        expected: i64,
        new: i64,
    ) -> Result<bool, PError> {
        if self.variant == KvVariant::Nsrl && self.find_tag(key, pid, seq)?.is_some() {
            return Ok(true);
        }
        self.cas(pid, seq, key, expected, new)
    }

    /// One bucket's published chain, oldest record first.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    ///
    /// # Panics
    ///
    /// Panics if `bucket >= nbuckets`.
    pub fn chain(&self, bucket: u64) -> Result<Vec<VersionRecord>, PError> {
        assert!(
            bucket < self.nbuckets,
            "bucket {bucket} out of range ({} buckets)",
            self.nbuckets
        );
        let mut off = self.pmem.read_u64(self.base + (HEADER_LEN + bucket * 8))?;
        let mut out = Vec::new();
        while off != 0 {
            let (rec, next) = self.read_record(off)?;
            out.push(rec);
            off = next;
        }
        out.reverse();
        Ok(out)
    }

    /// Every bucket's published chain (oldest first), in bucket order —
    /// the linearization witness the KV verifier checks answers
    /// against.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn snapshot(&self) -> Result<Vec<Vec<VersionRecord>>, PError> {
        (0..self.nbuckets).map(|b| self.chain(b)).collect()
    }

    /// The store's current contents as an ordinary map.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn contents(&self) -> Result<BTreeMap<u64, i64>, PError> {
        let mut out = BTreeMap::new();
        for chain in self.snapshot()? {
            for rec in chain {
                if rec.is_delete {
                    out.remove(&rec.key);
                } else {
                    out.insert(rec.key, rec.value);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_nvram::{FailPlan, PMemBuilder};

    fn fixture(nbuckets: u64, log_cap: u64) -> (PMem, PHeap, PKvStore) {
        let pmem = PMemBuilder::new()
            .len(1 << 19)
            .eager_flush(true)
            .build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 19).unwrap();
        let kv = PKvStore::format(pmem.clone(), &heap, nbuckets, log_cap, KvVariant::Nsrl).unwrap();
        (pmem, heap, kv)
    }

    #[test]
    fn put_get_delete_cas_semantics() {
        let (_, _, kv) = fixture(8, 64);
        assert_eq!(kv.get(1).unwrap(), None);
        assert!(kv.put(0, 1, 1, 100).unwrap());
        assert!(kv.put(0, 2, 2, 200).unwrap());
        assert_eq!(kv.get(1).unwrap(), Some(100));
        assert!(kv.put(0, 3, 1, 101).unwrap(), "overwrite succeeds");
        assert_eq!(kv.get(1).unwrap(), Some(101));
        assert!(!kv.cas(0, 4, 1, 100, 999).unwrap(), "stale expected fails");
        assert!(kv.cas(0, 5, 1, 101, 102).unwrap());
        assert_eq!(kv.get(1).unwrap(), Some(102));
        assert!(!kv.cas(0, 6, 99, 0, 1).unwrap(), "absent key fails cas");
        assert!(kv.delete(0, 7, 1).unwrap());
        assert_eq!(kv.get(1).unwrap(), None);
        assert!(!kv.delete(0, 8, 1).unwrap(), "double delete reports absent");
        assert!(!kv.cas(0, 9, 1, 102, 103).unwrap(), "deleted key fails cas");
        assert_eq!(kv.get(2).unwrap(), Some(200));
    }

    #[test]
    fn put_after_delete_reinserts() {
        let (_, _, kv) = fixture(4, 32);
        kv.put(0, 1, 5, 50).unwrap();
        kv.delete(0, 2, 5).unwrap();
        assert!(kv.put(0, 3, 5, 51).unwrap());
        assert_eq!(kv.get(5).unwrap(), Some(51));
    }

    #[test]
    fn log_capacity_is_lifetime_bounded() {
        let (_, _, kv) = fixture(2, 3);
        assert!(kv.put(0, 1, 1, 1).unwrap());
        assert!(kv.put(0, 2, 2, 2).unwrap());
        assert!(kv.put(0, 3, 3, 3).unwrap());
        assert!(!kv.put(0, 4, 4, 4).unwrap(), "log exhausted");
        // Deletes and cas also need log slots.
        assert!(!kv.delete(0, 5, 1).unwrap());
        assert!(!kv.cas(0, 6, 1, 1, 9).unwrap());
        // Reads still work.
        assert_eq!(kv.get(2).unwrap(), Some(2));
        assert_eq!(kv.log_reserved().unwrap(), 3);
    }

    #[test]
    fn eager_flush_region_is_required() {
        let pmem = PMemBuilder::new().len(1 << 16).build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 16).unwrap();
        assert!(matches!(
            PKvStore::format(pmem.clone(), &heap, 4, 16, KvVariant::Nsrl),
            Err(PError::InvalidConfig(_))
        ));
        assert!(matches!(
            PKvStore::open(pmem, POffset::new(64), KvVariant::Nsrl),
            Err(PError::InvalidConfig(_))
        ));
    }

    #[test]
    fn open_round_trips_and_rejects_garbage() {
        let (pmem, heap, kv) = fixture(8, 32);
        kv.put(1, 1, 42, -7).unwrap();
        let kv2 = PKvStore::open(pmem.clone(), kv.base(), KvVariant::Nsrl).unwrap();
        assert_eq!(kv2.nbuckets(), 8);
        assert_eq!(kv2.log_capacity(), 32);
        assert_eq!(kv2.get(42).unwrap(), Some(-7));
        let junk = heap.alloc_zeroed(128).unwrap();
        assert!(matches!(
            PKvStore::open(pmem, junk, KvVariant::Nsrl),
            Err(PError::CorruptStack(_))
        ));
    }

    #[test]
    fn contents_and_chains_reflect_history() {
        let (_, _, kv) = fixture(4, 64);
        kv.put(0, 1, 10, 1).unwrap();
        kv.put(0, 2, 11, 2).unwrap();
        kv.put(0, 3, 10, 3).unwrap();
        kv.delete(0, 4, 11).unwrap();
        let contents = kv.contents().unwrap();
        assert_eq!(contents.get(&10), Some(&3));
        assert_eq!(contents.get(&11), None);
        let total: usize = kv.snapshot().unwrap().iter().map(Vec::len).sum();
        assert_eq!(total, 4, "every published mutation appears exactly once");
        // The delete record carries the removed value.
        let del = kv
            .snapshot()
            .unwrap()
            .into_iter()
            .flatten()
            .find(|r| r.is_delete)
            .unwrap();
        assert_eq!(del.key, 11);
        assert_eq!(del.value, 2);
    }

    #[test]
    fn state_survives_crash_and_reopen() {
        let (pmem, _, kv) = fixture(8, 64);
        kv.put(0, 1, 7, 70).unwrap();
        kv.put(0, 2, 8, 80).unwrap();
        kv.delete(0, 3, 8).unwrap();
        pmem.crash_now(0, 0.0); // eager region: nothing volatile to lose
        let pmem2 = pmem.reopen().unwrap();
        let kv2 = PKvStore::open(pmem2, kv.base(), KvVariant::Nsrl).unwrap();
        assert_eq!(kv2.get(7).unwrap(), Some(70));
        assert_eq!(kv2.get(8).unwrap(), None);
    }

    #[test]
    fn recovery_sees_linearized_ops() {
        let (_, _, kv) = fixture(8, 64);
        assert!(kv.put(3, 9, 1, 11).unwrap());
        assert!(kv.recover_put(3, 9, 1, 11).unwrap());
        assert_eq!(kv.log_reserved().unwrap(), 1, "no second application");
        assert!(kv.cas(2, 10, 1, 11, 12).unwrap());
        assert!(kv.recover_cas(2, 10, 1, 11, 12).unwrap());
        assert!(kv.delete(1, 11, 1).unwrap());
        assert!(kv.recover_delete(1, 11, 1).unwrap());
        assert_eq!(kv.log_reserved().unwrap(), 3);
        assert_eq!(kv.get(1).unwrap(), None);
    }

    #[test]
    fn recovery_reexecutes_unlinearized_ops() {
        let (_, _, kv) = fixture(8, 64);
        assert!(kv.recover_put(0, 1, 5, 55).unwrap());
        assert_eq!(kv.get(5).unwrap(), Some(55));
        assert!(kv.recover_delete(0, 2, 5).unwrap());
        assert_eq!(kv.get(5).unwrap(), None);
        assert!(!kv.recover_cas(0, 3, 5, 55, 56).unwrap());
    }

    #[test]
    fn noscan_variant_double_applies() {
        let pmem = PMemBuilder::new()
            .len(1 << 18)
            .eager_flush(true)
            .build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 18).unwrap();
        let kv = PKvStore::format(pmem, &heap, 4, 32, KvVariant::NoScan).unwrap();
        assert!(kv.put(0, 1, 1, 10).unwrap());
        assert!(kv.recover_put(0, 1, 1, 10).unwrap());
        let records: Vec<VersionRecord> = kv.snapshot().unwrap().into_iter().flatten().collect();
        assert_eq!(records.len(), 2, "double application must be visible");
        assert_eq!(records[0].seq, records[1].seq);
    }

    #[test]
    fn crash_point_enumeration_put_recovers_exactly_once() {
        let probe = || fixture(4, 16);
        let (pmem, _, kv) = probe();
        let e0 = pmem.events();
        assert!(kv.put(0, 1, 7, 77).unwrap());
        let total = pmem.events() - e0;
        assert!(total >= 2, "reserve CAS + record write + head CAS");

        for k in 0..total {
            let (pmem, _, kv) = probe();
            pmem.arm_failpoint(FailPlan::after_events(k));
            let err = kv.put(0, 1, 7, 77).unwrap_err();
            assert!(err.is_crash());
            let pmem2 = pmem.reopen().unwrap();
            let kv2 = PKvStore::open(pmem2, kv.base(), KvVariant::Nsrl).unwrap();
            assert!(kv2.recover_put(0, 1, 7, 77).unwrap(), "crash at event {k}");
            assert_eq!(kv2.get(7).unwrap(), Some(77), "crash at event {k}");
            let published: usize = kv2.snapshot().unwrap().iter().map(Vec::len).sum();
            assert_eq!(published, 1, "crash at event {k}: exactly one record");
        }
    }

    #[test]
    fn crash_point_enumeration_delete_recovers_exactly_once() {
        let probe = || {
            let (pmem, heap, kv) = fixture(4, 16);
            kv.put(0, 1, 7, 77).unwrap();
            (pmem, heap, kv)
        };
        let (pmem, _, kv) = probe();
        let e0 = pmem.events();
        assert!(kv.delete(1, 2, 7).unwrap());
        let total = pmem.events() - e0;

        for k in 0..total {
            let (pmem, _, kv) = probe();
            pmem.arm_failpoint(FailPlan::after_events(k));
            let err = kv.delete(1, 2, 7).unwrap_err();
            assert!(err.is_crash());
            let pmem2 = pmem.reopen().unwrap();
            let kv2 = PKvStore::open(pmem2, kv.base(), KvVariant::Nsrl).unwrap();
            assert!(kv2.recover_delete(1, 2, 7).unwrap(), "crash at event {k}");
            assert_eq!(kv2.get(7).unwrap(), None, "crash at event {k}");
            let published: usize = kv2.snapshot().unwrap().iter().map(Vec::len).sum();
            assert_eq!(published, 2, "crash at event {k}: put + delete records");
        }
    }

    #[test]
    fn crash_point_enumeration_cas_recovers_exactly_once() {
        let probe = || {
            let (pmem, heap, kv) = fixture(4, 16);
            kv.put(0, 1, 7, 77).unwrap();
            (pmem, heap, kv)
        };
        let (pmem, _, kv) = probe();
        let e0 = pmem.events();
        assert!(kv.cas(1, 2, 7, 77, 78).unwrap());
        let total = pmem.events() - e0;

        for k in 0..total {
            let (pmem, _, kv) = probe();
            pmem.arm_failpoint(FailPlan::after_events(k));
            let err = kv.cas(1, 2, 7, 77, 78).unwrap_err();
            assert!(err.is_crash());
            let pmem2 = pmem.reopen().unwrap();
            let kv2 = PKvStore::open(pmem2, kv.base(), KvVariant::Nsrl).unwrap();
            assert!(
                kv2.recover_cas(1, 2, 7, 77, 78).unwrap(),
                "crash at event {k}"
            );
            assert_eq!(kv2.get(7).unwrap(), Some(78), "crash at event {k}");
            let published: usize = kv2.snapshot().unwrap().iter().map(Vec::len).sum();
            assert_eq!(published, 2, "crash at event {k}: no double application");
        }
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        let (_, _, kv) = fixture(16, 1024);
        let writers = 4u64;
        let per = 64u64;
        std::thread::scope(|s| {
            for w in 0..writers {
                let kv = kv.clone();
                s.spawn(move || {
                    for i in 0..per {
                        let key = w * per + i;
                        assert!(kv.put(w, i + 1, key, key as i64).unwrap());
                    }
                });
            }
        });
        let contents = kv.contents().unwrap();
        assert_eq!(contents.len(), (writers * per) as usize);
        for (k, v) in contents {
            assert_eq!(k as i64, v);
        }
    }

    #[test]
    fn concurrent_cas_on_one_key_applies_each_transition_once() {
        // Four threads increment one key via cas-retry loops; the final
        // value counts every success exactly once.
        let (_, _, kv) = fixture(4, 4096);
        kv.put(0, 1, 0, 0).unwrap();
        let per = 50i64;
        std::thread::scope(|s| {
            for w in 0..4u64 {
                let kv = kv.clone();
                s.spawn(move || {
                    let mut seq = 1_000 * (w + 1);
                    for _ in 0..per {
                        loop {
                            seq += 1;
                            let cur = kv.get(0).unwrap().unwrap();
                            if kv.cas(w, seq, 0, cur, cur + 1).unwrap() {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(kv.get(0).unwrap(), Some(4 * per));
    }

    #[test]
    fn required_len_covers_layout() {
        let need = PKvStore::required_len(16, 8);
        assert_eq!(need as u64, round64(64 + 16 * 8) + 8 * 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn chain_bounds_are_enforced() {
        let (_, _, kv) = fixture(2, 8);
        let _ = kv.chain(2);
    }

    #[test]
    fn variant_codec_round_trips() {
        for v in [KvVariant::Nsrl, KvVariant::NoScan] {
            assert_eq!(KvVariant::from_u8(v.as_u8()).unwrap(), v);
        }
        assert!(KvVariant::from_u8(9).is_err());
    }
}
