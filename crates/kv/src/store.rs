//! The persistent hash-indexed key-value store.
//!
//! See the crate-level documentation for the design rationale. The
//! persistent layout, starting at the heap allocation's base:
//!
//! ```text
//! header (64 B): magic, bucket count, log capacity, log tail,
//!                flush epoch
//! buckets:       nbuckets × 8 B   — absolute offset of the newest
//!                                   record of each chain (0 = empty)
//! version log:   log_cap × 64 B   — immutable records, 64-aligned
//! ```
//!
//! A record occupies the first 48 bytes of its 64-byte slot:
//!
//! ```text
//! 0      kind   (0 = unpublished, 1 = PUT, 2 = DELETE)
//! 8..16  key
//! 16..24 value  (the stored value; for DELETE, the value removed)
//! 24..32 pid    (writer's process id)
//! 32..40 seq    (writer's operation tag)
//! 40..48 next   (offset of the chain's previous record, 0 = end)
//! ```
//!
//! Records become visible only through the bucket-head publish, after
//! every field is durable, so no crash moment can expose a torn
//! record. Reserved-but-unpublished slots are orphans: invisible to
//! lookups, scans and the verifier alike.
//!
//! # Commit modes
//!
//! The durability discipline depends on the region:
//!
//! * **Eager** (`eager_flush` region, §5's cache-less NVRAM): every
//!   write is durable the moment it completes, so mutations are
//!   lock-free CAS-retry loops and nothing is ever explicitly flushed.
//! * **Batched** (buffered region): the store orders persists itself.
//!   [`PKvStore::apply_batch`] stages the records of a whole batch,
//!   makes them (and the log tail) durable with one coalesced
//!   persist, publishes each touched bucket's head once, persists the
//!   heads, and finally bumps the persistent **flush epoch** in the
//!   header. Records are durable strictly before any head that can
//!   reach them, so a crash at *any* flush boundary leaves each bucket
//!   either entirely pre-batch or entirely post-batch — never a torn
//!   head — and the evidence-scan recovery argument carries over
//!   unchanged. Batched mutations serialize on the region's advisory lock
//!   (shard-level parallelism comes from striping stores across
//!   regions, see [`ShardedKvStore`](crate::ShardedKvStore)).

use pstack_core::PError;
use pstack_heap::PHeap;
use pstack_nvram::{PMem, POffset};
use std::collections::BTreeMap;

const KV_MAGIC: u64 = 0x5053_4B56_5354_4F31; // "PSKVSTO1"
const HEADER_LEN: u64 = 64;
const RECORD_STRIDE: u64 = 64;
const RECORD_LEN: usize = 48;

const OFF_MAGIC: u64 = 0;
const OFF_NBUCKETS: u64 = 8;
const OFF_LOG_CAP: u64 = 16;
const OFF_LOG_TAIL: u64 = 24;
const OFF_FLUSH_EPOCH: u64 = 32;

const KIND_PUT: u8 = 1;
const KIND_DEL: u8 = 2;

/// Which recovery procedure the store runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KvVariant {
    /// Correct NSRL recovery: scan the key's published chain for the
    /// interrupted operation's tag before re-executing.
    #[default]
    Nsrl,
    /// Injected bug mirroring §5.2's matrix removal: recovery skips the
    /// evidence scan and always re-executes — operations that already
    /// linearized are applied twice, which the KV verifier flags.
    NoScan,
}

impl KvVariant {
    /// One-byte encoding for persistent configuration records.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        match self {
            KvVariant::Nsrl => 0,
            KvVariant::NoScan => 1,
        }
    }

    /// Decodes [`KvVariant::as_u8`].
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] for unknown encodings.
    pub fn from_u8(v: u8) -> Result<Self, PError> {
        match v {
            0 => Ok(KvVariant::Nsrl),
            1 => Ok(KvVariant::NoScan),
            other => Err(PError::InvalidConfig(format!(
                "unknown KV variant encoding {other}"
            ))),
        }
    }
}

/// One published version record, decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionRecord {
    /// The key this record belongs to.
    pub key: u64,
    /// The value stored (for a delete: the value that was removed).
    pub value: i64,
    /// Writer's process id.
    pub pid: u64,
    /// Writer's operation tag.
    pub seq: u64,
    /// `true` for a DELETE record, `false` for a PUT record.
    pub is_delete: bool,
}

/// Outcome of the internal append loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Append {
    /// The record was published.
    Applied,
    /// The precondition failed against the current chain state.
    PrecondFailed,
    /// The version log's lifetime capacity is exhausted.
    LogFull,
}

/// Per-op outcome of [`PKvStore::apply_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvApplied {
    /// The mutation took effect (its record is published).
    Applied,
    /// The precondition failed (absent key for a delete, mismatched
    /// expected value for a cas) — no effect, no record.
    PrecondFailed,
    /// The version log's lifetime capacity is exhausted — no effect.
    LogFull,
}

impl KvApplied {
    /// `true` for [`KvApplied::Applied`].
    #[must_use]
    pub fn took_effect(self) -> bool {
        matches!(self, KvApplied::Applied)
    }
}

impl From<Append> for KvApplied {
    fn from(a: Append) -> Self {
        match a {
            Append::Applied => KvApplied::Applied,
            Append::PrecondFailed => KvApplied::PrecondFailed,
            Append::LogFull => KvApplied::LogFull,
        }
    }
}

/// Precondition checked atomically with the publish CAS (the head CAS
/// fails if any other mutation intervened, so a passed check still
/// holds at the linearization point).
enum Precond {
    /// No precondition (plain put).
    None,
    /// The key must currently be present (delete).
    Exists,
    /// The key must currently hold exactly this value (cas).
    ValueIs(i64),
}

/// One mutation of a group-commit batch (see
/// [`PKvStore::apply_batch`]). Gets never need batching — they take no
/// log slot and persist nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvBatchOp {
    /// Store `value` under `key` (insert or overwrite).
    Put {
        /// Writer's process id.
        pid: u64,
        /// Writer's unique operation tag.
        seq: u64,
        /// The key.
        key: u64,
        /// The value to store.
        value: i64,
    },
    /// Remove `key`.
    Delete {
        /// Writer's process id.
        pid: u64,
        /// Writer's unique operation tag.
        seq: u64,
        /// The key.
        key: u64,
    },
    /// Replace `key`'s value with `new` iff it currently holds
    /// `expected`.
    Cas {
        /// Writer's process id.
        pid: u64,
        /// Writer's unique operation tag.
        seq: u64,
        /// The key.
        key: u64,
        /// The value the key must currently hold.
        expected: i64,
        /// The replacement value.
        new: i64,
    },
}

impl KvBatchOp {
    /// The key this mutation targets (what the shard router hashes).
    #[must_use]
    pub fn key(&self) -> u64 {
        match *self {
            KvBatchOp::Put { key, .. }
            | KvBatchOp::Delete { key, .. }
            | KvBatchOp::Cas { key, .. } => key,
        }
    }

    /// The writer's `(pid, seq)` tag.
    #[must_use]
    pub fn tag(&self) -> (u64, u64) {
        match *self {
            KvBatchOp::Put { pid, seq, .. }
            | KvBatchOp::Delete { pid, seq, .. }
            | KvBatchOp::Cas { pid, seq, .. } => (pid, seq),
        }
    }

    fn parts(&self) -> (u64, u64, u64, u8, i64, Precond) {
        match *self {
            KvBatchOp::Put {
                pid,
                seq,
                key,
                value,
            } => (pid, seq, key, KIND_PUT, value, Precond::None),
            KvBatchOp::Delete { pid, seq, key } => (pid, seq, key, KIND_DEL, 0, Precond::Exists),
            KvBatchOp::Cas {
                pid,
                seq,
                key,
                expected,
                new,
            } => (pid, seq, key, KIND_PUT, new, Precond::ValueIs(expected)),
        }
    }
}

/// A crash-recoverable hash-indexed map from `u64` keys to `i64`
/// values. Cheap to clone; all clones share the same store. See the
/// [module docs](self) for the persistent layout and the crate docs
/// for the recovery argument.
///
/// # Example
///
/// ```
/// use pstack_nvram::PMemBuilder;
/// use pstack_heap::PHeap;
/// use pstack_kv::{KvVariant, PKvStore};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pmem = PMemBuilder::new().len(1 << 18).eager_flush(true).build_in_memory();
/// let heap = PHeap::format(pmem.clone(), 0u64.into(), 1 << 18)?;
/// let kv = PKvStore::format(pmem, &heap, 16, 64, KvVariant::Nsrl)?;
/// assert!(kv.put(0, 1, 7, 700)?);
/// assert_eq!(kv.get(7)?, Some(700));
/// assert!(kv.cas(0, 2, 7, 700, 701)?);
/// assert!(kv.delete(0, 3, 7)?);
/// assert_eq!(kv.get(7)?, None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PKvStore {
    pmem: PMem,
    base: POffset,
    nbuckets: u64,
    log_cap: u64,
    variant: KvVariant,
    /// Commit mode, inferred from the region: `true` = eager (§5
    /// cache-less NVRAM, lock-free per-op CAS), `false` = batched (the
    /// store orders its own persists; mutations serialize on the
    /// region's advisory lock, shared by every handle on the region).
    eager: bool,
}

fn round64(v: u64) -> u64 {
    (v + 63) & !63
}

/// SplitMix64 finalizer: a full-avalanche mix so sequential keys spread
/// across buckets.
pub(crate) fn mix(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl PKvStore {
    /// Bytes of NVRAM the store needs for `nbuckets` buckets and a
    /// `log_cap`-record version log.
    #[must_use]
    pub fn required_len(nbuckets: u64, log_cap: u64) -> usize {
        (round64(HEADER_LEN + nbuckets * 8) + log_cap * RECORD_STRIDE) as usize
    }

    /// Allocates and persists an empty store. `log_cap` bounds the
    /// store's *lifetime* mutation count (records are never recycled —
    /// the same trade the recoverable queue makes to keep recovery a
    /// scan; compaction is future work).
    ///
    /// An `eager_flush` region yields an eager store (§5's cache-less
    /// NVRAM, lock-free per-op CAS); a buffered region yields a batched
    /// store that orders its own persists and group-commits mutations
    /// (see the [module docs](self)).
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] for a zero bucket count or log
    /// capacity; heap/NVRAM errors otherwise.
    pub fn format(
        pmem: PMem,
        heap: &PHeap,
        nbuckets: u64,
        log_cap: u64,
        variant: KvVariant,
    ) -> Result<Self, PError> {
        if nbuckets == 0 || log_cap == 0 {
            return Err(PError::InvalidConfig(
                "KV store needs at least one bucket and one log slot".into(),
            ));
        }
        let len = Self::required_len(nbuckets, log_cap);
        let base = heap.alloc_aligned(len, 64)?;
        pmem.fill(base, 0, len)?;
        pmem.write_u64(base + OFF_NBUCKETS, nbuckets)?;
        pmem.write_u64(base + OFF_LOG_CAP, log_cap)?;
        pmem.write_u64(base + OFF_MAGIC, KV_MAGIC)?;
        if !pmem.is_eager_flush() {
            // Batched store: nothing above was durable yet.
            pmem.flush(base, len)?;
        }
        Ok(Self::assemble(pmem, base, nbuckets, log_cap, variant))
    }

    /// Re-attaches to a store previously created at `base` (recovery
    /// boot). The commit mode follows the region, exactly as in
    /// [`PKvStore::format`].
    ///
    /// # Errors
    ///
    /// [`PError::CorruptStack`] on a bad magic word.
    pub fn open(pmem: PMem, base: POffset, variant: KvVariant) -> Result<Self, PError> {
        let magic = pmem.read_u64(base + OFF_MAGIC)?;
        if magic != KV_MAGIC {
            return Err(PError::CorruptStack(format!(
                "bad KV store magic {magic:#x} at {base}"
            )));
        }
        let nbuckets = pmem.read_u64(base + OFF_NBUCKETS)?;
        let log_cap = pmem.read_u64(base + OFF_LOG_CAP)?;
        Ok(Self::assemble(pmem, base, nbuckets, log_cap, variant))
    }

    fn assemble(
        pmem: PMem,
        base: POffset,
        nbuckets: u64,
        log_cap: u64,
        variant: KvVariant,
    ) -> Self {
        let eager = pmem.is_eager_flush();
        PKvStore {
            pmem,
            base,
            nbuckets,
            log_cap,
            variant,
            eager,
        }
    }

    /// The store's base offset (persist it to find the store again).
    #[must_use]
    pub fn base(&self) -> POffset {
        self.base
    }

    /// Number of hash buckets.
    #[must_use]
    pub fn nbuckets(&self) -> u64 {
        self.nbuckets
    }

    /// Lifetime version-log capacity in records.
    #[must_use]
    pub fn log_capacity(&self) -> u64 {
        self.log_cap
    }

    /// The recovery variant this handle runs.
    #[must_use]
    pub fn variant(&self) -> KvVariant {
        self.variant
    }

    /// Log slots reserved so far (published plus crash orphans).
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn log_reserved(&self) -> Result<u64, PError> {
        Ok(self.pmem.read_u64(self.base + OFF_LOG_TAIL)?)
    }

    /// `true` for an eager store (per-op durability on a cache-less
    /// region), `false` for a batched store (group-commit persists).
    #[must_use]
    pub fn is_eager(&self) -> bool {
        self.eager
    }

    /// Completed group commits since format — the persistent flush
    /// epoch a batched store bumps (and persists) at the end of every
    /// batch. After a crash it counts exactly the batches whose epoch
    /// bump reached durability; the batch *publishes* (head flips) are
    /// durable strictly before its epoch bump, so `flush_epoch() == n`
    /// implies the first `n` batches are fully visible. Always `0` on
    /// an eager store.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn flush_epoch(&self) -> Result<u64, PError> {
        Ok(self.pmem.read_u64(self.base + OFF_FLUSH_EPOCH)?)
    }

    fn bucket_off(&self, key: u64) -> POffset {
        let b = mix(key) % self.nbuckets;
        self.base + (HEADER_LEN + b * 8)
    }

    fn record_off(&self, idx: u64) -> u64 {
        self.base.get() + round64(HEADER_LEN + self.nbuckets * 8) + idx * RECORD_STRIDE
    }

    fn read_record(&self, off: u64) -> Result<(VersionRecord, u64), PError> {
        let mut b = [0u8; RECORD_LEN];
        self.pmem.read(POffset::new(off), &mut b)?;
        let kind = b[0];
        if kind != KIND_PUT && kind != KIND_DEL {
            return Err(PError::CorruptStack(format!(
                "published KV record at {off:#x} has kind {kind}"
            )));
        }
        let rec = VersionRecord {
            key: u64::from_le_bytes(b[8..16].try_into().expect("slice length")),
            value: i64::from_le_bytes(b[16..24].try_into().expect("slice length")),
            pid: u64::from_le_bytes(b[24..32].try_into().expect("slice length")),
            seq: u64::from_le_bytes(b[32..40].try_into().expect("slice length")),
            is_delete: kind == KIND_DEL,
        };
        let next = u64::from_le_bytes(b[40..48].try_into().expect("slice length"));
        Ok((rec, next))
    }

    /// Walks a chain from `head` for `key`: the newest record decides.
    fn lookup_from(&self, head: u64, key: u64) -> Result<Option<i64>, PError> {
        let mut off = head;
        while off != 0 {
            let (rec, next) = self.read_record(off)?;
            if rec.key == key {
                return Ok(if rec.is_delete { None } else { Some(rec.value) });
            }
            off = next;
        }
        Ok(None)
    }

    /// Reserves one log slot; `None` when the log is exhausted.
    fn reserve(&self) -> Result<Option<u64>, PError> {
        loop {
            let t = self.pmem.read_u64(self.base + OFF_LOG_TAIL)?;
            if t >= self.log_cap {
                return Ok(None);
            }
            if self.pmem.compare_exchange(
                self.base + OFF_LOG_TAIL,
                &t.to_le_bytes(),
                &(t + 1).to_le_bytes(),
            )? {
                return Ok(Some(self.record_off(t)));
            }
        }
    }

    /// Resolves a mutation's precondition against the chain at `head`:
    /// `None` means the precondition failed, `Some(v)` the value the
    /// record must carry (a delete records the value it removed).
    fn resolve_value(
        &self,
        head: u64,
        key: u64,
        value: i64,
        precond: &Precond,
    ) -> Result<Option<i64>, PError> {
        match precond {
            Precond::None => Ok(Some(value)),
            Precond::Exists => self.lookup_from(head, key),
            Precond::ValueIs(expected) => {
                if self.lookup_from(head, key)? == Some(*expected) {
                    Ok(Some(value))
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// Writes a full record into slot `off` (volatile on a buffered
    /// region; durable immediately on an eager one). `tag` is the
    /// writer's `(pid, seq)` pair.
    fn write_record(
        &self,
        off: u64,
        kind: u8,
        key: u64,
        value: i64,
        tag: (u64, u64),
        next: u64,
    ) -> Result<(), PError> {
        let mut b = [0u8; RECORD_LEN];
        b[0] = kind;
        b[8..16].copy_from_slice(&key.to_le_bytes());
        b[16..24].copy_from_slice(&value.to_le_bytes());
        b[24..32].copy_from_slice(&tag.0.to_le_bytes());
        b[32..40].copy_from_slice(&tag.1.to_le_bytes());
        b[40..48].copy_from_slice(&next.to_le_bytes());
        Ok(self.pmem.write(POffset::new(off), &b)?)
    }

    /// The eager append loop shared by every mutation: check the
    /// precondition against the current chain, write the full record
    /// into a reserved slot, publish it with the bucket-head CAS. A
    /// failed CAS means another mutation intervened — re-check and
    /// retry. The slot is reserved lazily and at most once; if the
    /// precondition fails after a slot was reserved, the slot is
    /// abandoned as an invisible orphan (the price of never recycling
    /// evidence).
    fn append(
        &self,
        pid: u64,
        seq: u64,
        key: u64,
        kind: u8,
        value: i64,
        precond: &Precond,
    ) -> Result<Append, PError> {
        let bucket = self.bucket_off(key);
        let mut slot: Option<u64> = None;
        loop {
            let head = self.pmem.read_u64(bucket)?;
            let Some(value) = self.resolve_value(head, key, value, precond)? else {
                return Ok(Append::PrecondFailed);
            };
            let off = match slot {
                Some(off) => off,
                None => match self.reserve()? {
                    Some(off) => {
                        slot = Some(off);
                        off
                    }
                    None => return Ok(Append::LogFull),
                },
            };
            self.write_record(off, kind, key, value, (pid, seq), head)?;
            if self
                .pmem
                .compare_exchange(bucket, &head.to_le_bytes(), &off.to_le_bytes())?
            {
                return Ok(Append::Applied);
            }
        }
    }

    /// Applies one mutation through the commit mode's native path: the
    /// eager CAS loop, or a singleton group commit on a batched store.
    fn apply_one(&self, op: KvBatchOp) -> Result<KvApplied, PError> {
        if self.eager {
            let (pid, seq, key, kind, value, precond) = op.parts();
            Ok(KvApplied::from(
                self.append(pid, seq, key, kind, value, &precond)?,
            ))
        } else {
            Ok(self.apply_batch(&[op])?[0])
        }
    }

    /// Group-commits a batch of mutations, in order, and reports each
    /// op's outcome. Ops see the staged effects of earlier ops in the
    /// same batch (a `cas` after a `put` of its expected value
    /// succeeds).
    ///
    /// On a **batched** store this is the hot path the sharding layer
    /// amortizes persists with: all records (and the log tail) become
    /// durable in one coalesced persist, each touched bucket's head is
    /// published once, the heads are persisted, and the header's flush
    /// epoch is bumped — 3 + ⌈heads/lines⌉ persist round-trips for the
    /// whole batch instead of ≥ 3 per mutation. A crash at any flush
    /// boundary leaves every bucket either entirely pre-batch or
    /// entirely post-batch (records are durable strictly before any
    /// head that can reach them), so recovery remains the per-key
    /// evidence scan. On an **eager** store the batch degenerates to
    /// the per-op loop — durability is per-write there, so there is
    /// nothing to coalesce.
    ///
    /// # Errors
    ///
    /// A propagated crash (recover each op with its recovery dual
    /// after restart).
    ///
    /// # Example
    ///
    /// ```
    /// use pstack_nvram::PMemBuilder;
    /// use pstack_heap::PHeap;
    /// use pstack_kv::{KvBatchOp, KvVariant, PKvStore};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// // A *buffered* region: the store orders its own persists.
    /// let pmem = PMemBuilder::new().len(1 << 18).build_in_memory();
    /// let heap = PHeap::format(pmem.clone(), 0u64.into(), 1 << 18)?;
    /// let kv = PKvStore::format(pmem, &heap, 16, 64, KvVariant::Nsrl)?;
    /// let applied = kv.apply_batch(&[
    ///     KvBatchOp::Put { pid: 0, seq: 1, key: 7, value: 70 },
    ///     KvBatchOp::Cas { pid: 0, seq: 2, key: 7, expected: 70, new: 71 },
    /// ])?;
    /// assert_eq!(applied, vec![Applied, Applied]);
    /// assert_eq!(kv.get(7)?, Some(71));
    /// assert_eq!(kv.flush_epoch()?, 1);
    /// # Ok(())
    /// # }
    /// # use pstack_kv::KvApplied::Applied;
    /// ```
    pub fn apply_batch(&self, ops: &[KvBatchOp]) -> Result<Vec<KvApplied>, PError> {
        if self.eager {
            return ops.iter().map(|&op| self.apply_one(op)).collect();
        }
        // Region-scoped (not handle-scoped): any handle opened on this
        // region — clone or independent `open` — serializes here.
        let _serialize = self.pmem.advisory_lock();
        let mut outcomes = vec![KvApplied::PrecondFailed; ops.len()];
        // Per touched bucket: the durable pre-batch head and the staged
        // head the batch will publish.
        let mut pre_heads: BTreeMap<u64, u64> = BTreeMap::new();
        let mut staged_heads: BTreeMap<u64, u64> = BTreeMap::new();
        let mut slots: Option<(u64, u64)> = None;

        // Phase 1 — stage: resolve preconditions against the staged
        // chain state, reserve slots, write records (volatile).
        for (i, op) in ops.iter().enumerate() {
            let (pid, seq, key, kind, value, precond) = op.parts();
            let bucket = self.bucket_off(key).get();
            let head = match staged_heads.get(&bucket) {
                Some(&h) => h,
                None => {
                    let h = self.pmem.read_u64(POffset::new(bucket))?;
                    pre_heads.insert(bucket, h);
                    h
                }
            };
            let Some(value) = self.resolve_value(head, key, value, &precond)? else {
                continue;
            };
            let Some(off) = self.reserve()? else {
                outcomes[i] = KvApplied::LogFull;
                continue;
            };
            self.write_record(off, kind, key, value, (pid, seq), head)?;
            staged_heads.insert(bucket, off);
            slots = Some(match slots {
                None => (off, off),
                Some((lo, hi)) => (lo.min(off), hi.max(off)),
            });
            outcomes[i] = KvApplied::Applied;
        }
        let Some((lo, hi)) = slots else {
            // Nothing staged: no records, no tail movement to persist.
            return Ok(outcomes);
        };

        // Phase 2 — persist the records and the log tail with one
        // coalesced flush each. The batch lock makes the reserved
        // slots consecutive, so [lo, hi] covers exactly this batch.
        self.pmem
            .flush(POffset::new(lo), (hi - lo + RECORD_STRIDE) as usize)?;
        self.pmem.flush(self.base + OFF_LOG_TAIL, 8)?;

        // Phase 3 — publish: flip each touched bucket's head once, to
        // the newest staged record. Intermediate staged heads are never
        // published, so per bucket the batch is all-or-nothing.
        for (&bucket, &new_head) in &staged_heads {
            let expected = pre_heads[&bucket];
            if !self.pmem.compare_exchange(
                POffset::new(bucket),
                &expected.to_le_bytes(),
                &new_head.to_le_bytes(),
            )? {
                return Err(PError::CorruptStack(
                    "bucket head moved under a group commit — batched-store mutations must \
                     all go through the batch lock"
                        .into(),
                ));
            }
        }

        // Phase 4 — persist the heads: one flush spanning the touched
        // buckets (clean lines in between persist nothing, touched
        // lines coalesce).
        let first = *staged_heads.keys().next().expect("non-empty staged set");
        let last = *staged_heads
            .keys()
            .next_back()
            .expect("non-empty staged set");
        self.pmem
            .flush(POffset::new(first), (last - first + 8) as usize)?;

        // Phase 5 — bump and persist the flush epoch.
        let epoch = self.pmem.read_u64(self.base + OFF_FLUSH_EPOCH)?;
        self.pmem
            .write_u64(self.base + OFF_FLUSH_EPOCH, epoch + 1)?;
        self.pmem.flush(self.base + OFF_FLUSH_EPOCH, 8)?;
        Ok(outcomes)
    }

    /// Stores `value` under `key` as process `pid` with unique tag
    /// `seq`, inserting or overwriting. Returns `false` if the version
    /// log's lifetime capacity is exhausted (the store is then
    /// read-only).
    ///
    /// # Errors
    ///
    /// A propagated crash (complete with [`PKvStore::recover_put`]
    /// after restart).
    pub fn put(&self, pid: u64, seq: u64, key: u64, value: i64) -> Result<bool, PError> {
        match self.apply_one(KvBatchOp::Put {
            pid,
            seq,
            key,
            value,
        })? {
            KvApplied::Applied => Ok(true),
            KvApplied::LogFull => Ok(false),
            KvApplied::PrecondFailed => unreachable!("put has no precondition"),
        }
    }

    /// Reads the current value of `key`.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn get(&self, key: u64) -> Result<Option<i64>, PError> {
        let head = self.pmem.read_u64(self.bucket_off(key))?;
        self.lookup_from(head, key)
    }

    /// Removes `key` as process `pid` with unique tag `seq`. Returns
    /// `true` if the key was present (and is now removed), `false` if
    /// it was absent or the log is full.
    ///
    /// # Errors
    ///
    /// A propagated crash (complete with [`PKvStore::recover_delete`]
    /// after restart).
    pub fn delete(&self, pid: u64, seq: u64, key: u64) -> Result<bool, PError> {
        Ok(self
            .apply_one(KvBatchOp::Delete { pid, seq, key })?
            .took_effect())
    }

    /// Replaces `key`'s value with `new` iff it currently equals
    /// `expected`, as process `pid` with unique tag `seq`. Returns
    /// `false` if the current value differs (or the key is absent, or
    /// the log is full).
    ///
    /// # Errors
    ///
    /// A propagated crash (complete with [`PKvStore::recover_cas`]
    /// after restart).
    pub fn cas(
        &self,
        pid: u64,
        seq: u64,
        key: u64,
        expected: i64,
        new: i64,
    ) -> Result<bool, PError> {
        Ok(self
            .apply_one(KvBatchOp::Cas {
                pid,
                seq,
                key,
                expected,
                new,
            })?
            .took_effect())
    }

    /// Searches `key`'s published chain for the record tagged
    /// `(pid, seq)` — the evidence scan of the NSRL recovery duals.
    fn find_tag(&self, key: u64, pid: u64, seq: u64) -> Result<Option<VersionRecord>, PError> {
        let mut off = self.pmem.read_u64(self.bucket_off(key))?;
        while off != 0 {
            let (rec, next) = self.read_record(off)?;
            if rec.pid == pid && rec.seq == seq {
                return Ok(Some(rec));
            }
            off = next;
        }
        Ok(None)
    }

    /// Completes an interrupted `put(pid, seq, key, value)`: the
    /// operation linearized iff a published record carries its tag;
    /// only then is re-execution skipped.
    ///
    /// # Errors
    ///
    /// A propagated crash; recovery is then re-run after restart.
    pub fn recover_put(&self, pid: u64, seq: u64, key: u64, value: i64) -> Result<bool, PError> {
        if self.variant == KvVariant::Nsrl && self.find_tag(key, pid, seq)?.is_some() {
            return Ok(true);
        }
        self.put(pid, seq, key, value)
    }

    /// Completes an interrupted `delete(pid, seq, key)`.
    ///
    /// A delete that observed an absent key and crashed before
    /// reporting leaves no evidence — recovery re-executes it, which is
    /// correct because an answer that was never persisted is
    /// indistinguishable from the operation not having run (the same
    /// argument the recoverable queue makes for empty dequeues).
    ///
    /// # Errors
    ///
    /// A propagated crash; recovery is then re-run after restart.
    pub fn recover_delete(&self, pid: u64, seq: u64, key: u64) -> Result<bool, PError> {
        if self.variant == KvVariant::Nsrl && self.find_tag(key, pid, seq)?.is_some() {
            return Ok(true);
        }
        self.delete(pid, seq, key)
    }

    /// Completes an interrupted `cas(pid, seq, key, expected, new)`. A
    /// successful CAS left a tagged record; a failed one left no effect
    /// and is safely re-executed.
    ///
    /// # Errors
    ///
    /// A propagated crash; recovery is then re-run after restart.
    pub fn recover_cas(
        &self,
        pid: u64,
        seq: u64,
        key: u64,
        expected: i64,
        new: i64,
    ) -> Result<bool, PError> {
        if self.variant == KvVariant::Nsrl && self.find_tag(key, pid, seq)?.is_some() {
            return Ok(true);
        }
        self.cas(pid, seq, key, expected, new)
    }

    /// The batched recovery dual of [`PKvStore::apply_batch`]: runs the
    /// evidence scan for every op first (an op whose tagged record
    /// already published answers `Applied` without re-executing), then
    /// re-executes the remainder through **one** group commit.
    /// Equivalent to running each op's recovery dual in submission
    /// order — a re-execution publishes only its own tag, so it cannot
    /// create or destroy another pending op's evidence — but it pays
    /// the batch's persist economy, so recovery traffic runs inside
    /// real batch windows too (which is what lets a crash campaign
    /// kill *recovery* mid-batch and still converge).
    ///
    /// Under [`KvVariant::NoScan`] the scans are skipped and every op
    /// re-executes — the injected §5.2-style bug, preserved here so
    /// batched recovery stays subject to the same negative control.
    ///
    /// # Errors
    ///
    /// A propagated crash; re-run after restart.
    pub fn recover_batch(&self, ops: &[KvBatchOp]) -> Result<Vec<KvApplied>, PError> {
        let mut outcomes = vec![KvApplied::PrecondFailed; ops.len()];
        let mut rest = Vec::new();
        let mut rest_idx = Vec::new();
        for (i, &op) in ops.iter().enumerate() {
            let (pid, seq) = op.tag();
            if self.variant == KvVariant::Nsrl && self.find_tag(op.key(), pid, seq)?.is_some() {
                outcomes[i] = KvApplied::Applied;
            } else {
                rest.push(op);
                rest_idx.push(i);
            }
        }
        for (i, outcome) in rest_idx.into_iter().zip(self.apply_batch(&rest)?) {
            outcomes[i] = outcome;
        }
        Ok(outcomes)
    }

    /// One bucket's published chain, oldest record first.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    ///
    /// # Panics
    ///
    /// Panics if `bucket >= nbuckets`.
    pub fn chain(&self, bucket: u64) -> Result<Vec<VersionRecord>, PError> {
        assert!(
            bucket < self.nbuckets,
            "bucket {bucket} out of range ({} buckets)",
            self.nbuckets
        );
        let mut off = self.pmem.read_u64(self.base + (HEADER_LEN + bucket * 8))?;
        let mut out = Vec::new();
        while off != 0 {
            let (rec, next) = self.read_record(off)?;
            out.push(rec);
            off = next;
        }
        out.reverse();
        Ok(out)
    }

    /// Every bucket's published chain (oldest first), in bucket order —
    /// the linearization witness the KV verifier checks answers
    /// against.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn snapshot(&self) -> Result<Vec<Vec<VersionRecord>>, PError> {
        (0..self.nbuckets).map(|b| self.chain(b)).collect()
    }

    /// The store's current contents as an ordinary map.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn contents(&self) -> Result<BTreeMap<u64, i64>, PError> {
        let mut out = BTreeMap::new();
        for chain in self.snapshot()? {
            for rec in chain {
                if rec.is_delete {
                    out.remove(&rec.key);
                } else {
                    out.insert(rec.key, rec.value);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_nvram::{FailPlan, PMemBuilder};

    fn fixture(nbuckets: u64, log_cap: u64) -> (PMem, PHeap, PKvStore) {
        let pmem = PMemBuilder::new()
            .len(1 << 19)
            .eager_flush(true)
            .build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 19).unwrap();
        let kv = PKvStore::format(pmem.clone(), &heap, nbuckets, log_cap, KvVariant::Nsrl).unwrap();
        (pmem, heap, kv)
    }

    #[test]
    fn put_get_delete_cas_semantics() {
        let (_, _, kv) = fixture(8, 64);
        assert_eq!(kv.get(1).unwrap(), None);
        assert!(kv.put(0, 1, 1, 100).unwrap());
        assert!(kv.put(0, 2, 2, 200).unwrap());
        assert_eq!(kv.get(1).unwrap(), Some(100));
        assert!(kv.put(0, 3, 1, 101).unwrap(), "overwrite succeeds");
        assert_eq!(kv.get(1).unwrap(), Some(101));
        assert!(!kv.cas(0, 4, 1, 100, 999).unwrap(), "stale expected fails");
        assert!(kv.cas(0, 5, 1, 101, 102).unwrap());
        assert_eq!(kv.get(1).unwrap(), Some(102));
        assert!(!kv.cas(0, 6, 99, 0, 1).unwrap(), "absent key fails cas");
        assert!(kv.delete(0, 7, 1).unwrap());
        assert_eq!(kv.get(1).unwrap(), None);
        assert!(!kv.delete(0, 8, 1).unwrap(), "double delete reports absent");
        assert!(!kv.cas(0, 9, 1, 102, 103).unwrap(), "deleted key fails cas");
        assert_eq!(kv.get(2).unwrap(), Some(200));
    }

    #[test]
    fn put_after_delete_reinserts() {
        let (_, _, kv) = fixture(4, 32);
        kv.put(0, 1, 5, 50).unwrap();
        kv.delete(0, 2, 5).unwrap();
        assert!(kv.put(0, 3, 5, 51).unwrap());
        assert_eq!(kv.get(5).unwrap(), Some(51));
    }

    #[test]
    fn log_capacity_is_lifetime_bounded() {
        let (_, _, kv) = fixture(2, 3);
        assert!(kv.put(0, 1, 1, 1).unwrap());
        assert!(kv.put(0, 2, 2, 2).unwrap());
        assert!(kv.put(0, 3, 3, 3).unwrap());
        assert!(!kv.put(0, 4, 4, 4).unwrap(), "log exhausted");
        // Deletes and cas also need log slots.
        assert!(!kv.delete(0, 5, 1).unwrap());
        assert!(!kv.cas(0, 6, 1, 1, 9).unwrap());
        // Reads still work.
        assert_eq!(kv.get(2).unwrap(), Some(2));
        assert_eq!(kv.log_reserved().unwrap(), 3);
    }

    fn buffered_fixture(nbuckets: u64, log_cap: u64) -> (PMem, PHeap, PKvStore) {
        let pmem = PMemBuilder::new().len(1 << 19).build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 19).unwrap();
        let kv = PKvStore::format(pmem.clone(), &heap, nbuckets, log_cap, KvVariant::Nsrl).unwrap();
        (pmem, heap, kv)
    }

    #[test]
    fn buffered_region_yields_a_batched_store() {
        let (pmem, _, kv) = buffered_fixture(8, 64);
        assert!(!kv.is_eager());
        assert!(kv.put(0, 1, 7, 70).unwrap());
        assert!(kv.cas(0, 2, 7, 70, 71).unwrap());
        assert_eq!(kv.get(7).unwrap(), Some(71));
        // Every per-op mutation is a singleton group commit: all of its
        // effects are durable before it returns.
        pmem.crash_now(0, 0.0);
        let pmem2 = pmem.reopen().unwrap();
        let kv2 = PKvStore::open(pmem2, kv.base(), KvVariant::Nsrl).unwrap();
        assert_eq!(kv2.get(7).unwrap(), Some(71));
        assert_eq!(kv2.log_reserved().unwrap(), 2);
        assert_eq!(kv2.flush_epoch().unwrap(), 2, "one epoch per commit");
    }

    #[test]
    fn batch_sees_its_own_staged_effects() {
        let (_, _, kv) = buffered_fixture(4, 64);
        let out = kv
            .apply_batch(&[
                KvBatchOp::Put {
                    pid: 0,
                    seq: 1,
                    key: 1,
                    value: 10,
                },
                KvBatchOp::Cas {
                    pid: 0,
                    seq: 2,
                    key: 1,
                    expected: 10,
                    new: 11,
                },
                KvBatchOp::Delete {
                    pid: 0,
                    seq: 3,
                    key: 1,
                },
                KvBatchOp::Put {
                    pid: 0,
                    seq: 4,
                    key: 1,
                    value: 12,
                },
                KvBatchOp::Cas {
                    pid: 0,
                    seq: 5,
                    key: 9,
                    expected: 0,
                    new: 1,
                },
                KvBatchOp::Delete {
                    pid: 0,
                    seq: 6,
                    key: 9,
                },
            ])
            .unwrap();
        assert_eq!(
            out,
            vec![
                KvApplied::Applied,
                KvApplied::Applied,
                KvApplied::Applied,
                KvApplied::Applied,
                KvApplied::PrecondFailed,
                KvApplied::PrecondFailed,
            ]
        );
        assert_eq!(kv.get(1).unwrap(), Some(12));
        assert_eq!(kv.get(9).unwrap(), None);
        assert_eq!(kv.flush_epoch().unwrap(), 1, "one commit for the batch");
    }

    #[test]
    fn empty_and_no_effect_batches_skip_the_flush_protocol() {
        let (pmem, _, kv) = buffered_fixture(4, 64);
        kv.put(0, 1, 5, 50).unwrap();
        let before = pmem.stats().snapshot();
        assert!(kv.apply_batch(&[]).unwrap().is_empty());
        let out = kv
            .apply_batch(&[KvBatchOp::Delete {
                pid: 0,
                seq: 2,
                key: 99,
            }])
            .unwrap();
        assert_eq!(out, vec![KvApplied::PrecondFailed]);
        let delta = pmem.stats().snapshot() - before;
        assert_eq!(delta.persists, 0, "nothing staged, nothing persisted");
        assert_eq!(kv.flush_epoch().unwrap(), 1, "no epoch for empty commits");
    }

    #[test]
    fn group_commit_coalesces_persists() {
        // The batching headline: k mutations in one batch cost far
        // fewer persist round-trips than k singleton commits.
        let (batched_pmem, _, batched) = buffered_fixture(4, 64);
        let (per_op_pmem, _, per_op) = buffered_fixture(4, 64);
        let ops: Vec<KvBatchOp> = (0..16)
            .map(|i| KvBatchOp::Put {
                pid: 0,
                seq: i + 1,
                key: i,
                value: i as i64,
            })
            .collect();

        let before = batched_pmem.stats().snapshot();
        assert!(batched
            .apply_batch(&ops)
            .unwrap()
            .iter()
            .all(|o| o.took_effect()));
        let batched_delta = batched_pmem.stats().snapshot() - before;

        let before = per_op_pmem.stats().snapshot();
        for &op in &ops {
            assert!(per_op.apply_batch(&[op]).unwrap()[0].took_effect());
        }
        let per_op_delta = per_op_pmem.stats().snapshot() - before;

        assert_eq!(batched.contents().unwrap(), per_op.contents().unwrap());
        assert!(
            batched_delta.persists * 3 <= per_op_delta.persists,
            "batched {} vs per-op {} persist round-trips",
            batched_delta.persists,
            per_op_delta.persists,
        );
        assert!(
            batched_delta.coalesced_lines > 0,
            "record persists must coalesce: {batched_delta:?}"
        );
    }

    #[test]
    fn log_full_mid_batch_reports_per_op() {
        let (_, _, kv) = buffered_fixture(2, 2);
        let ops: Vec<KvBatchOp> = (0..4)
            .map(|i| KvBatchOp::Put {
                pid: 0,
                seq: i + 1,
                key: i,
                value: 1,
            })
            .collect();
        let out = kv.apply_batch(&ops).unwrap();
        assert_eq!(
            out,
            vec![
                KvApplied::Applied,
                KvApplied::Applied,
                KvApplied::LogFull,
                KvApplied::LogFull,
            ]
        );
        assert_eq!(kv.contents().unwrap().len(), 2);
    }

    #[test]
    fn batch_crash_points_leave_no_lost_or_torn_heads() {
        // The group-commit publish path, exhaustively: crash at every
        // persistence event inside a batch window. After recovery the
        // published state must be per-bucket all-or-nothing (no torn
        // heads), and the recovery duals must complete every op exactly
        // once.
        let ops = [
            KvBatchOp::Put {
                pid: 1,
                seq: 1,
                key: 0,
                value: 10,
            },
            KvBatchOp::Put {
                pid: 1,
                seq: 2,
                key: 2,
                value: 20,
            },
            // Same bucket pressure: nbuckets = 2, so keys collide and
            // chain within the batch.
            KvBatchOp::Put {
                pid: 1,
                seq: 3,
                key: 4,
                value: 40,
            },
            KvBatchOp::Cas {
                pid: 1,
                seq: 4,
                key: 0,
                expected: 10,
                new: 11,
            },
            KvBatchOp::Delete {
                pid: 1,
                seq: 5,
                key: 2,
            },
        ];
        let probe = || {
            let pmem = PMemBuilder::new().len(1 << 16).build_in_memory();
            let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 16).unwrap();
            let kv = PKvStore::format(pmem.clone(), &heap, 2, 16, KvVariant::Nsrl).unwrap();
            (pmem, kv)
        };
        let (pmem, kv) = probe();
        let e0 = pmem.events();
        let out = kv.apply_batch(&ops).unwrap();
        assert!(out.iter().all(|o| o.took_effect()));
        let total = pmem.events() - e0;
        let want = kv.contents().unwrap();
        assert!(total > 8, "the batch window spans many flush boundaries");

        for k in 0..total {
            let (pmem, kv) = probe();
            pmem.arm_failpoint(FailPlan::after_events(k));
            let err = kv.apply_batch(&ops).unwrap_err();
            assert!(err.is_crash(), "crash at event {k}");
            let pmem2 = pmem.reopen().unwrap();
            let kv2 = PKvStore::open(pmem2, kv.base(), KvVariant::Nsrl).unwrap();

            // No torn state: every published record decodes, every
            // chain walks, and published tags are unique.
            let mut tags = std::collections::HashSet::new();
            for chain in kv2.snapshot().unwrap() {
                for rec in chain {
                    assert!(tags.insert((rec.pid, rec.seq)), "crash at {k}: dup tag");
                }
            }
            // Per-bucket all-or-nothing: a bucket publishes either none
            // or all of its batch records (one head flip per bucket).
            for bucket in 0..2 {
                let batch_recs = kv2
                    .chain(bucket)
                    .unwrap()
                    .iter()
                    .filter(|r| r.pid == 1)
                    .count();
                let full = ops.iter().filter(|op| mix(op.key()) % 2 == bucket).count();
                assert!(
                    batch_recs == 0 || batch_recs == full,
                    "crash at {k}: bucket {bucket} published {batch_recs}/{full} — torn batch"
                );
            }

            // Recovery duals complete the batch exactly once.
            assert!(kv2.recover_put(1, 1, 0, 10).unwrap());
            assert!(kv2.recover_put(1, 2, 2, 20).unwrap());
            assert!(kv2.recover_put(1, 3, 4, 40).unwrap());
            assert!(kv2.recover_cas(1, 4, 0, 10, 11).unwrap());
            assert!(kv2.recover_delete(1, 5, 2).unwrap());
            assert_eq!(kv2.contents().unwrap(), want, "crash at event {k}");
            let published: usize = kv2.snapshot().unwrap().iter().map(Vec::len).sum();
            assert_eq!(published, ops.len(), "crash at {k}: duplicate application");
        }
    }

    #[test]
    fn independently_opened_handles_serialize_group_commits() {
        // The batch lock is region-scoped, not handle-scoped: a second
        // handle from PKvStore::open (not a clone) must serialize with
        // the first, or concurrent commits would race the publish CAS.
        let (pmem, _, kv) = buffered_fixture(4, 4096);
        let kv2 = PKvStore::open(pmem.clone(), kv.base(), KvVariant::Nsrl).unwrap();
        let per = 256u64;
        std::thread::scope(|s| {
            for (w, handle) in [kv.clone(), kv2].into_iter().enumerate() {
                s.spawn(move || {
                    let w = w as u64;
                    let ops: Vec<KvBatchOp> = (0..per)
                        .map(|i| KvBatchOp::Put {
                            pid: w,
                            seq: i + 1,
                            key: w * per + i,
                            value: i as i64,
                        })
                        .collect();
                    for chunk in ops.chunks(16) {
                        assert!(handle
                            .apply_batch(chunk)
                            .unwrap()
                            .iter()
                            .all(|o| o.took_effect()));
                    }
                });
            }
        });
        assert_eq!(kv.contents().unwrap().len(), 2 * per as usize);
        assert_eq!(kv.log_reserved().unwrap(), 2 * per);
    }

    #[test]
    fn recover_batch_completes_exactly_once_and_is_idempotent() {
        let (_, _, kv) = buffered_fixture(4, 64);
        assert!(kv.put(1, 1, 10, 100).unwrap());
        let ops = [
            // Linearized before the "crash": evidence skips it.
            KvBatchOp::Put {
                pid: 1,
                seq: 1,
                key: 10,
                value: 100,
            },
            // Never ran: re-executed through the group commit.
            KvBatchOp::Put {
                pid: 1,
                seq: 2,
                key: 11,
                value: 110,
            },
            // No evidence and no key: re-executes to a clean no-effect.
            KvBatchOp::Delete {
                pid: 1,
                seq: 3,
                key: 99,
            },
        ];
        for round in 0..2 {
            let out = kv.recover_batch(&ops).unwrap();
            assert_eq!(
                out,
                vec![
                    KvApplied::Applied,
                    KvApplied::Applied,
                    KvApplied::PrecondFailed,
                ],
                "recovery round {round}"
            );
            let published: usize = kv.snapshot().unwrap().iter().map(Vec::len).sum();
            assert_eq!(published, 2, "recovery round {round}: no duplicates");
        }
        assert_eq!(kv.get(11).unwrap(), Some(110));
    }

    #[test]
    fn recover_batch_noscan_double_applies() {
        let pmem = PMemBuilder::new().len(1 << 18).build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 18).unwrap();
        let kv = PKvStore::format(pmem, &heap, 4, 32, KvVariant::NoScan).unwrap();
        assert!(kv.put(0, 1, 1, 10).unwrap());
        let out = kv
            .recover_batch(&[KvBatchOp::Put {
                pid: 0,
                seq: 1,
                key: 1,
                value: 10,
            }])
            .unwrap();
        assert_eq!(out, vec![KvApplied::Applied]);
        let published: usize = kv.snapshot().unwrap().iter().map(Vec::len).sum();
        assert_eq!(published, 2, "no-scan batched recovery must re-execute");
    }

    #[test]
    fn flush_epoch_counts_only_durable_batches() {
        let (pmem, _, kv) = buffered_fixture(4, 64);
        for s in 0..3 {
            kv.apply_batch(&[KvBatchOp::Put {
                pid: 0,
                seq: s + 1,
                key: s,
                value: 1,
            }])
            .unwrap();
        }
        assert_eq!(kv.flush_epoch().unwrap(), 3);
        pmem.crash_now(0, 0.0);
        let pmem2 = pmem.reopen().unwrap();
        let kv2 = PKvStore::open(pmem2, kv.base(), KvVariant::Nsrl).unwrap();
        assert_eq!(kv2.flush_epoch().unwrap(), 3, "epoch bump is persisted");
    }

    #[test]
    fn open_round_trips_and_rejects_garbage() {
        let (pmem, heap, kv) = fixture(8, 32);
        kv.put(1, 1, 42, -7).unwrap();
        let kv2 = PKvStore::open(pmem.clone(), kv.base(), KvVariant::Nsrl).unwrap();
        assert_eq!(kv2.nbuckets(), 8);
        assert_eq!(kv2.log_capacity(), 32);
        assert_eq!(kv2.get(42).unwrap(), Some(-7));
        let junk = heap.alloc_zeroed(128).unwrap();
        assert!(matches!(
            PKvStore::open(pmem, junk, KvVariant::Nsrl),
            Err(PError::CorruptStack(_))
        ));
    }

    #[test]
    fn contents_and_chains_reflect_history() {
        let (_, _, kv) = fixture(4, 64);
        kv.put(0, 1, 10, 1).unwrap();
        kv.put(0, 2, 11, 2).unwrap();
        kv.put(0, 3, 10, 3).unwrap();
        kv.delete(0, 4, 11).unwrap();
        let contents = kv.contents().unwrap();
        assert_eq!(contents.get(&10), Some(&3));
        assert_eq!(contents.get(&11), None);
        let total: usize = kv.snapshot().unwrap().iter().map(Vec::len).sum();
        assert_eq!(total, 4, "every published mutation appears exactly once");
        // The delete record carries the removed value.
        let del = kv
            .snapshot()
            .unwrap()
            .into_iter()
            .flatten()
            .find(|r| r.is_delete)
            .unwrap();
        assert_eq!(del.key, 11);
        assert_eq!(del.value, 2);
    }

    #[test]
    fn state_survives_crash_and_reopen() {
        let (pmem, _, kv) = fixture(8, 64);
        kv.put(0, 1, 7, 70).unwrap();
        kv.put(0, 2, 8, 80).unwrap();
        kv.delete(0, 3, 8).unwrap();
        pmem.crash_now(0, 0.0); // eager region: nothing volatile to lose
        let pmem2 = pmem.reopen().unwrap();
        let kv2 = PKvStore::open(pmem2, kv.base(), KvVariant::Nsrl).unwrap();
        assert_eq!(kv2.get(7).unwrap(), Some(70));
        assert_eq!(kv2.get(8).unwrap(), None);
    }

    #[test]
    fn recovery_sees_linearized_ops() {
        let (_, _, kv) = fixture(8, 64);
        assert!(kv.put(3, 9, 1, 11).unwrap());
        assert!(kv.recover_put(3, 9, 1, 11).unwrap());
        assert_eq!(kv.log_reserved().unwrap(), 1, "no second application");
        assert!(kv.cas(2, 10, 1, 11, 12).unwrap());
        assert!(kv.recover_cas(2, 10, 1, 11, 12).unwrap());
        assert!(kv.delete(1, 11, 1).unwrap());
        assert!(kv.recover_delete(1, 11, 1).unwrap());
        assert_eq!(kv.log_reserved().unwrap(), 3);
        assert_eq!(kv.get(1).unwrap(), None);
    }

    #[test]
    fn recovery_reexecutes_unlinearized_ops() {
        let (_, _, kv) = fixture(8, 64);
        assert!(kv.recover_put(0, 1, 5, 55).unwrap());
        assert_eq!(kv.get(5).unwrap(), Some(55));
        assert!(kv.recover_delete(0, 2, 5).unwrap());
        assert_eq!(kv.get(5).unwrap(), None);
        assert!(!kv.recover_cas(0, 3, 5, 55, 56).unwrap());
    }

    #[test]
    fn noscan_variant_double_applies() {
        let pmem = PMemBuilder::new()
            .len(1 << 18)
            .eager_flush(true)
            .build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 18).unwrap();
        let kv = PKvStore::format(pmem, &heap, 4, 32, KvVariant::NoScan).unwrap();
        assert!(kv.put(0, 1, 1, 10).unwrap());
        assert!(kv.recover_put(0, 1, 1, 10).unwrap());
        let records: Vec<VersionRecord> = kv.snapshot().unwrap().into_iter().flatten().collect();
        assert_eq!(records.len(), 2, "double application must be visible");
        assert_eq!(records[0].seq, records[1].seq);
    }

    #[test]
    fn crash_point_enumeration_put_recovers_exactly_once() {
        let probe = || fixture(4, 16);
        let (pmem, _, kv) = probe();
        let e0 = pmem.events();
        assert!(kv.put(0, 1, 7, 77).unwrap());
        let total = pmem.events() - e0;
        assert!(total >= 2, "reserve CAS + record write + head CAS");

        for k in 0..total {
            let (pmem, _, kv) = probe();
            pmem.arm_failpoint(FailPlan::after_events(k));
            let err = kv.put(0, 1, 7, 77).unwrap_err();
            assert!(err.is_crash());
            let pmem2 = pmem.reopen().unwrap();
            let kv2 = PKvStore::open(pmem2, kv.base(), KvVariant::Nsrl).unwrap();
            assert!(kv2.recover_put(0, 1, 7, 77).unwrap(), "crash at event {k}");
            assert_eq!(kv2.get(7).unwrap(), Some(77), "crash at event {k}");
            let published: usize = kv2.snapshot().unwrap().iter().map(Vec::len).sum();
            assert_eq!(published, 1, "crash at event {k}: exactly one record");
        }
    }

    #[test]
    fn crash_point_enumeration_delete_recovers_exactly_once() {
        let probe = || {
            let (pmem, heap, kv) = fixture(4, 16);
            kv.put(0, 1, 7, 77).unwrap();
            (pmem, heap, kv)
        };
        let (pmem, _, kv) = probe();
        let e0 = pmem.events();
        assert!(kv.delete(1, 2, 7).unwrap());
        let total = pmem.events() - e0;

        for k in 0..total {
            let (pmem, _, kv) = probe();
            pmem.arm_failpoint(FailPlan::after_events(k));
            let err = kv.delete(1, 2, 7).unwrap_err();
            assert!(err.is_crash());
            let pmem2 = pmem.reopen().unwrap();
            let kv2 = PKvStore::open(pmem2, kv.base(), KvVariant::Nsrl).unwrap();
            assert!(kv2.recover_delete(1, 2, 7).unwrap(), "crash at event {k}");
            assert_eq!(kv2.get(7).unwrap(), None, "crash at event {k}");
            let published: usize = kv2.snapshot().unwrap().iter().map(Vec::len).sum();
            assert_eq!(published, 2, "crash at event {k}: put + delete records");
        }
    }

    #[test]
    fn crash_point_enumeration_cas_recovers_exactly_once() {
        let probe = || {
            let (pmem, heap, kv) = fixture(4, 16);
            kv.put(0, 1, 7, 77).unwrap();
            (pmem, heap, kv)
        };
        let (pmem, _, kv) = probe();
        let e0 = pmem.events();
        assert!(kv.cas(1, 2, 7, 77, 78).unwrap());
        let total = pmem.events() - e0;

        for k in 0..total {
            let (pmem, _, kv) = probe();
            pmem.arm_failpoint(FailPlan::after_events(k));
            let err = kv.cas(1, 2, 7, 77, 78).unwrap_err();
            assert!(err.is_crash());
            let pmem2 = pmem.reopen().unwrap();
            let kv2 = PKvStore::open(pmem2, kv.base(), KvVariant::Nsrl).unwrap();
            assert!(
                kv2.recover_cas(1, 2, 7, 77, 78).unwrap(),
                "crash at event {k}"
            );
            assert_eq!(kv2.get(7).unwrap(), Some(78), "crash at event {k}");
            let published: usize = kv2.snapshot().unwrap().iter().map(Vec::len).sum();
            assert_eq!(published, 2, "crash at event {k}: no double application");
        }
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        let (_, _, kv) = fixture(16, 1024);
        let writers = 4u64;
        let per = 64u64;
        std::thread::scope(|s| {
            for w in 0..writers {
                let kv = kv.clone();
                s.spawn(move || {
                    for i in 0..per {
                        let key = w * per + i;
                        assert!(kv.put(w, i + 1, key, key as i64).unwrap());
                    }
                });
            }
        });
        let contents = kv.contents().unwrap();
        assert_eq!(contents.len(), (writers * per) as usize);
        for (k, v) in contents {
            assert_eq!(k as i64, v);
        }
    }

    #[test]
    fn concurrent_cas_on_one_key_applies_each_transition_once() {
        // Four threads increment one key via cas-retry loops; the final
        // value counts every success exactly once.
        let (_, _, kv) = fixture(4, 4096);
        kv.put(0, 1, 0, 0).unwrap();
        let per = 50i64;
        std::thread::scope(|s| {
            for w in 0..4u64 {
                let kv = kv.clone();
                s.spawn(move || {
                    let mut seq = 1_000 * (w + 1);
                    for _ in 0..per {
                        loop {
                            seq += 1;
                            let cur = kv.get(0).unwrap().unwrap();
                            if kv.cas(w, seq, 0, cur, cur + 1).unwrap() {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(kv.get(0).unwrap(), Some(4 * per));
    }

    #[test]
    fn required_len_covers_layout() {
        let need = PKvStore::required_len(16, 8);
        assert_eq!(need as u64, round64(64 + 16 * 8) + 8 * 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn chain_bounds_are_enforced() {
        let (_, _, kv) = fixture(2, 8);
        let _ = kv.chain(2);
    }

    #[test]
    fn variant_codec_round_trips() {
        for v in [KvVariant::Nsrl, KvVariant::NoScan] {
            assert_eq!(KvVariant::from_u8(v.as_u8()).unwrap(), v);
        }
        assert!(KvVariant::from_u8(9).is_err());
    }
}
