//! The persistent hash-indexed key-value store, with a **generational**
//! version log.
//!
//! See the crate-level documentation for the design rationale. The
//! store is rooted at a small fixed block whose generation pointer (a
//! [`RootCell`]) names the active generation; each generation is a
//! self-contained bucket-array + version-log block:
//!
//! ```text
//! root (128 B):  magic, bucket count, flush epoch,
//!                RootCell (seq = generation number, ptr = block base)
//!
//! generation block (heap-allocated, 64-aligned):
//!   header (64 B): magic, number, log capacity, log tail,
//!                  prev-generation base, state, carried count
//!   buckets:       nbuckets × 8 B — absolute offset of the newest
//!                                   record of each chain (0 = empty)
//!   version log:   log_cap × 64 B — immutable records, 64-aligned
//! ```
//!
//! A record occupies the first 48 bytes of its 64-byte slot:
//!
//! ```text
//! 0      kind   (0 = unpublished, 1 = PUT, 2 = DELETE,
//!                3 = carried PUT — a compaction copy of a live record)
//! 8..16  key
//! 16..24 value  (the stored value; for DELETE, the value removed)
//! 24..32 pid    (writer's process id)
//! 32..40 seq    (writer's operation tag)
//! 40..48 next   (offset of the chain's previous record, 0 = end)
//! ```
//!
//! Records become visible only through the bucket-head publish, after
//! every field is durable, so no crash moment can expose a torn
//! record. Reserved-but-unpublished slots are orphans: invisible to
//! lookups, scans and the verifier alike.
//!
//! # Compaction: the generational log
//!
//! A generation's log is append-only and lifetime-bounded (the
//! recoverable-queue trade: records are evidence, so they are never
//! recycled in place). [`PKvStore::compact`] lifts the lifetime bound
//! without touching that argument: it rewrites the **live** bucket
//! heads — the newest non-delete record of each key, O(live keys)
//! persists, not O(history) — into a freshly allocated generation
//! block as `carried` records (kind 3, original `(pid, seq)` tags
//! preserved), persists the block with one coalesced flush, and then
//! commits with a single [`RootCell::swap`]. The selector flip is the
//! *only* commit point: a crash anywhere before it recovers into the
//! old generation (the half-built block is an unreachable orphan); a
//! crash anywhere after it recovers into the new one. Old generations
//! are retained, marked retired, and chained via their `prev` pointer:
//!
//! * recovery evidence scans ([`PKvStore::recover_put`] & friends)
//!   walk the key's chain **across generations**, so an operation that
//!   published before a compaction is never re-executed after one —
//!   and a carried record is itself evidence (it is a copy of the
//!   original published record, tag included);
//! * [`PKvStore::chain`]/[`PKvStore::snapshot`] return the full
//!   multi-generation witness (oldest generation first), which is what
//!   `pstack-verify`'s generation-aware checkers validate: carried
//!   records must reproduce exactly the live state at the boundary,
//!   and no live key may be dropped by a swap.
//!
//! Crash-recovering an *interrupted* compaction is an evidence scan
//! too ([`PKvStore::recover_compact`]): if the root cell already moved
//! past the starting generation, the compaction committed (recovery
//! just finishes the idempotent retirement mark); otherwise it is
//! safely re-executed from the current state.
//!
//! Compaction quiesces the region ([`PMem::quiesce`]): it waits out
//! every in-flight lock-free mutator and excludes group commits for
//! its duration, so the generation it rewrites cannot move under it.
//! The discipline is machine-checked — every mutation path registers
//! in the region's mutator gate, so a racing `compact` *blocks*
//! instead of corrupting, on eager and batched stores alike.
//!
//! [`RootCell`]: pstack_nvram::RootCell
//!
//! # Commit modes
//!
//! The durability discipline depends on the region:
//!
//! * **Eager** (`eager_flush` region, §5's cache-less NVRAM): every
//!   write is durable the moment it completes, so mutations are
//!   lock-free CAS-retry loops and nothing is ever explicitly flushed.
//! * **Batched** (buffered region): the store orders persists itself,
//!   through two concurrent-safe paths.
//!   Per-op mutations ([`PKvStore::put`] & friends) run **lock-free
//!   detectable publication**: reserve a log slot with a fetch-add
//!   style tail CAS, build the version record, persist it (and the
//!   tail), then publish by CASing it onto the bucket head directly —
//!   any number of mutators can run concurrently on one shard, and
//!   recovery detects a completed-but-unacked operation purely from
//!   the `(pid, seq)` evidence already in the log.
//!   [`PKvStore::apply_batch`] is the group-commit path: it quiesces
//!   the region, stages the records of a whole batch, makes them (and
//!   the log tail) durable with one coalesced persist, publishes each
//!   touched bucket's head once, persists the heads, and finally bumps
//!   the persistent **flush epoch** in the header.
//!   On both paths records are durable strictly before any head that
//!   can reach them, so a crash at *any* flush boundary leaves each
//!   bucket either entirely pre-batch or entirely post-batch — never a
//!   torn head — and the evidence-scan recovery argument carries over
//!   unchanged. (Shard-level parallelism additionally comes from
//!   striping stores across regions, see
//!   [`ShardedKvStore`](crate::ShardedKvStore).)
//!
//! [`PMem::quiesce`]: pstack_nvram::PMem::quiesce

use pstack_core::PError;
use pstack_heap::PHeap;
use pstack_nvram::{op_label, FlushTicket, MemError, PMem, POffset, QuiesceGuard, RootCell};
use std::collections::BTreeMap;

const KV_MAGIC: u64 = 0x5053_4B56_5354_4F32; // "PSKVSTO2" (generational)
const RECORD_STRIDE: u64 = 64;
const RECORD_LEN: usize = 48;

/// Root block: magic, bucket count, flush epoch, then the generation
/// pointer cell at [`OFF_GEN_CELL`].
const ROOT_LEN: u64 = 128;
const OFF_MAGIC: u64 = 0;
const OFF_NBUCKETS: u64 = 8;
const OFF_FLUSH_EPOCH: u64 = 16;
const OFF_GEN_CELL: u64 = 64;

/// Generation block header.
const GEN_MAGIC: u64 = 0x5053_4B56_4745_4E31; // "PSKVGEN1"
const GEN_HEADER_LEN: u64 = 64;
const GEN_OFF_MAGIC: u64 = 0;
const GEN_OFF_NUMBER: u64 = 8;
const GEN_OFF_LOG_CAP: u64 = 16;
const GEN_OFF_LOG_TAIL: u64 = 24;
const GEN_OFF_PREV: u64 = 32;
const GEN_OFF_STATE: u64 = 40;
const GEN_OFF_CARRIED: u64 = 48;

const GEN_STATE_ACTIVE: u64 = 1;
const GEN_STATE_RETIRED: u64 = 2;

const KIND_PUT: u8 = 1;
const KIND_DEL: u8 = 2;
/// A compaction carry-over: a copy of a live PUT (or effective CAS)
/// record, original tag preserved.
const KIND_CARRY: u8 = 3;

/// Which recovery procedure the store runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KvVariant {
    /// Correct NSRL recovery: scan the key's published chain for the
    /// interrupted operation's tag before re-executing.
    #[default]
    Nsrl,
    /// Injected bug mirroring §5.2's matrix removal: recovery skips the
    /// evidence scan and always re-executes — operations that already
    /// linearized are applied twice, which the KV verifier flags.
    NoScan,
    /// Injected persist-order bug: a group commit publishes its bucket
    /// heads *without* first persisting the staged records — the
    /// early-publish class PSan's shadow tracking flags at the head
    /// CAS. Recovery itself is correct (the scan still runs).
    EarlyPublish,
    /// Injected persist-order bug: compaction commits the root swap
    /// without the coalesced flush of the new generation block — the
    /// unordered-commit class PSan flags at the selector flip.
    /// Recovery itself is correct (the scan still runs).
    NoPersistBeforeSwap,
}

impl KvVariant {
    /// One-byte encoding for persistent configuration records.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        match self {
            KvVariant::Nsrl => 0,
            KvVariant::NoScan => 1,
            KvVariant::EarlyPublish => 2,
            KvVariant::NoPersistBeforeSwap => 3,
        }
    }

    /// Decodes [`KvVariant::as_u8`].
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] for unknown encodings.
    pub fn from_u8(v: u8) -> Result<Self, PError> {
        match v {
            0 => Ok(KvVariant::Nsrl),
            1 => Ok(KvVariant::NoScan),
            2 => Ok(KvVariant::EarlyPublish),
            3 => Ok(KvVariant::NoPersistBeforeSwap),
            other => Err(PError::InvalidConfig(format!(
                "unknown KV variant encoding {other}"
            ))),
        }
    }

    /// `true` when recovery runs the evidence scan before re-executing.
    /// Only [`KvVariant::NoScan`] skips it; the persist-order bug
    /// variants break durability ordering, not recovery.
    #[must_use]
    pub fn scans_evidence(self) -> bool {
        self != KvVariant::NoScan
    }
}

/// One published version record, decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionRecord {
    /// The key this record belongs to.
    pub key: u64,
    /// The value stored (for a delete: the value that was removed).
    pub value: i64,
    /// Writer's process id.
    pub pid: u64,
    /// Writer's operation tag.
    pub seq: u64,
    /// `true` for a DELETE record, `false` for a PUT record.
    pub is_delete: bool,
    /// `true` for a compaction carry-over (a copy of a live record made
    /// by [`PKvStore::compact`], original tag preserved) — not a new
    /// application of its operation.
    pub compacted: bool,
    /// The generation whose log holds this record.
    pub gen: u64,
}

/// The canonical bridge into the verifier's witness shape — every
/// harness that feeds `check_kv[_sharded][_gen]` maps snapshots
/// through this one conversion, so a new record field cannot be
/// silently dropped by one of them.
impl From<VersionRecord> for pstack_verify::KvWitnessRecord {
    fn from(r: VersionRecord) -> Self {
        pstack_verify::KvWitnessRecord {
            key: r.key,
            value: r.value,
            pid: r.pid,
            seq: r.seq,
            is_delete: r.is_delete,
            compacted: r.compacted,
            gen: r.gen,
        }
    }
}

/// One generation of the store, as reported by
/// [`PKvStore::generations`] (oldest first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenerationInfo {
    /// The generation number (0 = the generation `format` created).
    pub number: u64,
    /// The generation's log capacity in records.
    pub log_cap: u64,
    /// Log slots reserved in this generation (published plus orphans).
    pub reserved: u64,
    /// Carry-over records the compactor seeded this generation with.
    pub carried: u64,
    /// `true` once a later generation superseded this one.
    pub retired: bool,
}

/// What one [`PKvStore::compact`] run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// The generation that was compacted away.
    pub from_gen: u64,
    /// The freshly committed generation.
    pub to_gen: u64,
    /// Live records carried over (the compactor's persist bill is
    /// O(this), not O(history)).
    pub carried: u64,
    /// Old-generation log slots whose history the new generation does
    /// not repeat (superseded versions, deletes, orphans).
    pub dropped: u64,
    /// The new generation's log capacity.
    pub new_capacity: u64,
}

impl CompactionStats {
    /// Headroom the swap opened up: free slots in the new generation.
    #[must_use]
    pub fn headroom(&self) -> u64 {
        self.new_capacity - self.carried
    }
}

/// A loaded generation descriptor (volatile; re-read from the root
/// cell on every operation so handles never go stale across swaps).
#[derive(Debug, Clone, Copy)]
struct Gen {
    base: u64,
    number: u64,
    log_cap: u64,
}

/// Outcome of the internal append loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Append {
    /// The record was published.
    Applied,
    /// The precondition failed against the current chain state.
    PrecondFailed,
    /// The version log's lifetime capacity is exhausted.
    LogFull,
}

/// Per-op outcome of [`PKvStore::apply_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvApplied {
    /// The mutation took effect (its record is published).
    Applied,
    /// The precondition failed (absent key for a delete, mismatched
    /// expected value for a cas) — no effect, no record.
    PrecondFailed,
    /// The version log's lifetime capacity is exhausted — no effect.
    LogFull,
}

impl KvApplied {
    /// `true` for [`KvApplied::Applied`].
    #[must_use]
    pub fn took_effect(self) -> bool {
        matches!(self, KvApplied::Applied)
    }
}

impl From<Append> for KvApplied {
    fn from(a: Append) -> Self {
        match a {
            Append::Applied => KvApplied::Applied,
            Append::PrecondFailed => KvApplied::PrecondFailed,
            Append::LogFull => KvApplied::LogFull,
        }
    }
}

/// Precondition checked atomically with the publish CAS (the head CAS
/// fails if any other mutation intervened, so a passed check still
/// holds at the linearization point).
enum Precond {
    /// No precondition (plain put).
    None,
    /// The key must currently be present (delete).
    Exists,
    /// The key must currently hold exactly this value (cas).
    ValueIs(i64),
}

/// One mutation of a group-commit batch (see
/// [`PKvStore::apply_batch`]). Gets never need batching — they take no
/// log slot and persist nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvBatchOp {
    /// Store `value` under `key` (insert or overwrite).
    Put {
        /// Writer's process id.
        pid: u64,
        /// Writer's unique operation tag.
        seq: u64,
        /// The key.
        key: u64,
        /// The value to store.
        value: i64,
    },
    /// Remove `key`.
    Delete {
        /// Writer's process id.
        pid: u64,
        /// Writer's unique operation tag.
        seq: u64,
        /// The key.
        key: u64,
    },
    /// Replace `key`'s value with `new` iff it currently holds
    /// `expected`.
    Cas {
        /// Writer's process id.
        pid: u64,
        /// Writer's unique operation tag.
        seq: u64,
        /// The key.
        key: u64,
        /// The value the key must currently hold.
        expected: i64,
        /// The replacement value.
        new: i64,
    },
}

impl KvBatchOp {
    /// The key this mutation targets (what the shard router hashes).
    #[must_use]
    pub fn key(&self) -> u64 {
        match *self {
            KvBatchOp::Put { key, .. }
            | KvBatchOp::Delete { key, .. }
            | KvBatchOp::Cas { key, .. } => key,
        }
    }

    /// The writer's `(pid, seq)` tag.
    #[must_use]
    pub fn tag(&self) -> (u64, u64) {
        match *self {
            KvBatchOp::Put { pid, seq, .. }
            | KvBatchOp::Delete { pid, seq, .. }
            | KvBatchOp::Cas { pid, seq, .. } => (pid, seq),
        }
    }

    fn parts(&self) -> (u64, u64, u64, u8, i64, Precond) {
        match *self {
            KvBatchOp::Put {
                pid,
                seq,
                key,
                value,
            } => (pid, seq, key, KIND_PUT, value, Precond::None),
            KvBatchOp::Delete { pid, seq, key } => (pid, seq, key, KIND_DEL, 0, Precond::Exists),
            KvBatchOp::Cas {
                pid,
                seq,
                key,
                expected,
                new,
            } => (pid, seq, key, KIND_PUT, new, Precond::ValueIs(expected)),
        }
    }
}

/// A crash-recoverable hash-indexed map from `u64` keys to `i64`
/// values. Cheap to clone; all clones share the same store. See the
/// [module docs](self) for the persistent layout and the crate docs
/// for the recovery argument.
///
/// # Example
///
/// ```
/// use pstack_nvram::PMemBuilder;
/// use pstack_heap::PHeap;
/// use pstack_kv::{KvVariant, PKvStore};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pmem = PMemBuilder::new().len(1 << 18).eager_flush(true).build_in_memory();
/// let heap = PHeap::format(pmem.clone(), 0u64.into(), 1 << 18)?;
/// let kv = PKvStore::format(pmem, &heap, 16, 64, KvVariant::Nsrl)?;
/// assert!(kv.put(0, 1, 7, 700)?);
/// assert_eq!(kv.get(7)?, Some(700));
/// assert!(kv.cas(0, 2, 7, 700, 701)?);
/// assert!(kv.delete(0, 3, 7)?);
/// assert_eq!(kv.get(7)?, None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PKvStore {
    pmem: PMem,
    base: POffset,
    cell: RootCell,
    nbuckets: u64,
    variant: KvVariant,
    /// Commit mode, inferred from the region: `true` = eager (§5
    /// cache-less NVRAM, lock-free per-op CAS), `false` = batched (the
    /// store orders its own persists; per-op mutations run lock-free
    /// detectable publication, group commits quiesce the region —
    /// through the mutator gate shared by every handle on the region).
    eager: bool,
    /// Volatile knob ([`PKvStore::set_pipeline`]): `true` routes group
    /// commits and compaction through the asynchronous flush pipeline
    /// ([`PMem::flush_async`] tickets) so persist round-trips overlap.
    /// Off by default — the synchronous path is the measured baseline.
    pipeline: bool,
}

/// Phase-1 output of a group commit: records written (volatile), per
/// touched bucket the durable pre-batch head and the staged head to
/// publish, and the `[lo, hi]` slot span (`None` when nothing staged).
struct StagedBatch {
    outcomes: Vec<KvApplied>,
    pre_heads: BTreeMap<u64, u64>,
    staged_heads: BTreeMap<u64, u64>,
    slots: Option<(u64, u64)>,
}

/// A group commit staged by [`PKvStore::apply_batch_begin`] whose
/// record and log-tail persists are in flight as asynchronous flush
/// commands. Holds the region quiesced until committed or dropped;
/// nothing is visible (or recoverable) until [`KvPendingBatch::commit`]
/// awaits the flights and publishes the bucket heads.
#[must_use = "a pending batch publishes nothing until committed"]
pub struct KvPendingBatch<'a> {
    store: &'a PKvStore,
    /// `None` on an eager store (ops were applied per-op in `begin`).
    _quiesce: Option<QuiesceGuard<'a>>,
    outcomes: Vec<KvApplied>,
    pre_heads: BTreeMap<u64, u64>,
    staged_heads: BTreeMap<u64, u64>,
    slots: Option<(u64, u64)>,
    tickets: Vec<FlushTicket>,
}

impl KvPendingBatch<'_> {
    /// `true` when the batch staged at least one record, i.e. commit
    /// has persists in flight and heads to publish.
    #[must_use]
    pub fn is_staged(&self) -> bool {
        self.slots.is_some()
    }

    /// Awaits the in-flight persists and publishes the batch — phases
    /// 3–5 of [`PKvStore::apply_batch`]. Outcomes are reported in
    /// submission order, exactly as `apply_batch` would.
    ///
    /// # Errors
    ///
    /// A propagated crash (recover each op with its recovery dual
    /// after restart).
    pub fn commit(self) -> Result<Vec<KvApplied>, PError> {
        let store = self.store;
        let Some((lo, hi)) = self.slots else {
            return Ok(self.outcomes);
        };
        // Drain every flight before any head can reach its records:
        // both tickets ride overlapping round-trips, so this costs
        // about one device latency, not one per flush.
        for ticket in &self.tickets {
            store.pmem.await_ticket(ticket)?;
        }
        // Phase 3 — publish: flip each touched bucket's head once, to
        // the newest staged record (all-or-nothing per bucket).
        for (&bucket, &new_head) in &self.staged_heads {
            let expected = self.pre_heads[&bucket];
            if !store.pmem.compare_exchange(
                POffset::new(bucket),
                &expected.to_le_bytes(),
                &new_head.to_le_bytes(),
            )? {
                return Err(PError::CorruptStack(
                    "bucket head moved under a group commit — every batched-store mutation \
                     must register with the region's mutator gate"
                        .into(),
                ));
            }
        }
        store.seal_batch(lo, hi, &self.staged_heads)?;
        Ok(self.outcomes)
    }
}

fn round64(v: u64) -> u64 {
    (v + 63) & !63
}

/// SplitMix64 finalizer: a full-avalanche mix so sequential keys spread
/// across buckets.
pub(crate) fn mix(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Bytes of the fixed prefix (header + bucket array) of a generation
/// block, rounded so the log starts 64-aligned.
fn gen_prefix_len(nbuckets: u64) -> u64 {
    round64(GEN_HEADER_LEN + nbuckets * 8)
}

/// Bytes of a whole generation block.
fn gen_block_len(nbuckets: u64, log_cap: u64) -> u64 {
    gen_prefix_len(nbuckets) + log_cap * RECORD_STRIDE
}

impl PKvStore {
    /// Bytes of NVRAM the store needs for its root block plus one
    /// generation of `nbuckets` buckets and a `log_cap`-record version
    /// log. Every [`PKvStore::compact`] allocates one further
    /// generation block from the heap.
    #[must_use]
    pub fn required_len(nbuckets: u64, log_cap: u64) -> usize {
        (ROOT_LEN + gen_block_len(nbuckets, log_cap)) as usize
    }

    /// Allocates and persists an empty store. `log_cap` bounds one
    /// *generation's* mutation count (records are never recycled in
    /// place — the same trade the recoverable queue makes to keep
    /// recovery a scan); [`PKvStore::compact`] rewrites the live heads
    /// into a fresh generation when the log runs out of headroom, so
    /// the store's lifetime write count is unbounded.
    ///
    /// An `eager_flush` region yields an eager store (§5's cache-less
    /// NVRAM, lock-free per-op CAS); a buffered region yields a batched
    /// store that orders its own persists and group-commits mutations
    /// (see the [module docs](self)).
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] for a zero bucket count or log
    /// capacity; heap/NVRAM errors otherwise.
    pub fn format(
        pmem: PMem,
        heap: &PHeap,
        nbuckets: u64,
        log_cap: u64,
        variant: KvVariant,
    ) -> Result<Self, PError> {
        if nbuckets == 0 || log_cap == 0 {
            return Err(PError::InvalidConfig(
                "KV store needs at least one bucket and one log slot".into(),
            ));
        }
        let base = heap.alloc_aligned(ROOT_LEN as usize, 64)?;
        pmem.fill(base, 0, ROOT_LEN as usize)?;
        pmem.write_u64(base + OFF_NBUCKETS, nbuckets)?;
        pmem.write_u64(base + OFF_MAGIC, KV_MAGIC)?;
        let gen0 = Self::format_generation(&pmem, heap, nbuckets, log_cap, 0, 0)?;
        if !pmem.is_eager_flush() {
            // Batched store: make root + generation 0 durable before
            // the cell (formatted below, self-persisting) names them.
            pmem.flush(base, ROOT_LEN as usize)?;
            pmem.flush(POffset::new(gen0), gen_prefix_len(nbuckets) as usize)?;
        }
        let cell = RootCell::format(pmem.clone(), base + OFF_GEN_CELL, 0, gen0)?;
        Self::register_publish_range(&pmem, gen0, nbuckets);
        Ok(Self::assemble(pmem, base, cell, nbuckets, variant))
    }

    /// Tells PSan (no-op when disabled) that the generation's bucket
    /// array publishes record offsets: every head CAS in it must point
    /// at a durable record slot.
    fn register_publish_range(pmem: &PMem, gen_base: u64, nbuckets: u64) {
        pmem.psan_register_publish_range(
            POffset::new(gen_base + GEN_HEADER_LEN),
            (nbuckets * 8) as usize,
            RECORD_STRIDE as usize,
        );
    }

    /// Writes an empty generation block's header (state ACTIVE, tail 0)
    /// and zeroes its bucket array. Log slots are left untouched: they
    /// are unreachable until reserved, written in full and published.
    /// Volatile on a buffered region — the caller persists.
    fn format_generation(
        pmem: &PMem,
        heap: &PHeap,
        nbuckets: u64,
        log_cap: u64,
        number: u64,
        prev: u64,
    ) -> Result<u64, PError> {
        let len = gen_block_len(nbuckets, log_cap) as usize;
        let base = heap.alloc_aligned(len, 64)?;
        pmem.fill(base, 0, gen_prefix_len(nbuckets) as usize)?;
        pmem.write_u64(base + GEN_OFF_NUMBER, number)?;
        pmem.write_u64(base + GEN_OFF_LOG_CAP, log_cap)?;
        pmem.write_u64(base + GEN_OFF_PREV, prev)?;
        pmem.write_u64(base + GEN_OFF_STATE, GEN_STATE_ACTIVE)?;
        pmem.write_u64(base + GEN_OFF_MAGIC, GEN_MAGIC)?;
        Ok(base.get())
    }

    /// Re-attaches to a store previously created at `base` (recovery
    /// boot). The commit mode follows the region, exactly as in
    /// [`PKvStore::format`].
    ///
    /// # Errors
    ///
    /// [`PError::CorruptStack`] on a bad magic word (root or active
    /// generation).
    pub fn open(pmem: PMem, base: POffset, variant: KvVariant) -> Result<Self, PError> {
        let magic = pmem.read_u64(base + OFF_MAGIC)?;
        if magic != KV_MAGIC {
            return Err(PError::CorruptStack(format!(
                "bad KV store magic {magic:#x} at {base}"
            )));
        }
        let nbuckets = pmem.read_u64(base + OFF_NBUCKETS)?;
        let cell = RootCell::open(pmem.clone(), base + OFF_GEN_CELL).map_err(|e| match e {
            MemError::Crashed => PError::Mem(e),
            e => PError::CorruptStack(format!("KV store root cell at {base}: {e}")),
        })?;
        let store = Self::assemble(pmem, base, cell, nbuckets, variant);
        let gen = store.active_gen()?; // validates the active generation's magic
        Self::register_publish_range(&store.pmem, gen.base, nbuckets);
        Ok(store)
    }

    fn assemble(
        pmem: PMem,
        base: POffset,
        cell: RootCell,
        nbuckets: u64,
        variant: KvVariant,
    ) -> Self {
        let eager = pmem.is_eager_flush();
        PKvStore {
            pmem,
            base,
            cell,
            nbuckets,
            variant,
            eager,
            pipeline: false,
        }
    }

    /// Loads the active generation from the root cell. Re-read on every
    /// operation (reads are free of persistence events), so clones and
    /// independently opened handles observe a compaction swap
    /// immediately.
    fn active_gen(&self) -> Result<Gen, PError> {
        // A mid-read power failure is a crash, not corruption — it
        // must keep its classification so callers route it to
        // recovery instead of aborting on a phantom corruption.
        let (number, base) = self.cell.current().map_err(|e| match e {
            MemError::Crashed => PError::Mem(e),
            e => PError::CorruptStack(format!("KV store root cell: {e}")),
        })?;
        let off = POffset::new(base);
        let magic = self.pmem.read_u64(off + GEN_OFF_MAGIC)?;
        if magic != GEN_MAGIC {
            return Err(PError::CorruptStack(format!(
                "bad KV generation magic {magic:#x} at {off} (generation {number})"
            )));
        }
        let log_cap = self.pmem.read_u64(off + GEN_OFF_LOG_CAP)?;
        Ok(Gen {
            base,
            number,
            log_cap,
        })
    }

    /// The store's base offset (persist it to find the store again).
    #[must_use]
    pub fn base(&self) -> POffset {
        self.base
    }

    /// Number of hash buckets.
    #[must_use]
    pub fn nbuckets(&self) -> u64 {
        self.nbuckets
    }

    /// The **active generation's** version-log capacity in records.
    /// Compaction may grow it; within one generation it is fixed.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn log_capacity(&self) -> Result<u64, PError> {
        Ok(self.active_gen()?.log_cap)
    }

    /// The active generation's number (0 until the first successful
    /// [`PKvStore::compact`]).
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn generation(&self) -> Result<u64, PError> {
        Ok(self.active_gen()?.number)
    }

    /// The recovery variant this handle runs.
    #[must_use]
    pub fn variant(&self) -> KvVariant {
        self.variant
    }

    /// Log slots reserved so far in the **active generation**
    /// (published records, carry-overs and crash orphans).
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn log_reserved(&self) -> Result<u64, PError> {
        let gen = self.active_gen()?;
        Ok(self
            .pmem
            .read_u64(POffset::new(gen.base + GEN_OFF_LOG_TAIL))?)
    }

    /// `true` for an eager store (per-op durability on a cache-less
    /// region), `false` for a batched store (group-commit persists).
    #[must_use]
    pub fn is_eager(&self) -> bool {
        self.eager
    }

    /// Enables or disables the asynchronous flush pipeline for this
    /// handle (volatile; clones made *after* the call inherit it).
    /// When on, [`PKvStore::apply_batch`] issues its record and
    /// log-tail persists as overlapping [`PMem::flush_async`] flights
    /// and awaits them together before publishing, and
    /// [`PKvStore::compact`] overlaps the carry-block persist with
    /// carry building. Durability ordering is unchanged — nothing is
    /// published before its records' tickets complete — so the
    /// evidence-scan recovery argument carries over verbatim; only the
    /// wall-clock shape of a commit differs. Ignored on an eager store:
    /// per-write durability leaves no round-trips to overlap.
    pub fn set_pipeline(&mut self, on: bool) {
        self.pipeline = on && !self.eager;
    }

    /// `true` when group commits and compaction overlap their persist
    /// round-trips through the asynchronous flush pipeline.
    #[must_use]
    pub fn is_pipelined(&self) -> bool {
        self.pipeline
    }

    /// Completed group commits since format — the persistent flush
    /// epoch a batched store bumps (and persists) at the end of every
    /// [`PKvStore::apply_batch`]. After a crash it counts exactly the
    /// batches whose epoch bump reached durability; the batch
    /// *publishes* (head flips) are durable strictly before its epoch
    /// bump, so `flush_epoch() == n` implies the first `n` batches are
    /// fully visible. Always `0` on an eager store, and per-op
    /// lock-free mutations don't bump it either — their durability is
    /// per-record (detectable from the log evidence), not epoch-based.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn flush_epoch(&self) -> Result<u64, PError> {
        Ok(self.pmem.read_u64(self.base + OFF_FLUSH_EPOCH)?)
    }

    fn bucket_off(&self, gen: &Gen, key: u64) -> POffset {
        let b = mix(key) % self.nbuckets;
        self.bucket_off_at(gen, b)
    }

    fn bucket_off_at(&self, gen: &Gen, bucket: u64) -> POffset {
        POffset::new(gen.base + GEN_HEADER_LEN + bucket * 8)
    }

    fn record_off(&self, gen: &Gen, idx: u64) -> u64 {
        gen.base + gen_prefix_len(self.nbuckets) + idx * RECORD_STRIDE
    }

    fn read_record(&self, off: u64, gen_number: u64) -> Result<(VersionRecord, u64), PError> {
        let mut b = [0u8; RECORD_LEN];
        self.pmem.read(POffset::new(off), &mut b)?;
        let kind = b[0];
        if kind != KIND_PUT && kind != KIND_DEL && kind != KIND_CARRY {
            return Err(PError::CorruptStack(format!(
                "published KV record at {off:#x} has kind {kind}"
            )));
        }
        let rec = VersionRecord {
            key: u64::from_le_bytes(b[8..16].try_into().expect("slice length")),
            value: i64::from_le_bytes(b[16..24].try_into().expect("slice length")),
            pid: u64::from_le_bytes(b[24..32].try_into().expect("slice length")),
            seq: u64::from_le_bytes(b[32..40].try_into().expect("slice length")),
            is_delete: kind == KIND_DEL,
            compacted: kind == KIND_CARRY,
            gen: gen_number,
        };
        let next = u64::from_le_bytes(b[40..48].try_into().expect("slice length"));
        Ok((rec, next))
    }

    /// Walks a chain from `head` for `key`: the newest record decides.
    /// (Carry-overs are copies of live PUTs, so they decide like PUTs.)
    fn lookup_from(&self, head: u64, key: u64, gen_number: u64) -> Result<Option<i64>, PError> {
        let mut off = head;
        while off != 0 {
            let (rec, next) = self.read_record(off, gen_number)?;
            if rec.key == key {
                return Ok(if rec.is_delete { None } else { Some(rec.value) });
            }
            off = next;
        }
        Ok(None)
    }

    /// Reserves one log slot in `gen`; `None` when its log is
    /// exhausted.
    fn reserve(&self, gen: &Gen) -> Result<Option<u64>, PError> {
        let tail = POffset::new(gen.base + GEN_OFF_LOG_TAIL);
        loop {
            let t = self.pmem.read_u64(tail)?;
            if t >= gen.log_cap {
                return Ok(None);
            }
            if self
                .pmem
                .compare_exchange(tail, &t.to_le_bytes(), &(t + 1).to_le_bytes())?
            {
                return Ok(Some(self.record_off(gen, t)));
            }
        }
    }

    /// Resolves a mutation's precondition against the chain at `head`:
    /// `None` means the precondition failed, `Some(v)` the value the
    /// record must carry (a delete records the value it removed).
    fn resolve_value(
        &self,
        head: u64,
        key: u64,
        value: i64,
        precond: &Precond,
        gen_number: u64,
    ) -> Result<Option<i64>, PError> {
        match precond {
            Precond::None => Ok(Some(value)),
            Precond::Exists => self.lookup_from(head, key, gen_number),
            Precond::ValueIs(expected) => {
                if self.lookup_from(head, key, gen_number)? == Some(*expected) {
                    Ok(Some(value))
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// Writes a full record into slot `off` (volatile on a buffered
    /// region; durable immediately on an eager one). `tag` is the
    /// writer's `(pid, seq)` pair.
    fn write_record(
        &self,
        off: u64,
        kind: u8,
        key: u64,
        value: i64,
        tag: (u64, u64),
        next: u64,
    ) -> Result<(), PError> {
        let mut b = [0u8; RECORD_LEN];
        b[0] = kind;
        b[8..16].copy_from_slice(&key.to_le_bytes());
        b[16..24].copy_from_slice(&value.to_le_bytes());
        b[24..32].copy_from_slice(&tag.0.to_le_bytes());
        b[32..40].copy_from_slice(&tag.1.to_le_bytes());
        b[40..48].copy_from_slice(&next.to_le_bytes());
        Ok(self.pmem.write(POffset::new(off), &b)?)
    }

    /// The eager append loop shared by every mutation: check the
    /// precondition against the current chain, write the full record
    /// into a reserved slot, publish it with the bucket-head CAS. A
    /// failed CAS means another mutation intervened — re-check and
    /// retry. The slot is reserved lazily and at most once per
    /// generation; if the precondition fails after a slot was reserved,
    /// the slot is abandoned as an invisible orphan (the price of never
    /// recycling evidence). The active generation is re-read on every
    /// retry, so a slot reserved in a just-retired generation is
    /// likewise abandoned rather than published.
    fn append(
        &self,
        pid: u64,
        seq: u64,
        key: u64,
        kind: u8,
        value: i64,
        precond: &Precond,
    ) -> Result<Append, PError> {
        // Register with the region's mutator gate so a concurrent
        // `compact` quiesces us out instead of racing the generation
        // swap — machine-checked, not caller-promised.
        let _mutator = self.pmem.mutator_enter();
        // (slot offset, generation base it belongs to)
        let mut slot: Option<(u64, u64)> = None;
        loop {
            let gen = self.active_gen()?;
            let bucket = self.bucket_off(&gen, key);
            let head = self.pmem.read_u64(bucket)?;
            let Some(value) = self.resolve_value(head, key, value, precond, gen.number)? else {
                return Ok(Append::PrecondFailed);
            };
            let off = match slot {
                Some((off, gbase)) if gbase == gen.base => off,
                _ => match self.reserve(&gen)? {
                    Some(off) => {
                        slot = Some((off, gen.base));
                        off
                    }
                    None => return Ok(Append::LogFull),
                },
            };
            self.write_record(off, kind, key, value, (pid, seq), head)?;
            if self
                // persist-lint: allow(publish-before-persist) eager region — write_record persisted at the store
                .pmem
                .compare_exchange(bucket, &head.to_le_bytes(), &off.to_le_bytes())?
            {
                return Ok(Append::Applied);
            }
        }
    }

    /// Lock-free detectable publication on a **buffered** region — the
    /// per-op hot path of a batched store. The shape is the eager CAS
    /// loop with the persists the buffered region doesn't do for us
    /// spelled out, in the order the recovery argument needs:
    ///
    /// 1. reserve a log slot (fetch-add style tail CAS, lazily, at
    ///    most once per generation — an abandoned slot is an invisible
    ///    orphan, the usual price of never recycling evidence);
    /// 2. build the version record in the slot (volatile) and
    ///    **persist it** — a head must never be able to reach a
    ///    volatile record;
    /// 3. **persist the log tail** — were the tail to crash back
    ///    behind a published slot, recovery would hand the slot out
    ///    again and overwrite published evidence;
    /// 4. publish with the bucket-head CAS; a failed CAS means a
    ///    concurrent mutation intervened — re-read, rebuild, re-persist
    ///    and retry (NVTraverse's insight: only this destination needs
    ///    ordering, everything before it is private);
    /// 5. persist the head, making the op immediately detectable.
    ///
    /// Should the head persist (5) be lost to a crash, the record is an
    /// unreachable orphan and the evidence scan correctly reports the
    /// op as never-executed — its recovery dual re-executes it, same as
    /// a crash before the CAS. PSan machine-checks (2) at every head
    /// CAS (the bucket arrays are registered publish ranges), and
    /// [`KvVariant::EarlyPublish`] skips the record persist as the
    /// negative control proving that check fires on this path too.
    ///
    /// Any number of mutators may run this concurrently on one shard;
    /// each registers in the region's mutator gate so `compact` (and
    /// group commits) quiesce them out instead of racing.
    fn publish_one(&self, op: KvBatchOp) -> Result<KvApplied, PError> {
        let _mutator = self.pmem.mutator_enter();
        let (pid, seq, key, kind, value, precond) = op.parts();
        // (slot offset, generation base it belongs to)
        let mut slot: Option<(u64, u64)> = None;
        loop {
            let gen = self.active_gen()?;
            let bucket = self.bucket_off(&gen, key);
            let head = self.pmem.read_u64(bucket)?;
            let Some(value) = self.resolve_value(head, key, value, &precond, gen.number)? else {
                return Ok(KvApplied::PrecondFailed);
            };
            let off = match slot {
                Some((off, gbase)) if gbase == gen.base => off,
                _ => match self.reserve(&gen)? {
                    Some(off) => {
                        slot = Some((off, gen.base));
                        off
                    }
                    None => return Ok(KvApplied::LogFull),
                },
            };
            self.write_record(off, kind, key, value, (pid, seq), head)?;
            if self.variant != KvVariant::EarlyPublish {
                self.pmem.flush(POffset::new(off), RECORD_LEN)?;
            }
            self.pmem
                .flush(POffset::new(gen.base + GEN_OFF_LOG_TAIL), 8)?;
            if self
                .pmem
                .compare_exchange(bucket, &head.to_le_bytes(), &off.to_le_bytes())?
            {
                self.pmem.flush(bucket, 8)?;
                return Ok(KvApplied::Applied);
            }
        }
    }

    /// Applies one mutation through the commit mode's native path: the
    /// eager CAS loop, or lock-free detectable publication on a
    /// batched store.
    fn apply_one(&self, op: KvBatchOp) -> Result<KvApplied, PError> {
        if self.eager {
            let (pid, seq, key, kind, value, precond) = op.parts();
            Ok(KvApplied::from(
                self.append(pid, seq, key, kind, value, &precond)?,
            ))
        } else {
            self.publish_one(op)
        }
    }

    /// Group-commits a batch of mutations, in order, and reports each
    /// op's outcome. Ops see the staged effects of earlier ops in the
    /// same batch (a `cas` after a `put` of its expected value
    /// succeeds).
    ///
    /// On a **batched** store this is the hot path the sharding layer
    /// amortizes persists with: all records (and the log tail) become
    /// durable in one coalesced persist, each touched bucket's head is
    /// published once, the heads are persisted, and the header's flush
    /// epoch is bumped — 3 + ⌈heads/lines⌉ persist round-trips for the
    /// whole batch instead of ≥ 3 per mutation. A crash at any flush
    /// boundary leaves every bucket either entirely pre-batch or
    /// entirely post-batch (records are durable strictly before any
    /// head that can reach them), so recovery remains the per-key
    /// evidence scan. On an **eager** store the batch degenerates to
    /// the per-op loop — durability is per-write there, so there is
    /// nothing to coalesce.
    ///
    /// # Errors
    ///
    /// A propagated crash (recover each op with its recovery dual
    /// after restart).
    ///
    /// # Example
    ///
    /// ```
    /// use pstack_nvram::PMemBuilder;
    /// use pstack_heap::PHeap;
    /// use pstack_kv::{KvBatchOp, KvVariant, PKvStore};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// // A *buffered* region: the store orders its own persists.
    /// let pmem = PMemBuilder::new().len(1 << 18).build_in_memory();
    /// let heap = PHeap::format(pmem.clone(), 0u64.into(), 1 << 18)?;
    /// let kv = PKvStore::format(pmem, &heap, 16, 64, KvVariant::Nsrl)?;
    /// let applied = kv.apply_batch(&[
    ///     KvBatchOp::Put { pid: 0, seq: 1, key: 7, value: 70 },
    ///     KvBatchOp::Cas { pid: 0, seq: 2, key: 7, expected: 70, new: 71 },
    /// ])?;
    /// assert_eq!(applied, vec![Applied, Applied]);
    /// assert_eq!(kv.get(7)?, Some(71));
    /// assert_eq!(kv.flush_epoch()?, 1);
    /// # Ok(())
    /// # }
    /// # use pstack_kv::KvApplied::Applied;
    /// ```
    pub fn apply_batch(&self, ops: &[KvBatchOp]) -> Result<Vec<KvApplied>, PError> {
        let _label = op_label("kv.apply_batch");
        self.apply_batch_inner(ops)
    }

    /// [`PKvStore::apply_batch`] without the attribution label, so the
    /// per-op entry points ([`PKvStore::put`] & friends) keep their own
    /// label when they degenerate to a singleton commit.
    fn apply_batch_inner(&self, ops: &[KvBatchOp]) -> Result<Vec<KvApplied>, PError> {
        if self.eager {
            return ops.iter().map(|&op| self.apply_one(op)).collect();
        }
        if self.pipeline {
            return self.apply_batch_begin(ops)?.commit();
        }
        // Region-scoped (not handle-scoped): any handle opened on this
        // region — clone or independent `open` — quiesces here, and so
        // does `compact`; in-flight lock-free mutators are waited out,
        // so the generation loaded below cannot be swapped and no
        // bucket head can move under the batch.
        let _serialize = self.pmem.quiesce();
        let gen = self.active_gen()?;
        let staged = self.stage_batch(&gen, ops)?;
        let Some((lo, hi)) = staged.slots else {
            // Nothing staged: no records, no tail movement to persist.
            return Ok(staged.outcomes);
        };

        // Phase 2 — persist the records and the log tail with one
        // coalesced flush each. The quiesce makes the reserved slots
        // consecutive, so [lo, hi] covers exactly this batch.
        // KvVariant::EarlyPublish omits the record flush — PSan's
        // negative control: the phase-3 head CAS then publishes
        // still-volatile records, which the sanitizer flags.
        if self.variant != KvVariant::EarlyPublish {
            self.pmem
                .flush(POffset::new(lo), (hi - lo + RECORD_STRIDE) as usize)?;
        }
        self.pmem
            .flush(POffset::new(gen.base + GEN_OFF_LOG_TAIL), 8)?;

        // Phase 3 — publish: flip each touched bucket's head once, to
        // the newest staged record. Intermediate staged heads are never
        // published, so per bucket the batch is all-or-nothing.
        for (&bucket, &new_head) in &staged.staged_heads {
            let expected = staged.pre_heads[&bucket];
            if !self.pmem.compare_exchange(
                POffset::new(bucket),
                &expected.to_le_bytes(),
                &new_head.to_le_bytes(),
            )? {
                return Err(PError::CorruptStack(
                    "bucket head moved under a group commit — every batched-store mutation \
                     must register with the region's mutator gate"
                        .into(),
                ));
            }
        }

        self.seal_batch(lo, hi, &staged.staged_heads)?;
        Ok(staged.outcomes)
    }

    /// Phase 1 of a group commit, shared by the synchronous and
    /// pipelined paths: resolve preconditions against the staged chain
    /// state, reserve slots, write records (volatile). The caller
    /// holds the region quiesced.
    fn stage_batch(&self, gen: &Gen, ops: &[KvBatchOp]) -> Result<StagedBatch, PError> {
        let mut outcomes = vec![KvApplied::PrecondFailed; ops.len()];
        // Per touched bucket: the durable pre-batch head and the staged
        // head the batch will publish.
        let mut pre_heads: BTreeMap<u64, u64> = BTreeMap::new();
        let mut staged_heads: BTreeMap<u64, u64> = BTreeMap::new();
        let mut slots: Option<(u64, u64)> = None;
        for (i, op) in ops.iter().enumerate() {
            let (pid, seq, key, kind, value, precond) = op.parts();
            let bucket = self.bucket_off(gen, key).get();
            let head = match staged_heads.get(&bucket) {
                Some(&h) => h,
                None => {
                    let h = self.pmem.read_u64(POffset::new(bucket))?;
                    pre_heads.insert(bucket, h);
                    h
                }
            };
            let Some(value) = self.resolve_value(head, key, value, &precond, gen.number)? else {
                continue;
            };
            let Some(off) = self.reserve(gen)? else {
                outcomes[i] = KvApplied::LogFull;
                continue;
            };
            self.write_record(off, kind, key, value, (pid, seq), head)?;
            staged_heads.insert(bucket, off);
            slots = Some(match slots {
                None => (off, off),
                Some((lo, hi)) => (lo.min(off), hi.max(off)),
            });
            outcomes[i] = KvApplied::Applied;
        }
        Ok(StagedBatch {
            outcomes,
            pre_heads,
            staged_heads,
            slots,
        })
    }

    /// Phases 4–5 of a group commit, shared by the synchronous and
    /// pipelined paths. The caller has published the heads (phase 3)
    /// with records and log tail already durable.
    fn seal_batch(
        &self,
        lo: u64,
        hi: u64,
        staged_heads: &BTreeMap<u64, u64>,
    ) -> Result<(), PError> {
        // Phase 4 — persist the heads: one flush spanning the touched
        // buckets (clean lines in between persist nothing, touched
        // lines coalesce).
        let first = *staged_heads.keys().next().expect("non-empty staged set");
        let last = *staged_heads
            .keys()
            .next_back()
            .expect("non-empty staged set");
        self.pmem
            .flush(POffset::new(first), (last - first + 8) as usize)?;

        // Phase 5 — bump and persist the flush epoch. The bump
        // advertises the whole batch as durable, so under PSan both the
        // record span and the published heads must be durable *now*.
        self.pmem
            .psan_check_durable(POffset::new(lo), (hi - lo + RECORD_STRIDE) as usize);
        self.pmem
            .psan_check_durable(POffset::new(first), (last - first + 8) as usize);
        let epoch = self.pmem.read_u64(self.base + OFF_FLUSH_EPOCH)?;
        self.pmem
            .write_u64(self.base + OFF_FLUSH_EPOCH, epoch + 1)?;
        self.pmem.flush(self.base + OFF_FLUSH_EPOCH, 8)?;
        pstack_telemetry::flush_epoch(self.pmem.telemetry_label_id(), epoch + 1);
        Ok(())
    }

    /// Stages a group commit and **issues** its record and log-tail
    /// persists as asynchronous flush commands without publishing:
    /// phase 1 of [`PKvStore::apply_batch`] plus a pipelined phase 2.
    /// The two flights ride the device queue concurrently, so draining
    /// them costs about one round-trip instead of two — and while they
    /// are in flight the caller is free to build other work (another
    /// shard's batch, the next batch's records) before making this one
    /// visible with [`KvPendingBatch::commit`].
    ///
    /// The returned handle keeps the region quiesced. Dropping it
    /// without committing abandons the staged records as unpublished
    /// orphans — invisible to lookups, scans and recovery alike, the
    /// same shape a pre-publish crash leaves.
    ///
    /// On an eager store the batch is applied per-op immediately and
    /// the returned handle's commit is a no-op.
    ///
    /// # Errors
    ///
    /// A propagated crash (recover each op with its recovery dual
    /// after restart).
    pub fn apply_batch_begin(&self, ops: &[KvBatchOp]) -> Result<KvPendingBatch<'_>, PError> {
        if self.eager {
            let outcomes = ops
                .iter()
                .map(|&op| self.apply_one(op))
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(KvPendingBatch {
                store: self,
                _quiesce: None,
                outcomes,
                pre_heads: BTreeMap::new(),
                staged_heads: BTreeMap::new(),
                slots: None,
                tickets: Vec::new(),
            });
        }
        let quiesce = self.pmem.quiesce();
        let gen = self.active_gen()?;
        let staged = self.stage_batch(&gen, ops)?;
        let mut tickets = Vec::new();
        if let Some((lo, hi)) = staged.slots {
            // Pipelined phase 2: issue the record-span and log-tail
            // flights back to back; their round-trips overlap in the
            // device queue. KvVariant::EarlyPublish omits the record
            // flight (PSan's negative control), exactly as the
            // synchronous path omits the record flush.
            if self.variant != KvVariant::EarlyPublish {
                tickets.push(
                    self.pmem
                        .flush_async(POffset::new(lo), (hi - lo + RECORD_STRIDE) as usize)?,
                );
            }
            tickets.push(
                self.pmem
                    .flush_async(POffset::new(gen.base + GEN_OFF_LOG_TAIL), 8)?,
            );
        }
        Ok(KvPendingBatch {
            store: self,
            _quiesce: Some(quiesce),
            outcomes: staged.outcomes,
            pre_heads: staged.pre_heads,
            staged_heads: staged.staged_heads,
            slots: staged.slots,
            tickets,
        })
    }

    /// Stores `value` under `key` as process `pid` with unique tag
    /// `seq`, inserting or overwriting. Returns `false` if the active
    /// generation's version log is exhausted — the store is then
    /// read-only until [`PKvStore::compact`] swaps in a fresh
    /// generation.
    ///
    /// # Errors
    ///
    /// A propagated crash (complete with [`PKvStore::recover_put`]
    /// after restart).
    pub fn put(&self, pid: u64, seq: u64, key: u64, value: i64) -> Result<bool, PError> {
        let _label = op_label("kv.put");
        match self.apply_one(KvBatchOp::Put {
            pid,
            seq,
            key,
            value,
        })? {
            KvApplied::Applied => Ok(true),
            KvApplied::LogFull => Ok(false),
            KvApplied::PrecondFailed => unreachable!("put has no precondition"),
        }
    }

    /// Reads the current value of `key`.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn get(&self, key: u64) -> Result<Option<i64>, PError> {
        let gen = self.active_gen()?;
        let head = self.pmem.read_u64(self.bucket_off(&gen, key))?;
        self.lookup_from(head, key, gen.number)
    }

    /// Removes `key` as process `pid` with unique tag `seq`. Returns
    /// `true` if the key was present (and is now removed), `false` if
    /// it was absent or the log is full.
    ///
    /// # Errors
    ///
    /// A propagated crash (complete with [`PKvStore::recover_delete`]
    /// after restart).
    pub fn delete(&self, pid: u64, seq: u64, key: u64) -> Result<bool, PError> {
        let _label = op_label("kv.delete");
        Ok(self
            .apply_one(KvBatchOp::Delete { pid, seq, key })?
            .took_effect())
    }

    /// Replaces `key`'s value with `new` iff it currently equals
    /// `expected`, as process `pid` with unique tag `seq`. Returns
    /// `false` if the current value differs (or the key is absent, or
    /// the log is full).
    ///
    /// # Errors
    ///
    /// A propagated crash (complete with [`PKvStore::recover_cas`]
    /// after restart).
    pub fn cas(
        &self,
        pid: u64,
        seq: u64,
        key: u64,
        expected: i64,
        new: i64,
    ) -> Result<bool, PError> {
        let _label = op_label("kv.cas");
        Ok(self
            .apply_one(KvBatchOp::Cas {
                pid,
                seq,
                key,
                expected,
                new,
            })?
            .took_effect())
    }

    /// Searches `key`'s published chain for the record tagged
    /// `(pid, seq)` — the evidence scan of the NSRL recovery duals.
    ///
    /// The scan spans **every generation** (newest first): an operation
    /// that published before a compaction must still be recognized
    /// after one, whether its record survives as a live carry-over in
    /// the new generation or only in a retired generation's log.
    /// Without the cross-generation walk, a compact-then-recover
    /// sequence would re-execute it — a double application the
    /// verifier flags.
    fn find_tag(&self, key: u64, pid: u64, seq: u64) -> Result<Option<VersionRecord>, PError> {
        let mut gen = self.active_gen()?;
        loop {
            let mut off = self.pmem.read_u64(self.bucket_off(&gen, key))?;
            while off != 0 {
                let (rec, next) = self.read_record(off, gen.number)?;
                if rec.pid == pid && rec.seq == seq {
                    return Ok(Some(rec));
                }
                off = next;
            }
            let prev = self.pmem.read_u64(POffset::new(gen.base + GEN_OFF_PREV))?;
            if prev == 0 {
                return Ok(None);
            }
            gen = self.load_gen(prev)?;
        }
    }

    /// Loads a generation descriptor from its block base, validating
    /// the magic word.
    fn load_gen(&self, base: u64) -> Result<Gen, PError> {
        let off = POffset::new(base);
        let magic = self.pmem.read_u64(off + GEN_OFF_MAGIC)?;
        if magic != GEN_MAGIC {
            return Err(PError::CorruptStack(format!(
                "bad KV generation magic {magic:#x} at {off}"
            )));
        }
        Ok(Gen {
            base,
            number: self.pmem.read_u64(off + GEN_OFF_NUMBER)?,
            log_cap: self.pmem.read_u64(off + GEN_OFF_LOG_CAP)?,
        })
    }

    /// Every generation of the store, oldest first (walking the active
    /// generation's `prev` chain back to generation 0).
    fn gens_oldest_first(&self) -> Result<Vec<Gen>, PError> {
        let mut gens = vec![self.active_gen()?];
        loop {
            let last = gens.last().expect("non-empty");
            let prev = self.pmem.read_u64(POffset::new(last.base + GEN_OFF_PREV))?;
            if prev == 0 {
                break;
            }
            gens.push(self.load_gen(prev)?);
        }
        gens.reverse();
        Ok(gens)
    }

    /// One bucket's published chain within one generation, oldest
    /// record first.
    fn chain_in_gen(&self, gen: &Gen, bucket: u64) -> Result<Vec<VersionRecord>, PError> {
        let mut off = self.pmem.read_u64(self.bucket_off_at(gen, bucket))?;
        let mut out = Vec::new();
        while off != 0 {
            let (rec, next) = self.read_record(off, gen.number)?;
            out.push(rec);
            off = next;
        }
        out.reverse();
        Ok(out)
    }

    /// Completes an interrupted `put(pid, seq, key, value)`: the
    /// operation linearized iff a published record carries its tag;
    /// only then is re-execution skipped.
    ///
    /// # Errors
    ///
    /// A propagated crash; recovery is then re-run after restart.
    pub fn recover_put(&self, pid: u64, seq: u64, key: u64, value: i64) -> Result<bool, PError> {
        let _label = op_label("kv.recover_put");
        if self.variant.scans_evidence() && self.find_tag(key, pid, seq)?.is_some() {
            return Ok(true);
        }
        self.put(pid, seq, key, value)
    }

    /// Completes an interrupted `delete(pid, seq, key)`.
    ///
    /// A delete that observed an absent key and crashed before
    /// reporting leaves no evidence — recovery re-executes it, which is
    /// correct because an answer that was never persisted is
    /// indistinguishable from the operation not having run (the same
    /// argument the recoverable queue makes for empty dequeues).
    ///
    /// # Errors
    ///
    /// A propagated crash; recovery is then re-run after restart.
    pub fn recover_delete(&self, pid: u64, seq: u64, key: u64) -> Result<bool, PError> {
        let _label = op_label("kv.recover_delete");
        if self.variant.scans_evidence() && self.find_tag(key, pid, seq)?.is_some() {
            return Ok(true);
        }
        self.delete(pid, seq, key)
    }

    /// Completes an interrupted `cas(pid, seq, key, expected, new)`. A
    /// successful CAS left a tagged record; a failed one left no effect
    /// and is safely re-executed.
    ///
    /// # Errors
    ///
    /// A propagated crash; recovery is then re-run after restart.
    pub fn recover_cas(
        &self,
        pid: u64,
        seq: u64,
        key: u64,
        expected: i64,
        new: i64,
    ) -> Result<bool, PError> {
        let _label = op_label("kv.recover_cas");
        if self.variant.scans_evidence() && self.find_tag(key, pid, seq)?.is_some() {
            return Ok(true);
        }
        self.cas(pid, seq, key, expected, new)
    }

    /// The batched recovery dual of [`PKvStore::apply_batch`]: runs the
    /// evidence scan for every op first (an op whose tagged record
    /// already published answers `Applied` without re-executing), then
    /// re-executes the remainder through **one** group commit.
    /// Equivalent to running each op's recovery dual in submission
    /// order — a re-execution publishes only its own tag, so it cannot
    /// create or destroy another pending op's evidence — but it pays
    /// the batch's persist economy, so recovery traffic runs inside
    /// real batch windows too (which is what lets a crash campaign
    /// kill *recovery* mid-batch and still converge).
    ///
    /// Under [`KvVariant::NoScan`] the scans are skipped and every op
    /// re-executes — the injected §5.2-style bug, preserved here so
    /// batched recovery stays subject to the same negative control.
    ///
    /// # Errors
    ///
    /// A propagated crash; re-run after restart.
    pub fn recover_batch(&self, ops: &[KvBatchOp]) -> Result<Vec<KvApplied>, PError> {
        let _label = op_label("kv.recover_batch");
        let _phase = pstack_telemetry::phase("recovery.batch-replay");
        let mut outcomes = vec![KvApplied::PrecondFailed; ops.len()];
        let mut rest = Vec::new();
        let mut rest_idx = Vec::new();
        for (i, &op) in ops.iter().enumerate() {
            let (pid, seq) = op.tag();
            if self.variant.scans_evidence() && self.find_tag(op.key(), pid, seq)?.is_some() {
                outcomes[i] = KvApplied::Applied;
            } else {
                rest.push(op);
                rest_idx.push(i);
            }
        }
        for (i, outcome) in rest_idx.into_iter().zip(self.apply_batch(&rest)?) {
            outcomes[i] = outcome;
        }
        Ok(outcomes)
    }

    /// One bucket's published chain, oldest record first, **spanning
    /// every generation** (retired generations' history first, then the
    /// active generation's carry-overs and new records). This is the
    /// witness shape the generation-aware verifier replays.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    ///
    /// # Panics
    ///
    /// Panics if `bucket >= nbuckets`.
    pub fn chain(&self, bucket: u64) -> Result<Vec<VersionRecord>, PError> {
        assert!(
            bucket < self.nbuckets,
            "bucket {bucket} out of range ({} buckets)",
            self.nbuckets
        );
        let mut out = Vec::new();
        for gen in self.gens_oldest_first()? {
            out.extend(self.chain_in_gen(&gen, bucket)?);
        }
        Ok(out)
    }

    /// Every bucket's published chain (oldest first, spanning every
    /// generation), in bucket order — the linearization witness the KV
    /// verifier checks answers against.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn snapshot(&self) -> Result<Vec<Vec<VersionRecord>>, PError> {
        (0..self.nbuckets).map(|b| self.chain(b)).collect()
    }

    /// The store's current contents as an ordinary map. Replays only
    /// the **active** generation — its carry-overs capture the live
    /// state at the last compaction boundary, so retired history is
    /// redundant here (O(live + recent), not O(lifetime)).
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn contents(&self) -> Result<BTreeMap<u64, i64>, PError> {
        let gen = self.active_gen()?;
        let mut out = BTreeMap::new();
        for b in 0..self.nbuckets {
            for rec in self.chain_in_gen(&gen, b)? {
                if rec.is_delete {
                    out.remove(&rec.key);
                } else {
                    out.insert(rec.key, rec.value);
                }
            }
        }
        Ok(out)
    }

    /// Every generation of the store, oldest first, with its log usage
    /// and retirement state — campaign reports and benches read this.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn generations(&self) -> Result<Vec<GenerationInfo>, PError> {
        self.gens_oldest_first()?
            .into_iter()
            .map(|gen| {
                let off = POffset::new(gen.base);
                Ok(GenerationInfo {
                    number: gen.number,
                    log_cap: gen.log_cap,
                    reserved: self.pmem.read_u64(off + GEN_OFF_LOG_TAIL)?,
                    carried: self.pmem.read_u64(off + GEN_OFF_CARRIED)?,
                    retired: self.pmem.read_u64(off + GEN_OFF_STATE)? == GEN_STATE_RETIRED,
                })
            })
            .collect()
    }

    /// Compacts the store: rewrites the live bucket heads into a fresh
    /// generation and commits it with one persisted root swap. The new
    /// capacity is the old one, grown to twice the live count if the
    /// live set has outgrown it. See [`PKvStore::compact_with_capacity`]
    /// for the full contract.
    ///
    /// # Errors
    ///
    /// A propagated crash (recover with [`PKvStore::recover_compact`]
    /// after restart), or heap exhaustion.
    pub fn compact(&self, heap: &PHeap) -> Result<CompactionStats, PError> {
        self.compact_with_capacity(heap, None)
    }

    /// Compacts the store into a fresh generation of `capacity` records
    /// (`None` = keep the current capacity, grown to twice the live
    /// count if needed).
    ///
    /// The protocol, in persist order:
    ///
    /// 1. replay the active generation's chains and collect the newest
    ///    non-delete record of every key — the live set;
    /// 2. allocate a fresh generation block from `heap` and write the
    ///    live records into it as `carried` records (original tags
    ///    preserved, one chain per bucket), then persist header,
    ///    buckets and carries with **one coalesced flush** — O(live
    ///    keys) persist traffic, never O(history);
    /// 3. commit by swapping the root cell to the new block — the
    ///    single-line selector flip is the only commit point;
    /// 4. mark the old generation retired (advisory; recovery repairs
    ///    it if the crash lands between 3 and 4).
    ///
    /// A crash before step 3 leaves the old generation active and the
    /// half-built block an unreachable orphan; a crash after it leaves
    /// the new generation active. Either way the store reopens
    /// consistent, which is what the crash-point enumeration tests
    /// check boundary by boundary.
    ///
    /// Old generations are retained (chained via their `prev` pointer)
    /// as recovery evidence and verifier witness; only the *active*
    /// generation is ever written again.
    ///
    /// Quiesces the region ([`pstack_nvram::PMem::quiesce`]): waits
    /// out every in-flight lock-free mutator and excludes group
    /// commits for its duration, on eager and batched stores alike.
    /// The discipline is machine-checked through the region's mutator
    /// gate — a racing mutation blocks, it does not corrupt.
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] if `capacity` cannot hold the live
    /// set; a propagated crash (recover with
    /// [`PKvStore::recover_compact`] after restart); heap exhaustion.
    pub fn compact_with_capacity(
        &self,
        heap: &PHeap,
        capacity: Option<u64>,
    ) -> Result<CompactionStats, PError> {
        let _label = op_label("kv.compact");
        let _serialize = self.pmem.quiesce();
        self.compact_locked(heap, capacity)
    }

    /// The compaction body; the caller holds the region quiesced.
    fn compact_locked(
        &self,
        heap: &PHeap,
        capacity: Option<u64>,
    ) -> Result<CompactionStats, PError> {
        let gen = self.active_gen()?;

        // Step 1 — the live set, per bucket in ascending key order
        // (deterministic carry layout).
        let mut live: Vec<Vec<VersionRecord>> = Vec::with_capacity(self.nbuckets as usize);
        let mut live_total = 0u64;
        for b in 0..self.nbuckets {
            let mut newest: BTreeMap<u64, VersionRecord> = BTreeMap::new();
            for rec in self.chain_in_gen(&gen, b)? {
                newest.insert(rec.key, rec);
            }
            let keep: Vec<VersionRecord> = newest.into_values().filter(|r| !r.is_delete).collect();
            live_total += keep.len() as u64;
            live.push(keep);
        }
        let new_cap = match capacity {
            Some(cap) => {
                if cap < live_total {
                    return Err(PError::InvalidConfig(format!(
                        "compaction capacity {cap} cannot hold {live_total} live records"
                    )));
                }
                cap
            }
            None => gen.log_cap.max(live_total * 2),
        };

        // Step 2 — build the new generation: header + buckets zeroed,
        // carries written slot by slot, all volatile on a buffered
        // region until the single coalesced flush below.
        let nb = Self::format_generation(
            &self.pmem,
            heap,
            self.nbuckets,
            new_cap,
            gen.number + 1,
            gen.base,
        )?;
        let new_gen = Gen {
            base: nb,
            number: gen.number + 1,
            log_cap: new_cap,
        };
        // Pipelined compaction overlaps durability with building: every
        // `CARRY_CHUNK` fully-written carry slots are issued as an
        // asynchronous flush flight whose round-trip runs while later
        // buckets are still being collected and written. The final
        // whole-block flight below covers the prefix (header + bucket
        // heads, written throughout this loop) and elides the lines
        // already staged in these chunk flights.
        let pipelined = self.pipeline && self.variant != KvVariant::NoPersistBeforeSwap;
        const CARRY_CHUNK: u64 = 64;
        let mut carry_tickets: Vec<FlushTicket> = Vec::new();
        let mut issued_upto = 0u64;
        let mut slot = 0u64;
        for (b, keep) in live.iter().enumerate() {
            let mut head = 0u64;
            for rec in keep {
                let off = self.record_off(&new_gen, slot);
                self.write_record(
                    off,
                    KIND_CARRY,
                    rec.key,
                    rec.value,
                    (rec.pid, rec.seq),
                    head,
                )?;
                head = off;
                slot += 1;
            }
            if head != 0 {
                // persist-lint: allow(publish-no-persist) the step-2 flush below covers header+buckets+carries in one round-trip
                self.pmem
                    .write_u64(self.bucket_off_at(&new_gen, b as u64), head)?;
            }
            if pipelined && slot - issued_upto >= CARRY_CHUNK {
                carry_tickets.push(self.pmem.flush_async(
                    POffset::new(self.record_off(&new_gen, issued_upto)),
                    ((slot - issued_upto) * RECORD_STRIDE) as usize,
                )?);
                issued_upto = slot;
            }
        }
        self.pmem
            .write_u64(POffset::new(nb + GEN_OFF_LOG_TAIL), live_total)?;
        self.pmem
            .write_u64(POffset::new(nb + GEN_OFF_CARRIED), live_total)?;
        // One persist round-trip covers the contiguous prefix: header,
        // buckets and every carry slot. (No-op on an eager region.)
        // KvVariant::NoPersistBeforeSwap omits it — PSan's negative
        // control: the root swap below then commits a still-volatile
        // generation, which the sanitizer flags at the selector flip.
        let new_block_len = gen_prefix_len(self.nbuckets) + live_total * RECORD_STRIDE;
        if pipelined {
            // The final flight: the prefix (header + bucket heads) and
            // any carries past the last full chunk. Carry lines already
            // staged in the chunk flights are elided line by line, so
            // no byte is persisted twice. Awaiting in issue order then
            // drains the whole pipeline in about one round-trip.
            carry_tickets.push(
                self.pmem
                    .flush_async(POffset::new(nb), new_block_len as usize)?,
            );
            for ticket in &carry_tickets {
                self.pmem.await_ticket(ticket)?;
            }
        } else if self.variant != KvVariant::NoPersistBeforeSwap {
            self.pmem.flush(POffset::new(nb), new_block_len as usize)?;
        }

        // Step 3 — the commit point. Declare the new block as the
        // swap's commit extent so PSan checks every reachable line (not
        // just the line at `nb`) for durability at the selector flip.
        Self::register_publish_range(&self.pmem, nb, self.nbuckets);
        self.pmem
            .psan_declare_commit(POffset::new(nb), new_block_len as usize);
        self.cell.swap(new_gen.number, nb).map_err(PError::from)?;

        // Step 4 — retire the old generation (advisory, repaired by
        // recover_compact if a crash lands before it persists), and
        // register its extent with the heap: a `free` on retained
        // recovery evidence must fail typed, not corrupt silently.
        self.pmem
            .write_u64(POffset::new(gen.base + GEN_OFF_STATE), GEN_STATE_RETIRED)?;
        self.pmem.flush(POffset::new(gen.base + GEN_OFF_STATE), 8)?;
        heap.register_retired_extent(
            POffset::new(gen.base),
            gen_block_len(self.nbuckets, gen.log_cap),
        );

        let old_reserved = self
            .pmem
            .read_u64(POffset::new(gen.base + GEN_OFF_LOG_TAIL))?;
        Ok(CompactionStats {
            from_gen: gen.number,
            to_gen: new_gen.number,
            carried: live_total,
            dropped: old_reserved.saturating_sub(live_total),
            new_capacity: new_cap,
        })
    }

    /// Registers every non-active generation's extent as retired with
    /// `heap` ([`PHeap::register_retired_extent`]): the heap's registry
    /// is volatile, so a recovery boot re-walks the `prev` chain and
    /// re-arms the guard before any client could `free` retained
    /// evidence. Called by [`PKvStore::recover_compact`]; call it
    /// directly after a plain reopen when the heap outlives the boot.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn register_retired_generations(&self, heap: &PHeap) -> Result<(), PError> {
        for gen in self.gens_oldest_first()? {
            if gen.number != self.active_gen()?.number {
                heap.register_retired_extent(
                    POffset::new(gen.base),
                    gen_block_len(self.nbuckets, gen.log_cap),
                );
            }
        }
        Ok(())
    }

    /// The evidence-scanning recovery dual of [`PKvStore::compact`]:
    /// completes a compaction that was interrupted after it started
    /// from generation `from_gen`.
    ///
    /// * If the root cell has already moved past `from_gen`, the swap
    ///   committed before the crash — the compaction *happened*; this
    ///   only repairs the idempotent retirement mark and returns
    ///   `Ok(true)`.
    /// * If the root cell still names `from_gen`, the crash landed
    ///   before the commit point; the half-built block (if any) is an
    ///   unreachable orphan and the compaction is safely re-executed
    ///   from the current state. Returns `Ok(false)`.
    ///
    /// Idempotent: crash it and re-run it as often as the fault
    /// injector likes.
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] if `from_gen` is *newer* than the
    /// active generation (the caller's bookkeeping is broken); a
    /// propagated crash (re-run after restart).
    pub fn recover_compact(&self, heap: &PHeap, from_gen: u64) -> Result<bool, PError> {
        let _label = op_label("kv.recover_compact");
        let _phase = pstack_telemetry::phase("recovery.compact-dual");
        let _serialize = self.pmem.quiesce();
        let gen = self.active_gen()?;
        match gen.number.cmp(&from_gen) {
            std::cmp::Ordering::Less => Err(PError::InvalidConfig(format!(
                "recover_compact from generation {from_gen}, but the store is at {}",
                gen.number
            ))),
            std::cmp::Ordering::Greater => {
                let prev = self.pmem.read_u64(POffset::new(gen.base + GEN_OFF_PREV))?;
                if prev != 0 {
                    let state = self.pmem.read_u64(POffset::new(prev + GEN_OFF_STATE))?;
                    if state != GEN_STATE_RETIRED {
                        self.pmem
                            .write_u64(POffset::new(prev + GEN_OFF_STATE), GEN_STATE_RETIRED)?;
                        self.pmem.flush(POffset::new(prev + GEN_OFF_STATE), 8)?;
                    }
                }
                self.register_retired_generations(heap)?;
                Ok(true)
            }
            std::cmp::Ordering::Equal => {
                self.compact_locked(heap, None)?;
                Ok(false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_nvram::{FailPlan, PMemBuilder};

    fn fixture(nbuckets: u64, log_cap: u64) -> (PMem, PHeap, PKvStore) {
        // PSan shadows every store test: the protocols must never trip
        // the sanitizer (checked per-test where state is inspected).
        let pmem = PMemBuilder::new()
            .len(1 << 19)
            .eager_flush(true)
            .psan(true)
            .build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 19).unwrap();
        let kv = PKvStore::format(pmem.clone(), &heap, nbuckets, log_cap, KvVariant::Nsrl).unwrap();
        (pmem, heap, kv)
    }

    #[test]
    fn put_get_delete_cas_semantics() {
        let (_, _, kv) = fixture(8, 64);
        assert_eq!(kv.get(1).unwrap(), None);
        assert!(kv.put(0, 1, 1, 100).unwrap());
        assert!(kv.put(0, 2, 2, 200).unwrap());
        assert_eq!(kv.get(1).unwrap(), Some(100));
        assert!(kv.put(0, 3, 1, 101).unwrap(), "overwrite succeeds");
        assert_eq!(kv.get(1).unwrap(), Some(101));
        assert!(!kv.cas(0, 4, 1, 100, 999).unwrap(), "stale expected fails");
        assert!(kv.cas(0, 5, 1, 101, 102).unwrap());
        assert_eq!(kv.get(1).unwrap(), Some(102));
        assert!(!kv.cas(0, 6, 99, 0, 1).unwrap(), "absent key fails cas");
        assert!(kv.delete(0, 7, 1).unwrap());
        assert_eq!(kv.get(1).unwrap(), None);
        assert!(!kv.delete(0, 8, 1).unwrap(), "double delete reports absent");
        assert!(!kv.cas(0, 9, 1, 102, 103).unwrap(), "deleted key fails cas");
        assert_eq!(kv.get(2).unwrap(), Some(200));
    }

    #[test]
    fn put_after_delete_reinserts() {
        let (_, _, kv) = fixture(4, 32);
        kv.put(0, 1, 5, 50).unwrap();
        kv.delete(0, 2, 5).unwrap();
        assert!(kv.put(0, 3, 5, 51).unwrap());
        assert_eq!(kv.get(5).unwrap(), Some(51));
    }

    #[test]
    fn log_capacity_is_lifetime_bounded() {
        let (_, _, kv) = fixture(2, 3);
        assert!(kv.put(0, 1, 1, 1).unwrap());
        assert!(kv.put(0, 2, 2, 2).unwrap());
        assert!(kv.put(0, 3, 3, 3).unwrap());
        assert!(!kv.put(0, 4, 4, 4).unwrap(), "log exhausted");
        // Deletes and cas also need log slots.
        assert!(!kv.delete(0, 5, 1).unwrap());
        assert!(!kv.cas(0, 6, 1, 1, 9).unwrap());
        // Reads still work.
        assert_eq!(kv.get(2).unwrap(), Some(2));
        assert_eq!(kv.log_reserved().unwrap(), 3);
    }

    fn buffered_fixture(nbuckets: u64, log_cap: u64) -> (PMem, PHeap, PKvStore) {
        let pmem = PMemBuilder::new().len(1 << 19).psan(true).build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 19).unwrap();
        let kv = PKvStore::format(pmem.clone(), &heap, nbuckets, log_cap, KvVariant::Nsrl).unwrap();
        (pmem, heap, kv)
    }

    fn pipelined_fixture(nbuckets: u64, log_cap: u64) -> (PMem, PHeap, PKvStore) {
        let (pmem, heap, mut kv) = buffered_fixture(nbuckets, log_cap);
        kv.set_pipeline(true);
        assert!(kv.is_pipelined());
        (pmem, heap, kv)
    }

    #[test]
    fn pipelined_batch_matches_synchronous_outcomes_and_state() {
        let ops = [
            KvBatchOp::Put {
                pid: 0,
                seq: 1,
                key: 7,
                value: 70,
            },
            KvBatchOp::Cas {
                pid: 0,
                seq: 2,
                key: 7,
                expected: 70,
                new: 71,
            },
            KvBatchOp::Delete {
                pid: 0,
                seq: 3,
                key: 9,
            },
            KvBatchOp::Put {
                pid: 0,
                seq: 4,
                key: 8,
                value: 80,
            },
        ];
        let (_, _, sync_kv) = buffered_fixture(8, 64);
        let (pmem, _, pipe_kv) = pipelined_fixture(8, 64);
        let sync_out = sync_kv.apply_batch(&ops).unwrap();
        let pipe_out = pipe_kv.apply_batch(&ops).unwrap();
        assert_eq!(sync_out, pipe_out);
        assert_eq!(sync_kv.contents().unwrap(), pipe_kv.contents().unwrap());
        assert_eq!(pipe_kv.flush_epoch().unwrap(), 1);
        assert_eq!(pmem.inflight_tickets(), 0, "commit drains its flights");
        let snap = pmem.stats().snapshot();
        assert!(snap.async_flushes >= 2, "records + tail rode flights");
        // Everything the epoch advertises is durable.
        pmem.crash_now(0, 0.0);
        let pmem2 = pmem.reopen().unwrap();
        let kv2 = PKvStore::open(pmem2.clone(), pipe_kv.base(), KvVariant::Nsrl).unwrap();
        assert_eq!(kv2.get(7).unwrap(), Some(71));
        assert_eq!(kv2.get(8).unwrap(), Some(80));
        assert_eq!(kv2.flush_epoch().unwrap(), 1);
        assert!(pmem2.psan_violations().is_empty());
    }

    #[test]
    fn pipelined_batch_saves_a_round_trip() {
        // With device latency L, a synchronous batch pays 4 round-trips
        // (records, tail, heads, epoch); the pipeline overlaps records
        // with the tail and pays ~3.
        let lat = std::time::Duration::from_millis(5);
        let mk = |pipeline: bool| {
            let pmem = PMemBuilder::new()
                .len(1 << 19)
                .flush_latency(lat)
                .build_in_memory();
            let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 19).unwrap();
            let mut kv = PKvStore::format(pmem.clone(), &heap, 8, 64, KvVariant::Nsrl).unwrap();
            kv.set_pipeline(pipeline);
            let ops: Vec<KvBatchOp> = (0..16)
                .map(|i| KvBatchOp::Put {
                    pid: 0,
                    seq: i + 1,
                    key: i,
                    value: i as i64,
                })
                .collect();
            let t0 = std::time::Instant::now();
            kv.apply_batch(&ops).unwrap();
            t0.elapsed()
        };
        let sync = mk(false);
        let pipe = mk(true);
        assert!(sync >= lat * 4, "sync batch pays 4 round-trips: {sync:?}");
        assert!(
            pipe < sync - lat / 2,
            "pipeline must save most of a round-trip: sync {sync:?} vs pipelined {pipe:?}"
        );
    }

    #[test]
    fn uncommitted_pending_batch_leaves_invisible_orphans() {
        let (pmem, _, kv) = pipelined_fixture(8, 64);
        let pending = kv
            .apply_batch_begin(&[KvBatchOp::Put {
                pid: 0,
                seq: 1,
                key: 7,
                value: 70,
            }])
            .unwrap();
        assert!(pending.is_staged());
        drop(pending);
        // Records staged but never published: invisible, epoch
        // unmoved, and the abandoned flights are simply drained by the
        // next synchronization point.
        assert_eq!(kv.get(7).unwrap(), None);
        assert_eq!(kv.flush_epoch().unwrap(), 0);
        pmem.fence();
        assert_eq!(pmem.inflight_tickets(), 0);
        assert!(kv.put(0, 2, 7, 71).unwrap(), "store still writable");
        assert_eq!(kv.get(7).unwrap(), Some(71));
    }

    #[test]
    fn pipelined_compaction_preserves_live_state() {
        let (pmem, heap, kv) = pipelined_fixture(8, 256);
        // 128 live keys → two full 64-slot carry chunks, so the chunk
        // flights really overlap with carry building.
        for i in 0..128u64 {
            assert!(kv.put(0, i + 1, i, i as i64).unwrap());
        }
        let stats = kv.compact(&heap).unwrap();
        assert_eq!(stats.carried, 128);
        assert_eq!(pmem.inflight_tickets(), 0, "compaction drained its flights");
        let snap = pmem.stats().snapshot();
        assert!(
            snap.elided_lines > 0,
            "the whole-block flight must elide chunk-staged carry lines"
        );
        pmem.crash_now(0, 0.0);
        let pmem2 = pmem.reopen().unwrap();
        let kv2 = PKvStore::open(pmem2.clone(), kv.base(), KvVariant::Nsrl).unwrap();
        assert_eq!(kv2.generation().unwrap(), 1);
        for i in 0..128u64 {
            assert_eq!(kv2.get(i).unwrap(), Some(i as i64));
        }
        assert!(pmem2.psan_violations().is_empty());
    }

    #[test]
    fn pipelined_early_publish_variant_is_flagged_at_the_head_cas() {
        use pstack_nvram::PsanViolationKind;
        let pmem = PMemBuilder::new().len(1 << 19).psan(true).build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 19).unwrap();
        let mut kv = PKvStore::format(pmem.clone(), &heap, 8, 64, KvVariant::EarlyPublish).unwrap();
        kv.set_pipeline(true);
        kv.apply_batch(&[KvBatchOp::Put {
            pid: 0,
            seq: 1,
            key: 7,
            value: 70,
        }])
        .unwrap();
        let violations = pmem.psan_violations();
        assert!(
            violations
                .iter()
                .any(|v| matches!(v.kind, PsanViolationKind::EarlyPublish { .. })),
            "pipelined negative control must still trip PSan: {violations:?}"
        );
    }

    #[test]
    fn buffered_region_yields_a_batched_store() {
        let (pmem, _, kv) = buffered_fixture(8, 64);
        assert!(!kv.is_eager());
        assert!(kv.put(0, 1, 7, 70).unwrap());
        assert!(kv.cas(0, 2, 7, 70, 71).unwrap());
        assert_eq!(kv.get(7).unwrap(), Some(71));
        // Every per-op mutation runs lock-free detectable publication:
        // record, tail and head are all durable before it returns.
        pmem.crash_now(0, 0.0);
        let pmem2 = pmem.reopen().unwrap();
        let kv2 = PKvStore::open(pmem2, kv.base(), KvVariant::Nsrl).unwrap();
        assert_eq!(kv2.get(7).unwrap(), Some(71));
        assert_eq!(kv2.log_reserved().unwrap(), 2);
        // The flush epoch counts *group commits*; lock-free per-op
        // publication is epoch-free — its durability is detectable
        // per record from the log evidence.
        assert_eq!(kv2.flush_epoch().unwrap(), 0, "no epochs without batches");
        assert!(pmem.psan_violations().is_empty());
    }

    #[test]
    fn batch_sees_its_own_staged_effects() {
        let (_, _, kv) = buffered_fixture(4, 64);
        let out = kv
            .apply_batch(&[
                KvBatchOp::Put {
                    pid: 0,
                    seq: 1,
                    key: 1,
                    value: 10,
                },
                KvBatchOp::Cas {
                    pid: 0,
                    seq: 2,
                    key: 1,
                    expected: 10,
                    new: 11,
                },
                KvBatchOp::Delete {
                    pid: 0,
                    seq: 3,
                    key: 1,
                },
                KvBatchOp::Put {
                    pid: 0,
                    seq: 4,
                    key: 1,
                    value: 12,
                },
                KvBatchOp::Cas {
                    pid: 0,
                    seq: 5,
                    key: 9,
                    expected: 0,
                    new: 1,
                },
                KvBatchOp::Delete {
                    pid: 0,
                    seq: 6,
                    key: 9,
                },
            ])
            .unwrap();
        assert_eq!(
            out,
            vec![
                KvApplied::Applied,
                KvApplied::Applied,
                KvApplied::Applied,
                KvApplied::Applied,
                KvApplied::PrecondFailed,
                KvApplied::PrecondFailed,
            ]
        );
        assert_eq!(kv.get(1).unwrap(), Some(12));
        assert_eq!(kv.get(9).unwrap(), None);
        assert_eq!(kv.flush_epoch().unwrap(), 1, "one commit for the batch");
    }

    #[test]
    fn empty_and_no_effect_batches_skip_the_flush_protocol() {
        let (pmem, _, kv) = buffered_fixture(4, 64);
        kv.put(0, 1, 5, 50).unwrap();
        let before = pmem.stats().snapshot();
        assert!(kv.apply_batch(&[]).unwrap().is_empty());
        let out = kv
            .apply_batch(&[KvBatchOp::Delete {
                pid: 0,
                seq: 2,
                key: 99,
            }])
            .unwrap();
        assert_eq!(out, vec![KvApplied::PrecondFailed]);
        let delta = pmem.stats().snapshot() - before;
        assert_eq!(delta.persists, 0, "nothing staged, nothing persisted");
        assert_eq!(kv.flush_epoch().unwrap(), 0, "no epoch for empty commits");
    }

    #[test]
    fn group_commit_coalesces_persists() {
        // The batching headline: k mutations in one batch cost far
        // fewer persist round-trips than k singleton commits.
        let (batched_pmem, _, batched) = buffered_fixture(4, 64);
        let (per_op_pmem, _, per_op) = buffered_fixture(4, 64);
        let ops: Vec<KvBatchOp> = (0..16)
            .map(|i| KvBatchOp::Put {
                pid: 0,
                seq: i + 1,
                key: i,
                value: i as i64,
            })
            .collect();

        let before = batched_pmem.stats().snapshot();
        assert!(batched
            .apply_batch(&ops)
            .unwrap()
            .iter()
            .all(|o| o.took_effect()));
        let batched_delta = batched_pmem.stats().snapshot() - before;

        let before = per_op_pmem.stats().snapshot();
        for &op in &ops {
            assert!(per_op.apply_batch(&[op]).unwrap()[0].took_effect());
        }
        let per_op_delta = per_op_pmem.stats().snapshot() - before;

        assert_eq!(batched.contents().unwrap(), per_op.contents().unwrap());
        assert!(
            batched_delta.persists * 3 <= per_op_delta.persists,
            "batched {} vs per-op {} persist round-trips",
            batched_delta.persists,
            per_op_delta.persists,
        );
        assert!(
            batched_delta.coalesced_lines > 0,
            "record persists must coalesce: {batched_delta:?}"
        );
    }

    #[test]
    fn log_full_mid_batch_reports_per_op() {
        let (_, _, kv) = buffered_fixture(2, 2);
        let ops: Vec<KvBatchOp> = (0..4)
            .map(|i| KvBatchOp::Put {
                pid: 0,
                seq: i + 1,
                key: i,
                value: 1,
            })
            .collect();
        let out = kv.apply_batch(&ops).unwrap();
        assert_eq!(
            out,
            vec![
                KvApplied::Applied,
                KvApplied::Applied,
                KvApplied::LogFull,
                KvApplied::LogFull,
            ]
        );
        assert_eq!(kv.contents().unwrap().len(), 2);
    }

    #[test]
    fn batch_crash_points_leave_no_lost_or_torn_heads() {
        // The group-commit publish path, exhaustively: crash at every
        // persistence event inside a batch window. After recovery the
        // published state must be per-bucket all-or-nothing (no torn
        // heads), and the recovery duals must complete every op exactly
        // once.
        let ops = [
            KvBatchOp::Put {
                pid: 1,
                seq: 1,
                key: 0,
                value: 10,
            },
            KvBatchOp::Put {
                pid: 1,
                seq: 2,
                key: 2,
                value: 20,
            },
            // Same bucket pressure: nbuckets = 2, so keys collide and
            // chain within the batch.
            KvBatchOp::Put {
                pid: 1,
                seq: 3,
                key: 4,
                value: 40,
            },
            KvBatchOp::Cas {
                pid: 1,
                seq: 4,
                key: 0,
                expected: 10,
                new: 11,
            },
            KvBatchOp::Delete {
                pid: 1,
                seq: 5,
                key: 2,
            },
        ];
        let probe = || {
            let pmem = PMemBuilder::new().len(1 << 16).psan(true).build_in_memory();
            let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 16).unwrap();
            let kv = PKvStore::format(pmem.clone(), &heap, 2, 16, KvVariant::Nsrl).unwrap();
            (pmem, kv)
        };
        let (pmem, kv) = probe();
        let e0 = pmem.events();
        let out = kv.apply_batch(&ops).unwrap();
        assert!(out.iter().all(|o| o.took_effect()));
        let total = pmem.events() - e0;
        let want = kv.contents().unwrap();
        assert!(total > 8, "the batch window spans many flush boundaries");

        for k in 0..total {
            let (pmem, kv) = probe();
            pmem.arm_failpoint(FailPlan::after_events(k));
            let err = kv.apply_batch(&ops).unwrap_err();
            assert!(err.is_crash(), "crash at event {k}");
            let pmem2 = pmem.reopen().unwrap();
            let kv2 = PKvStore::open(pmem2.clone(), kv.base(), KvVariant::Nsrl).unwrap();

            // No torn state: every published record decodes, every
            // chain walks, and published tags are unique.
            let mut tags = std::collections::HashSet::new();
            for chain in kv2.snapshot().unwrap() {
                for rec in chain {
                    assert!(tags.insert((rec.pid, rec.seq)), "crash at {k}: dup tag");
                }
            }
            // Per-bucket all-or-nothing: a bucket publishes either none
            // or all of its batch records (one head flip per bucket).
            for bucket in 0..2 {
                let batch_recs = kv2
                    .chain(bucket)
                    .unwrap()
                    .iter()
                    .filter(|r| r.pid == 1)
                    .count();
                let full = ops.iter().filter(|op| mix(op.key()) % 2 == bucket).count();
                assert!(
                    batch_recs == 0 || batch_recs == full,
                    "crash at {k}: bucket {bucket} published {batch_recs}/{full} — torn batch"
                );
            }

            // Recovery duals complete the batch exactly once.
            assert!(kv2.recover_put(1, 1, 0, 10).unwrap());
            assert!(kv2.recover_put(1, 2, 2, 20).unwrap());
            assert!(kv2.recover_put(1, 3, 4, 40).unwrap());
            assert!(kv2.recover_cas(1, 4, 0, 10, 11).unwrap());
            assert!(kv2.recover_delete(1, 5, 2).unwrap());
            assert_eq!(kv2.contents().unwrap(), want, "crash at event {k}");
            let published: usize = kv2.snapshot().unwrap().iter().map(Vec::len).sum();
            assert_eq!(published, ops.len(), "crash at {k}: duplicate application");
            let violations = pmem2.psan_violations();
            assert!(
                violations.is_empty(),
                "crash at {k}: PSan flagged the correct protocol: {violations:?}"
            );
        }
    }

    #[test]
    fn pipelined_crash_points_keep_exactly_the_completed_flight_prefix() {
        // The async-pipeline dual of the sweep above: crash at every
        // persistence event inside a *pipelined* batch window, so kills
        // land with zero, one, and two flights in the device queue —
        // before the first issue, between the record and tail issues,
        // between issue and await, and after the publish CAS. Whatever
        // the cut, recovery must see exactly the completed-flight
        // prefix durable: decodable records, unique tags, per-bucket
        // all-or-nothing heads, and recovery duals that finish the
        // batch exactly once.
        let ops = [
            KvBatchOp::Put {
                pid: 1,
                seq: 1,
                key: 0,
                value: 10,
            },
            KvBatchOp::Put {
                pid: 1,
                seq: 2,
                key: 2,
                value: 20,
            },
            KvBatchOp::Put {
                pid: 1,
                seq: 3,
                key: 4,
                value: 40,
            },
            KvBatchOp::Cas {
                pid: 1,
                seq: 4,
                key: 0,
                expected: 10,
                new: 11,
            },
            KvBatchOp::Delete {
                pid: 1,
                seq: 5,
                key: 2,
            },
        ];
        let probe = || {
            let pmem = PMemBuilder::new().len(1 << 16).psan(true).build_in_memory();
            let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 16).unwrap();
            let mut kv = PKvStore::format(pmem.clone(), &heap, 2, 16, KvVariant::Nsrl).unwrap();
            kv.set_pipeline(true);
            (pmem, kv)
        };

        // Golden run: the batch stages two overlapping flights (records
        // and log tail), both still queued when `begin` returns.
        let (pmem, kv) = probe();
        let e0 = pmem.events();
        let pending = kv.apply_batch_begin(&ops).unwrap();
        let staged_events = pmem.events() - e0;
        assert_eq!(pmem.inflight_tickets(), 2, "records + tail in flight");
        assert!(pending.commit().unwrap().iter().all(|o| o.took_effect()));
        let total = pmem.events() - e0;
        let want = kv.contents().unwrap();
        assert!(total > staged_events, "publish consumes events too");

        let mut inflight_kills = 0usize;
        for k in 0..total {
            let (pmem, kv) = probe();
            pmem.arm_failpoint(FailPlan::after_events(k));
            let err = kv.apply_batch(&ops).unwrap_err();
            assert!(err.is_crash(), "crash at event {k}");
            // Countdowns landing before the staging point cut the
            // window while flights are still queued on the device.
            if k < staged_events {
                inflight_kills += 1;
            }
            let pmem2 = pmem.reopen().unwrap();
            let kv2 = PKvStore::open(pmem2.clone(), kv.base(), KvVariant::Nsrl).unwrap();

            let mut tags = std::collections::HashSet::new();
            for chain in kv2.snapshot().unwrap() {
                for rec in chain {
                    assert!(tags.insert((rec.pid, rec.seq)), "crash at {k}: dup tag");
                }
            }
            for bucket in 0..2 {
                let batch_recs = kv2
                    .chain(bucket)
                    .unwrap()
                    .iter()
                    .filter(|r| r.pid == 1)
                    .count();
                let full = ops.iter().filter(|op| mix(op.key()) % 2 == bucket).count();
                assert!(
                    batch_recs == 0 || batch_recs == full,
                    "crash at {k}: bucket {bucket} published {batch_recs}/{full} — torn batch"
                );
            }

            assert!(kv2.recover_put(1, 1, 0, 10).unwrap());
            assert!(kv2.recover_put(1, 2, 2, 20).unwrap());
            assert!(kv2.recover_put(1, 3, 4, 40).unwrap());
            assert!(kv2.recover_cas(1, 4, 0, 10, 11).unwrap());
            assert!(kv2.recover_delete(1, 5, 2).unwrap());
            assert_eq!(kv2.contents().unwrap(), want, "crash at event {k}");
            let published: usize = kv2.snapshot().unwrap().iter().map(Vec::len).sum();
            assert_eq!(published, ops.len(), "crash at {k}: duplicate application");
            let violations = pmem2.psan_violations();
            assert!(
                violations.is_empty(),
                "crash at {k}: PSan flagged the correct protocol: {violations:?}"
            );
        }
        assert!(
            inflight_kills > 2,
            "the sweep never cut the window with flights in flight"
        );
    }

    #[test]
    fn independently_opened_handles_serialize_group_commits() {
        // The batch lock is region-scoped, not handle-scoped: a second
        // handle from PKvStore::open (not a clone) must serialize with
        // the first, or concurrent commits would race the publish CAS.
        let (pmem, _, kv) = buffered_fixture(4, 4096);
        let kv2 = PKvStore::open(pmem.clone(), kv.base(), KvVariant::Nsrl).unwrap();
        let per = 256u64;
        std::thread::scope(|s| {
            for (w, handle) in [kv.clone(), kv2].into_iter().enumerate() {
                s.spawn(move || {
                    let w = w as u64;
                    let ops: Vec<KvBatchOp> = (0..per)
                        .map(|i| KvBatchOp::Put {
                            pid: w,
                            seq: i + 1,
                            key: w * per + i,
                            value: i as i64,
                        })
                        .collect();
                    for chunk in ops.chunks(16) {
                        assert!(handle
                            .apply_batch(chunk)
                            .unwrap()
                            .iter()
                            .all(|o| o.took_effect()));
                    }
                });
            }
        });
        assert_eq!(kv.contents().unwrap().len(), 2 * per as usize);
        assert_eq!(kv.log_reserved().unwrap(), 2 * per);
    }

    #[test]
    fn recover_batch_completes_exactly_once_and_is_idempotent() {
        let (_, _, kv) = buffered_fixture(4, 64);
        assert!(kv.put(1, 1, 10, 100).unwrap());
        let ops = [
            // Linearized before the "crash": evidence skips it.
            KvBatchOp::Put {
                pid: 1,
                seq: 1,
                key: 10,
                value: 100,
            },
            // Never ran: re-executed through the group commit.
            KvBatchOp::Put {
                pid: 1,
                seq: 2,
                key: 11,
                value: 110,
            },
            // No evidence and no key: re-executes to a clean no-effect.
            KvBatchOp::Delete {
                pid: 1,
                seq: 3,
                key: 99,
            },
        ];
        for round in 0..2 {
            let out = kv.recover_batch(&ops).unwrap();
            assert_eq!(
                out,
                vec![
                    KvApplied::Applied,
                    KvApplied::Applied,
                    KvApplied::PrecondFailed,
                ],
                "recovery round {round}"
            );
            let published: usize = kv.snapshot().unwrap().iter().map(Vec::len).sum();
            assert_eq!(published, 2, "recovery round {round}: no duplicates");
        }
        assert_eq!(kv.get(11).unwrap(), Some(110));
    }

    #[test]
    fn recover_batch_noscan_double_applies() {
        let pmem = PMemBuilder::new().len(1 << 18).build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 18).unwrap();
        let kv = PKvStore::format(pmem, &heap, 4, 32, KvVariant::NoScan).unwrap();
        assert!(kv.put(0, 1, 1, 10).unwrap());
        let out = kv
            .recover_batch(&[KvBatchOp::Put {
                pid: 0,
                seq: 1,
                key: 1,
                value: 10,
            }])
            .unwrap();
        assert_eq!(out, vec![KvApplied::Applied]);
        let published: usize = kv.snapshot().unwrap().iter().map(Vec::len).sum();
        assert_eq!(published, 2, "no-scan batched recovery must re-execute");
    }

    #[test]
    fn flush_epoch_counts_only_durable_batches() {
        let (pmem, _, kv) = buffered_fixture(4, 64);
        for s in 0..3 {
            kv.apply_batch(&[KvBatchOp::Put {
                pid: 0,
                seq: s + 1,
                key: s,
                value: 1,
            }])
            .unwrap();
        }
        assert_eq!(kv.flush_epoch().unwrap(), 3);
        pmem.crash_now(0, 0.0);
        let pmem2 = pmem.reopen().unwrap();
        let kv2 = PKvStore::open(pmem2, kv.base(), KvVariant::Nsrl).unwrap();
        assert_eq!(kv2.flush_epoch().unwrap(), 3, "epoch bump is persisted");
    }

    #[test]
    fn open_round_trips_and_rejects_garbage() {
        let (pmem, heap, kv) = fixture(8, 32);
        kv.put(1, 1, 42, -7).unwrap();
        let kv2 = PKvStore::open(pmem.clone(), kv.base(), KvVariant::Nsrl).unwrap();
        assert_eq!(kv2.nbuckets(), 8);
        assert_eq!(kv2.log_capacity().unwrap(), 32);
        assert_eq!(kv2.get(42).unwrap(), Some(-7));
        let junk = heap.alloc_zeroed(128).unwrap();
        assert!(matches!(
            PKvStore::open(pmem, junk, KvVariant::Nsrl),
            Err(PError::CorruptStack(_))
        ));
    }

    #[test]
    fn contents_and_chains_reflect_history() {
        let (_, _, kv) = fixture(4, 64);
        kv.put(0, 1, 10, 1).unwrap();
        kv.put(0, 2, 11, 2).unwrap();
        kv.put(0, 3, 10, 3).unwrap();
        kv.delete(0, 4, 11).unwrap();
        let contents = kv.contents().unwrap();
        assert_eq!(contents.get(&10), Some(&3));
        assert_eq!(contents.get(&11), None);
        let total: usize = kv.snapshot().unwrap().iter().map(Vec::len).sum();
        assert_eq!(total, 4, "every published mutation appears exactly once");
        // The delete record carries the removed value.
        let del = kv
            .snapshot()
            .unwrap()
            .into_iter()
            .flatten()
            .find(|r| r.is_delete)
            .unwrap();
        assert_eq!(del.key, 11);
        assert_eq!(del.value, 2);
    }

    #[test]
    fn state_survives_crash_and_reopen() {
        let (pmem, _, kv) = fixture(8, 64);
        kv.put(0, 1, 7, 70).unwrap();
        kv.put(0, 2, 8, 80).unwrap();
        kv.delete(0, 3, 8).unwrap();
        pmem.crash_now(0, 0.0); // eager region: nothing volatile to lose
        let pmem2 = pmem.reopen().unwrap();
        let kv2 = PKvStore::open(pmem2, kv.base(), KvVariant::Nsrl).unwrap();
        assert_eq!(kv2.get(7).unwrap(), Some(70));
        assert_eq!(kv2.get(8).unwrap(), None);
    }

    #[test]
    fn recovery_sees_linearized_ops() {
        let (_, _, kv) = fixture(8, 64);
        assert!(kv.put(3, 9, 1, 11).unwrap());
        assert!(kv.recover_put(3, 9, 1, 11).unwrap());
        assert_eq!(kv.log_reserved().unwrap(), 1, "no second application");
        assert!(kv.cas(2, 10, 1, 11, 12).unwrap());
        assert!(kv.recover_cas(2, 10, 1, 11, 12).unwrap());
        assert!(kv.delete(1, 11, 1).unwrap());
        assert!(kv.recover_delete(1, 11, 1).unwrap());
        assert_eq!(kv.log_reserved().unwrap(), 3);
        assert_eq!(kv.get(1).unwrap(), None);
    }

    #[test]
    fn recovery_reexecutes_unlinearized_ops() {
        let (_, _, kv) = fixture(8, 64);
        assert!(kv.recover_put(0, 1, 5, 55).unwrap());
        assert_eq!(kv.get(5).unwrap(), Some(55));
        assert!(kv.recover_delete(0, 2, 5).unwrap());
        assert_eq!(kv.get(5).unwrap(), None);
        assert!(!kv.recover_cas(0, 3, 5, 55, 56).unwrap());
    }

    #[test]
    fn noscan_variant_double_applies() {
        let pmem = PMemBuilder::new()
            .len(1 << 18)
            .eager_flush(true)
            .build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 18).unwrap();
        let kv = PKvStore::format(pmem, &heap, 4, 32, KvVariant::NoScan).unwrap();
        assert!(kv.put(0, 1, 1, 10).unwrap());
        assert!(kv.recover_put(0, 1, 1, 10).unwrap());
        let records: Vec<VersionRecord> = kv.snapshot().unwrap().into_iter().flatten().collect();
        assert_eq!(records.len(), 2, "double application must be visible");
        assert_eq!(records[0].seq, records[1].seq);
    }

    #[test]
    fn crash_point_enumeration_put_recovers_exactly_once() {
        let probe = || fixture(4, 16);
        let (pmem, _, kv) = probe();
        let e0 = pmem.events();
        assert!(kv.put(0, 1, 7, 77).unwrap());
        let total = pmem.events() - e0;
        assert!(total >= 2, "reserve CAS + record write + head CAS");

        for k in 0..total {
            let (pmem, _, kv) = probe();
            pmem.arm_failpoint(FailPlan::after_events(k));
            let err = kv.put(0, 1, 7, 77).unwrap_err();
            assert!(err.is_crash());
            let pmem2 = pmem.reopen().unwrap();
            let kv2 = PKvStore::open(pmem2, kv.base(), KvVariant::Nsrl).unwrap();
            assert!(kv2.recover_put(0, 1, 7, 77).unwrap(), "crash at event {k}");
            assert_eq!(kv2.get(7).unwrap(), Some(77), "crash at event {k}");
            let published: usize = kv2.snapshot().unwrap().iter().map(Vec::len).sum();
            assert_eq!(published, 1, "crash at event {k}: exactly one record");
        }
    }

    #[test]
    fn crash_point_enumeration_delete_recovers_exactly_once() {
        let probe = || {
            let (pmem, heap, kv) = fixture(4, 16);
            kv.put(0, 1, 7, 77).unwrap();
            (pmem, heap, kv)
        };
        let (pmem, _, kv) = probe();
        let e0 = pmem.events();
        assert!(kv.delete(1, 2, 7).unwrap());
        let total = pmem.events() - e0;

        for k in 0..total {
            let (pmem, _, kv) = probe();
            pmem.arm_failpoint(FailPlan::after_events(k));
            let err = kv.delete(1, 2, 7).unwrap_err();
            assert!(err.is_crash());
            let pmem2 = pmem.reopen().unwrap();
            let kv2 = PKvStore::open(pmem2, kv.base(), KvVariant::Nsrl).unwrap();
            assert!(kv2.recover_delete(1, 2, 7).unwrap(), "crash at event {k}");
            assert_eq!(kv2.get(7).unwrap(), None, "crash at event {k}");
            let published: usize = kv2.snapshot().unwrap().iter().map(Vec::len).sum();
            assert_eq!(published, 2, "crash at event {k}: put + delete records");
        }
    }

    #[test]
    fn crash_point_enumeration_cas_recovers_exactly_once() {
        let probe = || {
            let (pmem, heap, kv) = fixture(4, 16);
            kv.put(0, 1, 7, 77).unwrap();
            (pmem, heap, kv)
        };
        let (pmem, _, kv) = probe();
        let e0 = pmem.events();
        assert!(kv.cas(1, 2, 7, 77, 78).unwrap());
        let total = pmem.events() - e0;

        for k in 0..total {
            let (pmem, _, kv) = probe();
            pmem.arm_failpoint(FailPlan::after_events(k));
            let err = kv.cas(1, 2, 7, 77, 78).unwrap_err();
            assert!(err.is_crash());
            let pmem2 = pmem.reopen().unwrap();
            let kv2 = PKvStore::open(pmem2, kv.base(), KvVariant::Nsrl).unwrap();
            assert!(
                kv2.recover_cas(1, 2, 7, 77, 78).unwrap(),
                "crash at event {k}"
            );
            assert_eq!(kv2.get(7).unwrap(), Some(78), "crash at event {k}");
            let published: usize = kv2.snapshot().unwrap().iter().map(Vec::len).sum();
            assert_eq!(published, 2, "crash at event {k}: no double application");
        }
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        let (_, _, kv) = fixture(16, 1024);
        let writers = 4u64;
        let per = 64u64;
        std::thread::scope(|s| {
            for w in 0..writers {
                let kv = kv.clone();
                s.spawn(move || {
                    for i in 0..per {
                        let key = w * per + i;
                        assert!(kv.put(w, i + 1, key, key as i64).unwrap());
                    }
                });
            }
        });
        let contents = kv.contents().unwrap();
        assert_eq!(contents.len(), (writers * per) as usize);
        for (k, v) in contents {
            assert_eq!(k as i64, v);
        }
    }

    #[test]
    fn concurrent_cas_on_one_key_applies_each_transition_once() {
        // Four threads increment one key via cas-retry loops; the final
        // value counts every success exactly once.
        let (_, _, kv) = fixture(4, 4096);
        kv.put(0, 1, 0, 0).unwrap();
        let per = 50i64;
        std::thread::scope(|s| {
            for w in 0..4u64 {
                let kv = kv.clone();
                s.spawn(move || {
                    let mut seq = 1_000 * (w + 1);
                    for _ in 0..per {
                        loop {
                            seq += 1;
                            let cur = kv.get(0).unwrap().unwrap();
                            if kv.cas(w, seq, 0, cur, cur + 1).unwrap() {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(kv.get(0).unwrap(), Some(4 * per));
    }

    #[test]
    fn buffered_crash_point_enumeration_put_recovers_exactly_once() {
        // The lock-free detectable path, cut at every persistence
        // event: reserve CAS, record write, record flush, tail flush,
        // head CAS, head flush. Wherever the crash lands, the evidence
        // scan answers exactly-once.
        let probe = || buffered_fixture(4, 16);
        let (pmem, _, kv) = probe();
        let e0 = pmem.events();
        assert!(kv.put(0, 1, 7, 77).unwrap());
        let total = pmem.events() - e0;
        assert!(total >= 5, "reserve + record + 3 flushes + head CAS");

        for k in 0..total {
            let (pmem, _, kv) = probe();
            pmem.arm_failpoint(FailPlan::after_events(k));
            let err = kv.put(0, 1, 7, 77).unwrap_err();
            assert!(err.is_crash());
            let pmem2 = pmem.reopen().unwrap();
            let kv2 = PKvStore::open(pmem2.clone(), kv.base(), KvVariant::Nsrl).unwrap();
            assert!(kv2.recover_put(0, 1, 7, 77).unwrap(), "crash at event {k}");
            assert_eq!(kv2.get(7).unwrap(), Some(77), "crash at event {k}");
            let published: usize = kv2.snapshot().unwrap().iter().map(Vec::len).sum();
            assert_eq!(published, 1, "crash at event {k}: exactly one record");
            assert!(pmem2.psan_violations().is_empty(), "crash at event {k}");
        }
    }

    #[test]
    fn concurrent_buffered_mutators_lose_nothing() {
        // The tentpole's point: several mutators inside ONE buffered
        // shard, no lock, nothing lost, PSan clean.
        let (pmem, _, kv) = buffered_fixture(16, 1024);
        let writers = 4u64;
        let per = 64u64;
        std::thread::scope(|s| {
            for w in 0..writers {
                let kv = kv.clone();
                s.spawn(move || {
                    for i in 0..per {
                        let key = w * per + i;
                        assert!(kv.put(w, i + 1, key, key as i64).unwrap());
                    }
                });
            }
        });
        let contents = kv.contents().unwrap();
        assert_eq!(contents.len(), (writers * per) as usize);
        for (k, v) in contents {
            assert_eq!(k as i64, v);
        }
        assert!(pmem.psan_violations().is_empty());
        // Everything published is already durable: a crash now loses
        // nothing.
        pmem.crash_now(0, 0.0);
        let pmem2 = pmem.reopen().unwrap();
        let kv2 = PKvStore::open(pmem2, kv.base(), KvVariant::Nsrl).unwrap();
        assert_eq!(kv2.contents().unwrap().len(), (writers * per) as usize);
    }

    #[test]
    fn concurrent_buffered_cas_applies_each_transition_once() {
        let (pmem, _, kv) = buffered_fixture(4, 4096);
        kv.put(0, 1, 0, 0).unwrap();
        let per = 50i64;
        std::thread::scope(|s| {
            for w in 0..4u64 {
                let kv = kv.clone();
                s.spawn(move || {
                    let mut seq = 1_000 * (w + 1);
                    for _ in 0..per {
                        loop {
                            seq += 1;
                            let cur = kv.get(0).unwrap().unwrap();
                            if kv.cas(w, seq, 0, cur, cur + 1).unwrap() {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(kv.get(0).unwrap(), Some(4 * per));
        assert!(pmem.psan_violations().is_empty());
    }

    #[test]
    fn compaction_quiesces_lock_free_mutators() {
        // The machine-checked quiesce: compactions race four lock-free
        // mutator threads on one buffered shard. Each compact() waits
        // the in-flight mutators out through the region's gate, so the
        // generation never moves under a publish and nothing is lost.
        let pmem = PMemBuilder::new().len(1 << 20).psan(true).build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 20).unwrap();
        let kv = PKvStore::format(pmem.clone(), &heap, 8, 512, KvVariant::Nsrl).unwrap();
        let writers = 4u64;
        let per = 40u64;
        std::thread::scope(|s| {
            for w in 0..writers {
                let kv = kv.clone();
                s.spawn(move || {
                    for i in 0..per {
                        let key = w * per + i;
                        assert!(kv.put(w, i + 1, key, key as i64).unwrap());
                    }
                });
            }
            let kv = kv.clone();
            let heap = heap.clone();
            s.spawn(move || {
                for _ in 0..5 {
                    kv.compact(&heap).unwrap();
                    std::thread::yield_now();
                }
            });
        });
        let contents = kv.contents().unwrap();
        assert_eq!(contents.len(), (writers * per) as usize);
        for (k, v) in contents {
            assert_eq!(k as i64, v);
        }
        assert!(kv.generation().unwrap() >= 5);
        assert!(pmem.psan_violations().is_empty());
    }

    #[test]
    fn early_publish_variant_flags_on_the_lock_free_path() {
        // Negative control: skip the record persist before the head
        // CAS and PSan must flag the publication — proof the
        // durable-before-publish check covers the per-op path.
        let pmem = PMemBuilder::new().len(1 << 19).psan(true).build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 19).unwrap();
        let kv = PKvStore::format(pmem.clone(), &heap, 4, 32, KvVariant::EarlyPublish).unwrap();
        assert!(kv.put(0, 1, 7, 77).unwrap());
        let violations = pmem.psan_violations();
        assert!(
            violations
                .iter()
                .any(|v| matches!(v.kind, pstack_nvram::PsanViolationKind::EarlyPublish { .. })),
            "expected an EarlyPublish violation, got {violations:?}"
        );
        assert_eq!(violations[0].op_label, "kv.put");
    }

    #[test]
    fn retired_generations_are_guarded_against_free() {
        // Regression: `heap.free` on a retired generation block used to
        // be a silent correctness bug only caught later by the witness
        // walk. Compaction now registers the retired extent; the free
        // fails typed, immediately.
        let (pmem, heap, kv) = fixture(4, 32);
        kv.put(0, 1, 7, 77).unwrap();
        assert!(heap.retired_extents().is_empty());
        kv.compact(&heap).unwrap();
        let retired = heap.retired_extents();
        assert_eq!(retired.len(), 1, "compact registers the old generation");
        let (start, _) = retired[0];
        assert!(matches!(
            heap.free(POffset::new(start)),
            Err(pstack_heap::HeapError::RetiredExtent { .. })
        ));

        // The registry is volatile: after a crash, recover_compact (or
        // register_retired_generations) re-arms it over the reopened
        // heap before any client could free retained evidence.
        pmem.crash_now(0, 0.0);
        let pmem2 = pmem.reopen().unwrap();
        let heap2 = PHeap::open(pmem2.clone(), POffset::new(0)).unwrap();
        assert!(
            heap2.retired_extents().is_empty(),
            "volatile, like the free list"
        );
        let kv2 = PKvStore::open(pmem2, kv.base(), KvVariant::Nsrl).unwrap();
        assert!(kv2.recover_compact(&heap2, 0).unwrap());
        assert_eq!(heap2.retired_extents(), retired);
        assert!(matches!(
            heap2.free(POffset::new(start)),
            Err(pstack_heap::HeapError::RetiredExtent { .. })
        ));
        // And the explicit helper covers plain reopens too (idempotent
        // over the recover_compact registration above).
        assert_eq!(kv2.generations().unwrap().len(), 2);
        kv2.register_retired_generations(&heap2).unwrap();
        assert_eq!(heap2.retired_extents(), retired);
    }

    #[test]
    fn required_len_covers_layout() {
        // Root block + generation 0: gen header + buckets (rounded so
        // the log starts 64-aligned) + the log itself.
        let need = PKvStore::required_len(16, 8);
        assert_eq!(need as u64, 128 + round64(64 + 16 * 8) + 8 * 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn chain_bounds_are_enforced() {
        let (_, _, kv) = fixture(2, 8);
        let _ = kv.chain(2);
    }

    #[test]
    fn variant_codec_round_trips() {
        for v in [
            KvVariant::Nsrl,
            KvVariant::NoScan,
            KvVariant::EarlyPublish,
            KvVariant::NoPersistBeforeSwap,
        ] {
            assert_eq!(KvVariant::from_u8(v.as_u8()).unwrap(), v);
        }
        assert!(KvVariant::from_u8(9).is_err());
        assert!(KvVariant::Nsrl.scans_evidence());
        assert!(!KvVariant::NoScan.scans_evidence());
        assert!(KvVariant::EarlyPublish.scans_evidence());
        assert!(KvVariant::NoPersistBeforeSwap.scans_evidence());
    }

    // ---- compaction: the generational log ------------------------------

    /// A mixed workload leaving 3 live keys out of 8 mutations.
    fn seed_history(kv: &PKvStore) {
        kv.put(0, 1, 1, 10).unwrap();
        kv.put(0, 2, 2, 20).unwrap();
        kv.put(0, 3, 1, 11).unwrap(); // supersedes seq 1
        kv.put(0, 4, 3, 30).unwrap();
        kv.delete(0, 5, 2).unwrap(); // kills key 2
        kv.cas(0, 6, 3, 30, 31).unwrap();
        kv.put(0, 7, 4, 40).unwrap();
        kv.delete(0, 8, 4).unwrap();
    }

    fn gen_fixture(eager: bool) -> (PMem, PHeap, PKvStore) {
        let mut builder = PMemBuilder::new().len(1 << 19).psan(true);
        if eager {
            builder = builder.eager_flush(true);
        }
        let pmem = builder.build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 19).unwrap();
        let kv = PKvStore::format(pmem.clone(), &heap, 4, 16, KvVariant::Nsrl).unwrap();
        (pmem, heap, kv)
    }

    #[test]
    fn compaction_preserves_contents_and_frees_headroom() {
        for eager in [true, false] {
            let (pmem, heap, kv) = gen_fixture(eager);
            seed_history(&kv);
            let want = kv.contents().unwrap();
            assert_eq!(kv.log_reserved().unwrap(), 8);
            assert_eq!(kv.generation().unwrap(), 0);

            let before = pmem.stats().snapshot();
            let stats = kv.compact(&heap).unwrap();
            let delta = pmem.stats().snapshot() - before;
            assert_eq!(stats.from_gen, 0);
            assert_eq!(stats.to_gen, 1);
            assert_eq!(stats.carried, 2, "keys 1 and 3 are live");
            assert_eq!(
                stats.dropped, 6,
                "superseded, deleted and delete records drop"
            );
            assert_eq!(kv.generation().unwrap(), 1);
            assert_eq!(kv.contents().unwrap(), want, "eager={eager}");
            assert_eq!(kv.log_reserved().unwrap(), 2, "headroom reclaimed");
            if !eager {
                // The FliT lens: the rewrite pays O(live) persists —
                // one coalesced round-trip for the whole block, two for
                // the root cell, one retirement mark, plus the heap
                // allocator's fixed block-header persists. Crucially
                // *not* a function of the 8-record history.
                assert!(
                    delta.persists <= 8,
                    "eager={eager}: compaction cost {} persist round-trips",
                    delta.persists
                );
            }

            // Survives a crash + reopen into the new generation.
            pmem.crash_now(0, 0.0);
            let pmem2 = pmem.reopen().unwrap();
            let kv2 = PKvStore::open(pmem2, kv.base(), KvVariant::Nsrl).unwrap();
            assert_eq!(kv2.generation().unwrap(), 1);
            assert_eq!(kv2.contents().unwrap(), want);

            // The full chain witness still spans both generations, with
            // the carries flagged and generation-stamped.
            let recs: Vec<VersionRecord> = kv2.snapshot().unwrap().into_iter().flatten().collect();
            assert_eq!(recs.iter().filter(|r| !r.compacted).count(), 8);
            let carries: Vec<&VersionRecord> = recs.iter().filter(|r| r.compacted).collect();
            assert_eq!(carries.len(), 2);
            for c in carries {
                assert_eq!(c.gen, 1);
                assert!(!c.is_delete, "deletes are never carried");
                assert_eq!(want.get(&c.key), Some(&c.value));
            }
            let gens = kv2.generations().unwrap();
            assert_eq!(gens.len(), 2);
            assert!(gens[0].retired && !gens[1].retired);
            assert_eq!(gens[1].carried, 2);
        }
    }

    #[test]
    fn store_outlives_its_original_log_capacity() {
        // The acceptance headline: a store formatted with log_cap 8
        // accepts far more than 8 lifetime mutations once the driver
        // compacts on low headroom.
        for eager in [true, false] {
            let mut builder = PMemBuilder::new().len(1 << 20);
            if eager {
                builder = builder.eager_flush(true);
            }
            let pmem = builder.build_in_memory();
            let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 20).unwrap();
            let kv = PKvStore::format(pmem.clone(), &heap, 4, 8, KvVariant::Nsrl).unwrap();
            let mut applied = 0u64;
            for seq in 1..=200u64 {
                if kv.log_reserved().unwrap() + 1 >= kv.log_capacity().unwrap() {
                    kv.compact(&heap).unwrap();
                }
                let key = seq % 6;
                assert!(
                    kv.put(0, seq, key, seq as i64).unwrap(),
                    "eager={eager}: put {seq} rejected — compaction failed to free headroom"
                );
                applied += 1;
            }
            assert_eq!(applied, 200);
            assert!(applied > 8, "strictly more than the original capacity");
            assert!(kv.generation().unwrap() > 1, "several swaps happened");
            // Every key holds its newest value; history is intact across
            // all generations (200 real mutations published).
            let contents = kv.contents().unwrap();
            for key in 0..6u64 {
                let newest = (1..=200u64).filter(|s| s % 6 == key).max().unwrap();
                assert_eq!(contents.get(&key), Some(&(newest as i64)), "eager={eager}");
            }
            let real: usize = kv
                .snapshot()
                .unwrap()
                .iter()
                .flatten()
                .filter(|r| !r.compacted)
                .count();
            assert_eq!(real, 200, "eager={eager}: witness spans every generation");
        }
    }

    #[test]
    fn carried_records_count_as_recovery_evidence() {
        // An operation that published before a compaction must not be
        // re-executed by its recovery dual afterwards — whether its
        // record survives as a carry (live) or only in the retired log.
        let (_, heap, kv) = gen_fixture(true);
        seed_history(&kv);
        kv.compact(&heap).unwrap();
        let reserved = kv.log_reserved().unwrap();
        // seq 3 is live (carried); seq 1 is superseded (retired log
        // only); seq 5 is a delete (retired log only).
        assert!(kv.recover_put(0, 3, 1, 11).unwrap());
        assert!(kv.recover_put(0, 1, 1, 10).unwrap());
        assert!(kv.recover_delete(0, 5, 2).unwrap());
        assert_eq!(
            kv.log_reserved().unwrap(),
            reserved,
            "evidence scans must find pre-compaction records and not re-execute"
        );
        assert_eq!(kv.get(1).unwrap(), Some(11), "state untouched");
    }

    #[test]
    fn compact_capacity_validation_and_growth() {
        let (_, heap, kv) = gen_fixture(false);
        for seq in 1..=10u64 {
            kv.put(0, seq, seq, seq as i64).unwrap(); // 10 live keys
        }
        assert!(matches!(
            kv.compact_with_capacity(&heap, Some(5)),
            Err(PError::InvalidConfig(_))
        ));
        // Default growth: live × 2 when the live set outgrew cap/2.
        let stats = kv.compact(&heap).unwrap();
        assert_eq!(stats.carried, 10);
        assert_eq!(stats.new_capacity, 20);
        assert_eq!(stats.headroom(), 10);
        assert_eq!(kv.log_capacity().unwrap(), 20);
        // Explicit capacity is honored exactly.
        let stats = kv.compact_with_capacity(&heap, Some(64)).unwrap();
        assert_eq!(stats.new_capacity, 64);
        assert_eq!(kv.generation().unwrap(), 2);
    }

    #[test]
    fn recover_compact_resumes_or_safely_abandons() {
        let (_, heap, kv) = gen_fixture(false);
        seed_history(&kv);
        let want = kv.contents().unwrap();
        // Nothing committed: re-executes (evidence says gen unchanged).
        assert!(!kv.recover_compact(&heap, 0).unwrap());
        assert_eq!(kv.generation().unwrap(), 1);
        assert_eq!(kv.contents().unwrap(), want);
        // Already committed: evidence scan answers without a new swap.
        assert!(kv.recover_compact(&heap, 0).unwrap());
        assert_eq!(kv.generation().unwrap(), 1, "no duplicate swap");
        // A future from_gen is a caller bug.
        assert!(matches!(
            kv.recover_compact(&heap, 7),
            Err(PError::InvalidConfig(_))
        ));
    }

    #[test]
    fn group_commits_keep_working_after_a_swap() {
        // The batched hot path across a generation boundary: group
        // commits before and after a compaction, with the epoch
        // (root-level) counting monotonically across the swap.
        let (pmem, heap, kv) = buffered_fixture(4, 16);
        let ops: Vec<KvBatchOp> = (0..8)
            .map(|i| KvBatchOp::Put {
                pid: 0,
                seq: i + 1,
                key: i % 4,
                value: i as i64,
            })
            .collect();
        assert!(kv
            .apply_batch(&ops)
            .unwrap()
            .iter()
            .all(|o| o.took_effect()));
        assert_eq!(kv.flush_epoch().unwrap(), 1);
        kv.compact(&heap).unwrap();
        let ops2: Vec<KvBatchOp> = (0..8)
            .map(|i| KvBatchOp::Put {
                pid: 0,
                seq: 100 + i,
                key: i % 4,
                value: -(i as i64),
            })
            .collect();
        assert!(kv
            .apply_batch(&ops2)
            .unwrap()
            .iter()
            .all(|o| o.took_effect()));
        assert_eq!(kv.flush_epoch().unwrap(), 2, "epoch survives the swap");
        assert_eq!(kv.contents().unwrap().len(), 4);
        // And the whole thing is durable.
        pmem.crash_now(0, 0.0);
        let kv2 = PKvStore::open(pmem.reopen().unwrap(), kv.base(), KvVariant::Nsrl).unwrap();
        for i in 4..8u64 {
            assert_eq!(kv2.get(i % 4).unwrap(), Some(-(i as i64)));
        }
    }

    /// Enumerates a crash at every persistence event inside `compact`
    /// (the rewrite, the root swap, the retirement mark), and, from
    /// each crash state, at every persistence event inside the
    /// recovery dual — on one commit mode.
    fn enumerate_compaction_crashes(eager: bool) {
        let probe = || {
            let (pmem, heap, kv) = gen_fixture(eager);
            seed_history(&kv);
            (pmem, heap, kv)
        };
        let (pmem, heap, kv) = probe();
        let want = kv.contents().unwrap();
        let e0 = pmem.events();
        kv.compact(&heap).unwrap();
        let total = pmem.events() - e0;
        assert!(
            total >= 3,
            "rewrite + swap + retirement span several events (got {total})"
        );

        for k in 0..total {
            // Phase 1: crash the compaction after k events; the store
            // must reopen consistent in the old or the new generation.
            let (pmem, heap, kv) = probe();
            pmem.arm_failpoint(FailPlan::after_events(k));
            let err = kv.compact(&heap).unwrap_err();
            assert!(err.is_crash(), "eager={eager}: crash at event {k}");
            let pmem2 = pmem.reopen().unwrap();
            let kv2 = PKvStore::open(pmem2.clone(), kv.base(), KvVariant::Nsrl).unwrap();
            let gen = kv2.generation().unwrap();
            assert!(
                gen <= 1,
                "eager={eager}: crash at {k} left generation {gen}"
            );
            assert_eq!(
                kv2.contents().unwrap(),
                want,
                "eager={eager}: crash at {k}: contents torn"
            );
            assert!(
                pmem2.psan_violations().is_empty(),
                "eager={eager}: crash at {k}: PSan flagged the correct protocol"
            );

            // Phase 2: enumerate crashes inside the recovery dual. The
            // first j at or past recovery's event footprint completes.
            for j in 0.. {
                let (pmem, heap, kv) = probe();
                pmem.arm_failpoint(FailPlan::after_events(k));
                assert!(kv.compact(&heap).unwrap_err().is_crash());
                let pmem = pmem.reopen().unwrap();
                let kv = PKvStore::open(pmem.clone(), kv.base(), KvVariant::Nsrl).unwrap();
                let heap = PHeap::open(pmem.clone(), POffset::new(0)).unwrap();
                pmem.arm_failpoint(FailPlan::after_events(j));
                match kv.recover_compact(&heap, 0) {
                    Ok(_committed_before) => {
                        pmem.disarm_failpoint();
                        assert_eq!(kv.generation().unwrap(), 1);
                        assert_eq!(
                            kv.contents().unwrap(),
                            want,
                            "eager={eager}: crash {k}, recovery step {j}"
                        );
                        let gens = kv.generations().unwrap();
                        assert!(gens[0].retired, "retirement finished by recovery");
                        // Idempotent: a second recovery changes nothing.
                        assert!(kv.recover_compact(&heap, 0).unwrap());
                        assert_eq!(kv.generation().unwrap(), 1);
                        assert!(
                            pmem.psan_violations().is_empty(),
                            "eager={eager}: crash {k}, step {j}: PSan flagged recovery"
                        );
                        break;
                    }
                    Err(e) => {
                        assert!(e.is_crash(), "eager={eager}: crash {k}, step {j}: {e}");
                        let pmem = pmem.reopen().unwrap();
                        let kv = PKvStore::open(pmem.clone(), kv.base(), KvVariant::Nsrl).unwrap();
                        let heap = PHeap::open(pmem, POffset::new(0)).unwrap();
                        // A clean pass from the doubly-crashed state
                        // must still converge.
                        kv.recover_compact(&heap, 0).unwrap();
                        assert_eq!(kv.generation().unwrap(), 1);
                        assert_eq!(
                            kv.contents().unwrap(),
                            want,
                            "eager={eager}: crash {k}, step {j}: post-recovery state"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn compaction_crash_points_buffered() {
        enumerate_compaction_crashes(false);
    }

    #[test]
    fn compaction_crash_points_eager() {
        enumerate_compaction_crashes(true);
    }

    #[test]
    fn repeated_compactions_chain_generations() {
        let (_, heap, kv) = gen_fixture(true);
        let mut seq = 0u64;
        for round in 0..4u64 {
            for key in 0..3u64 {
                seq += 1;
                kv.put(0, seq, key, (round * 10 + key) as i64).unwrap();
            }
            kv.compact(&heap).unwrap();
            assert_eq!(kv.generation().unwrap(), round + 1);
        }
        let gens = kv.generations().unwrap();
        assert_eq!(gens.len(), 5);
        assert!(gens.iter().take(4).all(|g| g.retired));
        assert!(!gens[4].retired);
        assert_eq!(gens[4].carried, 3);
        // All 12 real mutations still in the witness; evidence scans
        // reach the oldest generation.
        let real: usize = kv
            .snapshot()
            .unwrap()
            .iter()
            .flatten()
            .filter(|r| !r.compacted)
            .count();
        assert_eq!(real, 12);
        assert!(kv.recover_put(0, 1, 0, 0).unwrap());
        assert_eq!(
            kv.snapshot()
                .unwrap()
                .iter()
                .flatten()
                .filter(|r| !r.compacted)
                .count(),
            12,
            "gen-0 evidence found, nothing re-executed"
        );
    }

    // ---- PSan: the persist-order sanitizer ------------------------------

    #[test]
    fn full_lifecycle_is_psan_clean_on_both_commit_modes() {
        // The unit-scope zero-violation gate: mutations, batches, a
        // compaction and a crash/recover cycle must leave the
        // sanitizer silent on both commit modes.
        for eager in [true, false] {
            let (pmem, heap, kv) = gen_fixture(eager);
            seed_history(&kv);
            kv.apply_batch(&[
                KvBatchOp::Put {
                    pid: 2,
                    seq: 1,
                    key: 5,
                    value: 50,
                },
                KvBatchOp::Cas {
                    pid: 2,
                    seq: 2,
                    key: 5,
                    expected: 50,
                    new: 51,
                },
            ])
            .unwrap();
            kv.compact(&heap).unwrap();
            kv.put(2, 3, 6, 60).unwrap();
            assert!(pmem.psan_violations().is_empty(), "eager={eager}");
            pmem.crash_now(0, 0.0);
            let pmem2 = pmem.reopen().unwrap();
            let kv2 = PKvStore::open(pmem2.clone(), kv.base(), KvVariant::Nsrl).unwrap();
            assert!(kv2.recover_put(2, 3, 6, 60).unwrap());
            assert_eq!(kv2.get(5).unwrap(), Some(51));
            let violations = pmem2.psan_violations();
            assert!(
                violations.is_empty(),
                "eager={eager}: PSan flagged the correct protocol: {violations:?}"
            );
        }
    }

    #[test]
    fn psan_flags_the_early_publish_variant_at_the_head_cas() {
        use pstack_nvram::PsanViolationKind;
        let pmem = PMemBuilder::new().len(1 << 19).psan(true).build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 19).unwrap();
        let kv = PKvStore::format(pmem.clone(), &heap, 4, 32, KvVariant::EarlyPublish).unwrap();
        assert!(pmem.psan_violations().is_empty(), "format itself is clean");
        kv.apply_batch(&[KvBatchOp::Put {
            pid: 0,
            seq: 1,
            key: 7,
            value: 70,
        }])
        .unwrap();
        let v = pmem.psan_violations();
        let hit = v
            .iter()
            .find(|x| matches!(x.kind, PsanViolationKind::EarlyPublish { .. }))
            .unwrap_or_else(|| panic!("expected an early-publish violation: {v:?}"));
        // Attribution: the op label names the publishing call site, and
        // the flagged span covers the published (still-volatile) record.
        assert_eq!(hit.op_label, "kv.apply_batch");
        let PsanViolationKind::EarlyPublish { published } = hit.kind else {
            unreachable!()
        };
        assert!(
            hit.offset <= published && published < hit.offset + hit.len as u64 + RECORD_STRIDE,
            "violation span {:#x}+{} should cover the published record {published:#x}",
            hit.offset,
            hit.len,
        );
    }

    #[test]
    fn psan_flags_the_no_persist_before_swap_variant_at_the_root_swap() {
        use pstack_nvram::PsanViolationKind;
        let pmem = PMemBuilder::new().len(1 << 19).psan(true).build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 19).unwrap();
        let kv =
            PKvStore::format(pmem.clone(), &heap, 4, 16, KvVariant::NoPersistBeforeSwap).unwrap();
        for seq in 1..=4u64 {
            kv.put(0, seq, seq, seq as i64).unwrap();
        }
        assert!(
            pmem.psan_violations().is_empty(),
            "ordinary mutations are clean under this variant"
        );
        kv.compact(&heap).unwrap();
        let v = pmem.psan_violations();
        let hit = v
            .iter()
            .find(|x| matches!(x.kind, PsanViolationKind::UnorderedCommit))
            .unwrap_or_else(|| panic!("expected an unordered-commit violation: {v:?}"));
        assert_eq!(hit.op_label, "kv.compact");
        // The flagged line lies inside the committed-but-volatile new
        // generation block, past the heap's gen-0 allocations.
        assert!(
            hit.offset >= PKvStore::required_len(4, 16) as u64,
            "violation at {:#x} should fall in the new generation block",
            hit.offset
        );
    }
}
