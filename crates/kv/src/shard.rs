//! Sharded store: stripe buckets, version logs and answer evidence
//! across independent NVRAM regions.
//!
//! Every operation of a single [`PKvStore`] funnels through its
//! region's one critical section, so the store cannot scale past one
//! core no matter how many buckets it has. [`ShardedKvStore`] stripes
//! the key space across `N` complete stores — **one region, one lock,
//! one version log and one recovery scan per shard** — behind a
//! [`shard_of`] router, so operations on different shards touch
//! disjoint regions and never contend. Each shard is a full
//! [`PKvStore`], which means the group-commit batching of buffered
//! regions ([`PKvStore::apply_batch`]) and the evidence-scan recovery
//! argument apply per shard unchanged; a [`KvBatch`] routes a mixed-key
//! batch into one group commit per touched shard.
//!
//! Keys never move between shards (the router is a pure function of
//! the key), so per-key linearization order is exactly the key's chain
//! order inside its home shard — the global witness a sharded verifier
//! checks is just the union of per-shard witnesses
//! ([`check_kv_sharded`] in `pstack-verify`).
//!
//! The shard router hashes with the *high* half of the same SplitMix64
//! finalizer whose low half picks the bucket inside a shard, so shard
//! and bucket choices stay decorrelated even when both counts are
//! powers of two.
//!
//! [`check_kv_sharded`]: ../pstack_verify/fn.check_kv_sharded.html

use std::collections::BTreeMap;

use pstack_core::PError;
use pstack_heap::PHeap;
use pstack_nvram::{PMem, POffset};

use crate::store::{
    mix, CompactionStats, KvApplied, KvBatchOp, KvVariant, PKvStore, VersionRecord,
};

const SHARD_MAGIC: u64 = 0x5053_4B56_5348_4431; // "PSKVSHD1"

/// Bytes reserved at the start of each shard region for the shard root
/// (magic, shard index, shard count, store base).
const SHARD_ROOT_LEN: u64 = 64;

const ROOT_OFF_MAGIC: u64 = 0;
const ROOT_OFF_SHARD: u64 = 8;
const ROOT_OFF_NSHARDS: u64 = 16;
const ROOT_OFF_STORE: u64 = 24;

/// The shard router: which of `nshards` shards owns `key`.
///
/// Uses the high 32 bits of the full-avalanche key mix (the low bits
/// pick the bucket inside the shard), so shard and bucket indices are
/// decorrelated.
///
/// # Panics
///
/// Panics if `nshards == 0`.
#[must_use]
pub fn shard_of(key: u64, nshards: usize) -> usize {
    assert!(nshards > 0, "at least one shard");
    ((mix(key) >> 32) % nshards as u64) as usize
}

/// A crash-recoverable KV store striped across independent regions:
/// one complete [`PKvStore`] (lock + log + buckets) per shard, plus a
/// key router. Cheap to clone; clones share the shards.
///
/// # Example
///
/// ```
/// use pstack_nvram::PMemBuilder;
/// use pstack_kv::{KvVariant, ShardedKvStore};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stripe = PMemBuilder::new().len(1 << 18).eager_flush(true).build_striped(4);
/// let kv = ShardedKvStore::format(stripe.regions(), 16, 256, KvVariant::Nsrl)?;
/// for key in 0..32 {
///     assert!(kv.put(0, key + 1, key, key as i64)?);
/// }
/// assert_eq!(kv.get(17)?, Some(17));
/// assert_eq!(kv.contents()?.len(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ShardedKvStore {
    shards: Vec<PKvStore>,
    heaps: Vec<PHeap>,
}

impl ShardedKvStore {
    /// Formats one store per region: a 64-byte shard root at offset 0,
    /// a heap over the rest of the region, and the shard's store
    /// allocated from that heap. All regions must share one commit
    /// mode (all eager or all buffered); `nbuckets` and `log_cap` are
    /// per shard.
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] for an empty region list or mixed
    /// commit modes; propagated heap/NVRAM errors otherwise.
    pub fn format(
        regions: &[PMem],
        nbuckets: u64,
        log_cap: u64,
        variant: KvVariant,
    ) -> Result<Self, PError> {
        Self::check_regions(regions)?;
        let mut shards = Vec::with_capacity(regions.len());
        let mut heaps = Vec::with_capacity(regions.len());
        for (i, pmem) in regions.iter().enumerate() {
            let heap = PHeap::format(
                pmem.clone(),
                POffset::new(SHARD_ROOT_LEN),
                pmem.len() as u64 - SHARD_ROOT_LEN,
            )?;
            let store = PKvStore::format(pmem.clone(), &heap, nbuckets, log_cap, variant)?;
            pmem.write_u64(POffset::new(ROOT_OFF_SHARD), i as u64)?;
            pmem.write_u64(POffset::new(ROOT_OFF_NSHARDS), regions.len() as u64)?;
            pmem.write_u64(POffset::new(ROOT_OFF_STORE), store.base().get())?;
            pmem.write_u64(POffset::new(ROOT_OFF_MAGIC), SHARD_MAGIC)?;
            if !pmem.is_eager_flush() {
                // Eager regions persisted every root word already; a
                // second flush is the redundant-persist pattern PSan's
                // diagnostic counter flags.
                pmem.flush(POffset::new(0), SHARD_ROOT_LEN as usize)?;
            }
            shards.push(store);
            heaps.push(heap);
        }
        Ok(ShardedKvStore { shards, heaps })
    }

    /// Re-attaches to a sharded store previously formatted over these
    /// regions, in the same order (recovery boot).
    ///
    /// # Errors
    ///
    /// [`PError::CorruptStack`] on a bad shard root (wrong magic,
    /// shard order or shard count), [`PError::InvalidConfig`] for an
    /// empty or mixed-mode region list.
    pub fn open(regions: &[PMem], variant: KvVariant) -> Result<Self, PError> {
        Self::check_regions(regions)?;
        let mut shards = Vec::with_capacity(regions.len());
        let mut heaps = Vec::with_capacity(regions.len());
        for (i, pmem) in regions.iter().enumerate() {
            let magic = pmem.read_u64(POffset::new(ROOT_OFF_MAGIC))?;
            if magic != SHARD_MAGIC {
                return Err(PError::CorruptStack(format!(
                    "bad shard-root magic {magic:#x} in region {i}"
                )));
            }
            let shard = pmem.read_u64(POffset::new(ROOT_OFF_SHARD))?;
            let nshards = pmem.read_u64(POffset::new(ROOT_OFF_NSHARDS))?;
            if shard != i as u64 || nshards != regions.len() as u64 {
                return Err(PError::CorruptStack(format!(
                    "region {i} holds shard {shard} of {nshards} — regions reordered or \
                     stripe resized"
                )));
            }
            let store_base = POffset::new(pmem.read_u64(POffset::new(ROOT_OFF_STORE))?);
            heaps.push(PHeap::open(pmem.clone(), POffset::new(SHARD_ROOT_LEN))?);
            shards.push(PKvStore::open(pmem.clone(), store_base, variant)?);
        }
        Ok(ShardedKvStore { shards, heaps })
    }

    fn check_regions(regions: &[PMem]) -> Result<(), PError> {
        if regions.is_empty() {
            return Err(PError::InvalidConfig(
                "a sharded store needs at least one region".into(),
            ));
        }
        let eager = regions[0].is_eager_flush();
        if regions.iter().any(|r| r.is_eager_flush() != eager) {
            return Err(PError::InvalidConfig(
                "all shard regions must share one commit mode (all eager or all buffered)".into(),
            ));
        }
        Ok(())
    }

    /// Number of shards.
    #[must_use]
    pub fn nshards(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns `key`.
    #[must_use]
    pub fn shard_of(&self, key: u64) -> usize {
        shard_of(key, self.shards.len())
    }

    /// Shard `i`'s underlying store.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nshards()`.
    #[must_use]
    pub fn shard(&self, i: usize) -> &PKvStore {
        &self.shards[i]
    }

    /// Shard `i`'s heap (for co-locating per-shard metadata, e.g. a
    /// descriptor table, in the shard's own region).
    ///
    /// # Panics
    ///
    /// Panics if `i >= nshards()`.
    #[must_use]
    pub fn heap(&self, i: usize) -> &PHeap {
        &self.heaps[i]
    }

    /// `true` if the shards run the eager (per-op durability) mode.
    #[must_use]
    pub fn is_eager(&self) -> bool {
        self.shards[0].is_eager()
    }

    /// Enables or disables the asynchronous flush pipeline on every
    /// shard ([`PKvStore::set_pipeline`]). A pipelined cross-shard
    /// [`KvBatch::commit`] additionally *begins* every touched shard's
    /// group commit before committing any of them, so the shards'
    /// flush flights overlap across regions, not just within one.
    /// Ignored on an eager store.
    pub fn set_pipeline(&mut self, on: bool) {
        for shard in &mut self.shards {
            shard.set_pipeline(on);
        }
    }

    /// `true` when the shards overlap persist round-trips through the
    /// asynchronous flush pipeline.
    #[must_use]
    pub fn is_pipelined(&self) -> bool {
        self.shards[0].is_pipelined()
    }

    fn route(&self, key: u64) -> &PKvStore {
        &self.shards[self.shard_of(key)]
    }

    /// Routed [`PKvStore::put`].
    ///
    /// # Errors
    ///
    /// A propagated crash (complete with
    /// [`ShardedKvStore::recover_put`] after restart).
    pub fn put(&self, pid: u64, seq: u64, key: u64, value: i64) -> Result<bool, PError> {
        self.route(key).put(pid, seq, key, value)
    }

    /// Routed [`PKvStore::get`].
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn get(&self, key: u64) -> Result<Option<i64>, PError> {
        self.route(key).get(key)
    }

    /// Routed [`PKvStore::delete`].
    ///
    /// # Errors
    ///
    /// A propagated crash (complete with
    /// [`ShardedKvStore::recover_delete`] after restart).
    pub fn delete(&self, pid: u64, seq: u64, key: u64) -> Result<bool, PError> {
        self.route(key).delete(pid, seq, key)
    }

    /// Routed [`PKvStore::cas`].
    ///
    /// # Errors
    ///
    /// A propagated crash (complete with
    /// [`ShardedKvStore::recover_cas`] after restart).
    pub fn cas(
        &self,
        pid: u64,
        seq: u64,
        key: u64,
        expected: i64,
        new: i64,
    ) -> Result<bool, PError> {
        self.route(key).cas(pid, seq, key, expected, new)
    }

    /// Routed [`PKvStore::recover_put`] — the evidence scan runs only
    /// in the key's home shard.
    ///
    /// # Errors
    ///
    /// A propagated crash; recovery is then re-run after restart.
    pub fn recover_put(&self, pid: u64, seq: u64, key: u64, value: i64) -> Result<bool, PError> {
        self.route(key).recover_put(pid, seq, key, value)
    }

    /// Routed [`PKvStore::recover_delete`].
    ///
    /// # Errors
    ///
    /// A propagated crash; recovery is then re-run after restart.
    pub fn recover_delete(&self, pid: u64, seq: u64, key: u64) -> Result<bool, PError> {
        self.route(key).recover_delete(pid, seq, key)
    }

    /// Routed [`PKvStore::recover_cas`].
    ///
    /// # Errors
    ///
    /// A propagated crash; recovery is then re-run after restart.
    pub fn recover_cas(
        &self,
        pid: u64,
        seq: u64,
        key: u64,
        expected: i64,
        new: i64,
    ) -> Result<bool, PError> {
        self.route(key).recover_cas(pid, seq, key, expected, new)
    }

    /// Starts an empty cross-shard batch.
    #[must_use]
    pub fn batch(&self) -> KvBatch<'_> {
        KvBatch {
            store: self,
            ops: Vec::new(),
        }
    }

    /// Per-shard chain witnesses: `result[s][b]` is shard `s`'s bucket
    /// `b`, oldest record first — the input of `check_kv_sharded`.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn snapshot_sharded(&self) -> Result<Vec<Vec<Vec<VersionRecord>>>, PError> {
        self.shards.iter().map(PKvStore::snapshot).collect()
    }

    /// The whole store's current contents as one ordinary map.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn contents(&self) -> Result<BTreeMap<u64, i64>, PError> {
        let mut out = BTreeMap::new();
        for shard in &self.shards {
            out.append(&mut shard.contents()?);
        }
        Ok(out)
    }

    /// Log slots reserved so far, per shard — a single hot shard
    /// running out of headroom turns only that shard read-only, which
    /// is why campaigns watch the minimum headroom, not the sum.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn log_reserved_per_shard(&self) -> Result<Vec<u64>, PError> {
        self.shards.iter().map(PKvStore::log_reserved).collect()
    }

    /// Per-shard **active-generation** version-log capacities. Uniform
    /// at format time; per-shard compactions may grow them
    /// independently.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn log_capacities(&self) -> Result<Vec<u64>, PError> {
        self.shards.iter().map(PKvStore::log_capacity).collect()
    }

    /// Per-shard active generation numbers (0 until a shard's first
    /// compaction).
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn generations(&self) -> Result<Vec<u64>, PError> {
        self.shards.iter().map(PKvStore::generation).collect()
    }

    /// Compacts shard `i` into a fresh generation — the per-shard
    /// generational swap ([`PKvStore::compact`]) fed from the shard's
    /// own heap, so one hot shard's log rewrite never touches (or
    /// serializes with) the other shards' regions. Drive it off the
    /// per-shard headroom signal
    /// (`ShardLogUsage::headroom_fraction` in `pstack-chaos`).
    ///
    /// # Errors
    ///
    /// A propagated crash (recover with
    /// [`ShardedKvStore::recover_compact_shard`] after restart); heap
    /// exhaustion in the shard's region.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nshards()`.
    pub fn compact_shard(&self, i: usize) -> Result<CompactionStats, PError> {
        self.shards[i].compact(&self.heaps[i])
    }

    /// The evidence-scanning recovery dual of
    /// [`ShardedKvStore::compact_shard`]; see
    /// [`PKvStore::recover_compact`].
    ///
    /// # Errors
    ///
    /// See [`PKvStore::recover_compact`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= nshards()`.
    pub fn recover_compact_shard(&self, i: usize, from_gen: u64) -> Result<bool, PError> {
        self.shards[i].recover_compact(&self.heaps[i], from_gen)
    }

    /// Per-shard flush epochs (completed group commits).
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn flush_epochs(&self) -> Result<Vec<u64>, PError> {
        self.shards.iter().map(PKvStore::flush_epoch).collect()
    }
}

/// A cross-shard mutation batch: ops accumulate in submission order,
/// and [`KvBatch::commit`] runs **one group commit per touched shard**
/// (preserving each shard's submission order), then reports outcomes
/// in submission order. Within a batch, later ops on a key observe
/// earlier staged ops on the same key.
///
/// # Example
///
/// ```
/// use pstack_nvram::PMemBuilder;
/// use pstack_kv::{KvApplied, KvVariant, ShardedKvStore};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Buffered regions: commits batch persists per shard.
/// let stripe = PMemBuilder::new().len(1 << 18).build_striped(2);
/// let kv = ShardedKvStore::format(stripe.regions(), 8, 64, KvVariant::Nsrl)?;
/// let mut batch = kv.batch();
/// for key in 0..8 {
///     batch.put(0, key + 1, key, key as i64);
/// }
/// let outcomes = batch.commit()?;
/// assert!(outcomes.iter().all(|o| o.took_effect()));
/// assert_eq!(kv.get(5)?, Some(5));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct KvBatch<'a> {
    store: &'a ShardedKvStore,
    ops: Vec<KvBatchOp>,
}

impl KvBatch<'_> {
    /// Appends a raw mutation.
    pub fn push(&mut self, op: KvBatchOp) {
        self.ops.push(op);
    }

    /// Appends a put.
    pub fn put(&mut self, pid: u64, seq: u64, key: u64, value: i64) {
        self.push(KvBatchOp::Put {
            pid,
            seq,
            key,
            value,
        });
    }

    /// Appends a delete.
    pub fn delete(&mut self, pid: u64, seq: u64, key: u64) {
        self.push(KvBatchOp::Delete { pid, seq, key });
    }

    /// Appends a cas.
    pub fn cas(&mut self, pid: u64, seq: u64, key: u64, expected: i64, new: i64) {
        self.push(KvBatchOp::Cas {
            pid,
            seq,
            key,
            expected,
            new,
        });
    }

    /// Number of accumulated ops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if no ops have accumulated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Commits the batch: one group commit per touched shard, outcomes
    /// in submission order.
    ///
    /// # Errors
    ///
    /// A propagated crash — after restart, recover each op through its
    /// recovery dual (the per-shard evidence scans decide which ops
    /// linearized before the crash).
    pub fn commit(self) -> Result<Vec<KvApplied>, PError> {
        let mut per_shard: BTreeMap<usize, (Vec<usize>, Vec<KvBatchOp>)> = BTreeMap::new();
        for (i, &op) in self.ops.iter().enumerate() {
            let entry = per_shard.entry(self.store.shard_of(op.key())).or_default();
            entry.0.push(i);
            entry.1.push(op);
        }
        let mut outcomes = vec![KvApplied::PrecondFailed; self.ops.len()];
        if self.store.is_pipelined() {
            // Pipelined: begin every touched shard's group commit first
            // — each begin issues its record/tail flights and returns —
            // then commit them in shard order. All shards' round-trips
            // overlap instead of each shard paying its own serially.
            let mut pending = Vec::with_capacity(per_shard.len());
            for (shard, (indexes, ops)) in &per_shard {
                pending.push((indexes, self.store.shard(*shard).apply_batch_begin(ops)?));
            }
            for (indexes, batch) in pending {
                let shard_outcomes = batch.commit()?;
                for (&i, outcome) in indexes.iter().zip(shard_outcomes) {
                    outcomes[i] = outcome;
                }
            }
            return Ok(outcomes);
        }
        for (shard, (indexes, ops)) in per_shard {
            let shard_outcomes = self.store.shard(shard).apply_batch(&ops)?;
            for (i, outcome) in indexes.into_iter().zip(shard_outcomes) {
                outcomes[i] = outcome;
            }
        }
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_nvram::{FailPlan, PMemBuilder, PMemStripe};

    fn eager_stripe(n: usize) -> PMemStripe {
        PMemBuilder::new()
            .len(1 << 18)
            .eager_flush(true)
            .build_striped(n)
    }

    fn buffered_stripe(n: usize) -> PMemStripe {
        PMemBuilder::new().len(1 << 18).build_striped(n)
    }

    #[test]
    fn router_is_total_and_balanced_enough() {
        let nshards = 4;
        let mut counts = vec![0usize; nshards];
        for key in 0..4096u64 {
            counts[shard_of(key, nshards)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                c > 4096 / nshards / 2,
                "shard {s} owns only {c} of 4096 keys: {counts:?}"
            );
        }
    }

    #[test]
    fn router_decorrelates_from_bucket_choice() {
        // Keys landing in one shard must still spread over that shard's
        // buckets (shard = high mix bits, bucket = low mix bits).
        let nshards = 4;
        let nbuckets = 8u64;
        let mut buckets = std::collections::HashSet::new();
        for key in (0..4096u64).filter(|&k| shard_of(k, nshards) == 0) {
            buckets.insert(mix(key) % nbuckets);
        }
        assert_eq!(buckets.len() as u64, nbuckets);
    }

    #[test]
    fn ops_route_and_round_trip() {
        let stripe = eager_stripe(4);
        let kv = ShardedKvStore::format(stripe.regions(), 8, 64, KvVariant::Nsrl).unwrap();
        for key in 0..64u64 {
            assert!(kv.put(0, key + 1, key, key as i64).unwrap());
        }
        assert!(kv.cas(0, 100, 7, 7, 70).unwrap());
        assert!(kv.delete(0, 101, 9).unwrap());
        assert_eq!(kv.get(7).unwrap(), Some(70));
        assert_eq!(kv.get(9).unwrap(), None);
        assert_eq!(kv.contents().unwrap().len(), 63);
        // Records landed in the key's home shard only.
        for key in [7u64, 9, 13] {
            let home = kv.shard_of(key);
            for (s, chains) in kv.snapshot_sharded().unwrap().iter().enumerate() {
                let here = chains.iter().flatten().any(|r| r.key == key);
                assert_eq!(here, s == home, "key {key} record in shard {s}");
            }
        }
    }

    #[test]
    fn state_survives_stripe_crash_and_reopen() {
        let stripe = eager_stripe(3);
        let kv = ShardedKvStore::format(stripe.regions(), 8, 64, KvVariant::Nsrl).unwrap();
        for key in 0..24u64 {
            kv.put(1, key + 1, key, (key * 10) as i64).unwrap();
        }
        stripe.crash_all(7, 0.0);
        let stripe2 = stripe.reopen_all().unwrap();
        let kv2 = ShardedKvStore::open(stripe2.regions(), KvVariant::Nsrl).unwrap();
        assert_eq!(kv2.nshards(), 3);
        for key in 0..24u64 {
            assert_eq!(kv2.get(key).unwrap(), Some((key * 10) as i64));
        }
    }

    #[test]
    fn open_rejects_reordered_or_foreign_regions() {
        let stripe = eager_stripe(2);
        let kv = ShardedKvStore::format(stripe.regions(), 4, 16, KvVariant::Nsrl).unwrap();
        kv.put(0, 1, 1, 1).unwrap();
        let swapped = vec![stripe.region(1).clone(), stripe.region(0).clone()];
        assert!(matches!(
            ShardedKvStore::open(&swapped, KvVariant::Nsrl),
            Err(PError::CorruptStack(_))
        ));
        let fresh = PMemBuilder::new()
            .len(1 << 16)
            .eager_flush(true)
            .build_in_memory();
        assert!(matches!(
            ShardedKvStore::open(&[fresh], KvVariant::Nsrl),
            Err(PError::CorruptStack(_))
        ));
        assert!(matches!(
            ShardedKvStore::format(&[], 4, 16, KvVariant::Nsrl),
            Err(PError::InvalidConfig(_))
        ));
    }

    #[test]
    fn mixed_commit_modes_are_rejected() {
        let eager = PMemBuilder::new()
            .len(1 << 16)
            .eager_flush(true)
            .build_in_memory();
        let buffered = PMemBuilder::new().len(1 << 16).build_in_memory();
        assert!(matches!(
            ShardedKvStore::format(&[eager, buffered], 4, 16, KvVariant::Nsrl),
            Err(PError::InvalidConfig(_))
        ));
    }

    #[test]
    fn cross_shard_batch_commits_per_shard_and_preserves_order() {
        let stripe = buffered_stripe(4);
        let kv = ShardedKvStore::format(stripe.regions(), 8, 64, KvVariant::Nsrl).unwrap();
        let mut batch = kv.batch();
        for key in 0..32u64 {
            batch.put(0, key + 1, key, key as i64);
        }
        // Same-key sequencing within the batch, across the shard split.
        batch.cas(0, 100, 5, 5, 50);
        batch.delete(0, 101, 6);
        assert_eq!(batch.len(), 34);
        let outcomes = batch.commit().unwrap();
        assert!(outcomes.iter().all(|o| o.took_effect()));
        assert_eq!(kv.get(5).unwrap(), Some(50));
        assert_eq!(kv.get(6).unwrap(), None);
        // One group commit per touched shard.
        for (s, epoch) in kv.flush_epochs().unwrap().into_iter().enumerate() {
            assert_eq!(epoch, 1, "shard {s} must commit exactly once");
        }
    }

    #[test]
    fn empty_batch_commits_to_nothing() {
        let stripe = buffered_stripe(2);
        let kv = ShardedKvStore::format(stripe.regions(), 4, 16, KvVariant::Nsrl).unwrap();
        let batch = kv.batch();
        assert!(batch.is_empty());
        assert!(batch.commit().unwrap().is_empty());
        assert_eq!(kv.flush_epochs().unwrap(), vec![0, 0]);
    }

    #[test]
    fn crash_in_one_shard_leaves_others_recoverable() {
        // Kill shard 0 inside its batch window; the system failure then
        // takes the other shards down too. Recovery (per shard, via the
        // routed duals) must complete every op exactly once.
        let stripe = buffered_stripe(2);
        let kv = ShardedKvStore::format(stripe.regions(), 4, 32, KvVariant::Nsrl).unwrap();
        let keys: Vec<u64> = (0..16).collect();
        // Arm the failpoint on shard 0's region only, mid-window.
        stripe.region(0).arm_failpoint(FailPlan::after_events(3));
        let mut batch = kv.batch();
        for &key in &keys {
            batch.put(2, key + 1, key, key as i64 + 100);
        }
        let err = batch.commit().unwrap_err();
        assert!(err.is_crash());
        stripe.crash_all(11, 0.0);
        let stripe2 = stripe.reopen_all().unwrap();
        let kv2 = ShardedKvStore::open(stripe2.regions(), KvVariant::Nsrl).unwrap();
        for &key in &keys {
            assert!(kv2.recover_put(2, key + 1, key, key as i64 + 100).unwrap());
            assert_eq!(kv2.get(key).unwrap(), Some(key as i64 + 100));
        }
        let published: usize = kv2
            .snapshot_sharded()
            .unwrap()
            .iter()
            .flatten()
            .map(Vec::len)
            .sum();
        assert_eq!(published, keys.len(), "exactly one record per op");
    }

    #[test]
    fn per_shard_log_headroom_is_observable() {
        let stripe = eager_stripe(2);
        let kv = ShardedKvStore::format(stripe.regions(), 4, 8, KvVariant::Nsrl).unwrap();
        // Fill only one shard: pick keys routed to shard 0.
        let hot: Vec<u64> = (0..).filter(|&k| shard_of(k, 2) == 0).take(8).collect();
        for (i, &key) in hot.iter().enumerate() {
            assert!(kv.put(0, i as u64 + 1, key, 1).unwrap());
        }
        assert!(!kv.put(0, 99, hot[0], 2).unwrap(), "hot shard is read-only");
        let reserved = kv.log_reserved_per_shard().unwrap();
        let caps = kv.log_capacities().unwrap();
        assert_eq!(reserved[0], caps[0]);
        assert!(reserved[1] < caps[1], "cold shard keeps headroom");
        // A key routed to shard 1 still stores fine.
        let cold = (0..).find(|&k| shard_of(k, 2) == 1).unwrap();
        assert!(kv.put(0, 100, cold, 3).unwrap());
    }

    #[test]
    fn hot_shard_compaction_unbricks_only_that_shard() {
        // PR 5's headline at the shard level: the hot shard fills, goes
        // read-only, compacts into a fresh generation, and accepts
        // strictly more than its original capacity — while the cold
        // shard never leaves generation 0.
        let stripe = eager_stripe(2);
        let kv = ShardedKvStore::format(stripe.regions(), 4, 8, KvVariant::Nsrl).unwrap();
        let hot_keys: Vec<u64> = (0..).filter(|&k| shard_of(k, 2) == 0).take(4).collect();
        let mut seq = 0u64;
        let mut applied = 0u64;
        for round in 0..10u64 {
            for &key in &hot_keys {
                seq += 1;
                if kv.shard(0).log_reserved().unwrap() >= kv.log_capacities().unwrap()[0] {
                    let stats = kv.compact_shard(0).unwrap();
                    assert!(stats.carried <= 4);
                }
                assert!(kv.put(0, seq, key, round as i64).unwrap(), "seq {seq}");
                applied += 1;
            }
        }
        assert_eq!(applied, 40, "5× the original 8-slot capacity");
        assert!(kv.generations().unwrap()[0] > 0, "hot shard swapped");
        assert_eq!(kv.generations().unwrap()[1], 0, "cold shard untouched");
        for &key in &hot_keys {
            assert_eq!(kv.get(key).unwrap(), Some(9));
        }
        // Recovery dual at the shard level: already-committed swaps are
        // recognized by the evidence scan.
        let gen = kv.generations().unwrap()[0];
        assert!(kv.recover_compact_shard(0, gen - 1).unwrap());
        assert_eq!(kv.generations().unwrap()[0], gen, "no duplicate swap");
    }

    #[test]
    fn parallel_writers_on_disjoint_shards_lose_nothing() {
        let stripe = eager_stripe(4);
        let kv = ShardedKvStore::format(stripe.regions(), 16, 1024, KvVariant::Nsrl).unwrap();
        let per = 128u64;
        std::thread::scope(|s| {
            for w in 0..4usize {
                let kv = kv.clone();
                s.spawn(move || {
                    let mut seq = 0;
                    for key in (0u64..per * 8).filter(|&k| shard_of(k, 4) == w) {
                        seq += 1;
                        assert!(kv.put(w as u64, seq, key, key as i64).unwrap());
                    }
                });
            }
        });
        let contents = kv.contents().unwrap();
        assert_eq!(contents.len(), (per * 8) as usize);
        for (k, v) in contents {
            assert_eq!(k as i64, v);
        }
    }

    #[test]
    fn parallel_batched_writers_per_shard() {
        // Buffered stripe, one thread per shard, each group-committing
        // its own keys — the group-commit fast path under parallelism.
        let stripe = buffered_stripe(4);
        let kv = ShardedKvStore::format(stripe.regions(), 16, 1024, KvVariant::Nsrl).unwrap();
        std::thread::scope(|s| {
            for w in 0..4usize {
                let kv = kv.clone();
                s.spawn(move || {
                    let keys: Vec<u64> = (0u64..1024).filter(|&k| shard_of(k, 4) == w).collect();
                    for chunk in keys.chunks(16) {
                        let mut batch = kv.batch();
                        for &key in chunk {
                            batch.put(w as u64, key + 1, key, key as i64);
                        }
                        assert!(batch.commit().unwrap().iter().all(|o| o.took_effect()));
                    }
                });
            }
        });
        assert_eq!(kv.contents().unwrap().len(), 1024);
        let agg: u64 = kv.flush_epochs().unwrap().iter().sum();
        assert!(agg > 0);
    }

    #[test]
    fn pipelined_cross_shard_batch_overlaps_flights_and_stays_clean() {
        let stripe = PMemBuilder::new().len(1 << 18).psan(true).build_striped(4);
        let mut kv = ShardedKvStore::format(stripe.regions(), 8, 64, KvVariant::Nsrl).unwrap();
        kv.set_pipeline(true);
        assert!(kv.is_pipelined());
        let mut batch = kv.batch();
        for key in 0..32u64 {
            batch.put(0, key + 1, key, key as i64);
        }
        batch.cas(0, 100, 5, 5, 50);
        batch.delete(0, 101, 6);
        let outcomes = batch.commit().unwrap();
        assert!(outcomes.iter().all(|o| o.took_effect()));
        assert_eq!(kv.get(5).unwrap(), Some(50));
        assert_eq!(kv.get(6).unwrap(), None);
        for (s, epoch) in kv.flush_epochs().unwrap().into_iter().enumerate() {
            assert_eq!(epoch, 1, "shard {s} must commit exactly once");
        }
        let agg = stripe.aggregate_stats();
        assert!(agg.async_flushes >= 8, "records + tail flights per shard");
        stripe.crash_all(3, 0.0);
        let stripe2 = stripe.reopen_all().unwrap();
        let kv2 = ShardedKvStore::open(stripe2.regions(), KvVariant::Nsrl).unwrap();
        assert_eq!(kv2.contents().unwrap().len(), 31);
        assert!(stripe2.psan_violations().is_empty());
    }

    #[test]
    fn sharded_lifecycle_is_psan_clean_and_format_wastes_no_persists() {
        for eager in [true, false] {
            let mut builder = PMemBuilder::new().len(1 << 18).psan(true);
            if eager {
                builder = builder.eager_flush(true);
            }
            let stripe = builder.build_striped(2);
            let kv = ShardedKvStore::format(stripe.regions(), 4, 16, KvVariant::Nsrl).unwrap();
            assert_eq!(
                stripe.aggregate_stats().redundant_persists,
                0,
                "eager={eager}: format burned a redundant persist round-trip"
            );
            let mut batch = kv.batch();
            for key in 0..12u64 {
                batch.put(0, key + 1, key, key as i64);
            }
            assert!(batch.commit().unwrap().iter().all(|o| o.took_effect()));
            kv.compact_shard(0).unwrap();
            stripe.crash_all(5, 0.0);
            let stripe2 = stripe.reopen_all().unwrap();
            let kv2 = ShardedKvStore::open(stripe2.regions(), KvVariant::Nsrl).unwrap();
            assert_eq!(kv2.contents().unwrap().len(), 12);
            let violations = stripe2.psan_violations();
            assert!(
                violations.is_empty(),
                "eager={eager}: PSan flagged the correct protocol: {violations:?}"
            );
        }
    }

    #[test]
    fn psan_attributes_sharded_violations_to_the_home_shard() {
        use pstack_nvram::PsanViolationKind;
        // The buggy variant publishes volatile records in whichever
        // shard the batch touches; the violation's region label must
        // name that shard.
        let stripe = PMemBuilder::new().len(1 << 18).psan(true).build_striped(2);
        let kv = ShardedKvStore::format(stripe.regions(), 4, 16, KvVariant::EarlyPublish).unwrap();
        let key = 3u64;
        let home = kv.shard_of(key);
        kv.shard(home)
            .apply_batch(&[KvBatchOp::Put {
                pid: 0,
                seq: 1,
                key,
                value: 30,
            }])
            .unwrap();
        let violations = stripe.psan_violations();
        let hit = violations
            .iter()
            .find(|v| matches!(v.kind, PsanViolationKind::EarlyPublish { .. }))
            .unwrap_or_else(|| panic!("expected an early-publish violation: {violations:?}"));
        assert_eq!(hit.region, format!("shard-{home}"));
        assert_eq!(hit.op_label, "kv.apply_batch");
        // The other shard stayed clean.
        assert!(stripe.region(1 - home).psan_violations().is_empty());
    }
}
