//! A **bounded, request-id-keyed** descriptor/answer table — the
//! durable half of exactly-once serving.
//!
//! [`KvOpTable`](crate::KvOpTable) holds a *static* workload: every
//! descriptor is formatted up front and indexed by position. A serving
//! front end cannot do that — requests arrive forever, each tagged with
//! a client-chosen request id, and retried requests must be answered
//! from the durable record of their first execution, never re-executed.
//! [`KvRequestTable`] is the dynamic dual: a fixed-capacity slab of
//! slots, each holding one request's descriptor and (once executed) its
//! answer, looked up by request id.
//!
//! # Lifecycle and recycling
//!
//! A slot moves `Free → Pending → Done → Done+Acked → Free`:
//!
//! * [`KvRequestTable::submit`] claims a free slot, persists the
//!   descriptor **before** any effect can execute (so an effect found
//!   in the store always has a durable descriptor naming it), and
//!   returns [`ReqSubmit::Full`] — the admission-control signal — when
//!   no slot is recyclable.
//! * [`KvRequestTable::mark_done`] / [`KvRequestTable::mark_done_batch`]
//!   persist the answer payload strictly before the one-byte done flag,
//!   exactly like the static table: a crash in between leaves the slot
//!   pending and recovery recomputes the answer through the store's
//!   evidence-scanning duals.
//! * [`KvRequestTable::ack`] records that the client received the
//!   answer. A slot that is both done and acked is **recyclable**: its
//!   next occupant overwrites it. This is what keeps a long-running
//!   server's answer table bounded (the table never grows; it sheds
//!   instead, see `Full` above).
//!
//! # The retry contract
//!
//! Recycling leans on the client contract: *a client never retransmits
//! a request after acknowledging its answer*. A retry of a live
//! request dedupes against the slot (pending → the caller routes it
//! through the recovery duals; done → the durable answer is replayed).
//! The contract is **not trusted blindly**: the table keeps a
//! per-client high-water line of acked sequence numbers, and a
//! retransmission at or below it whose slot has already been recycled
//! is shed as [`ReqSubmit::Stale`] instead of being admitted as a
//! fresh request — a buggy client gets a typed refusal, never a
//! second effect.
//!
//! # Crash safety of recycling
//!
//! Reusing a slot rewrites identity and descriptor fields in a fixed
//! order — completion state first (done/acked/flag cleared), descriptor
//! next, the request id **last** — and each slot is one 64-byte
//! cache-line-aligned extent, so a buffered region persists the whole
//! transition atomically. On an eager region a crash between the
//! individual writes can only produce a slot whose *old* request id
//! fronts a cleared completion state: a leak (its client acked and
//! will never ask again) that the next [`KvRequestTable::open`] counts
//! as live, never a new request paired with a stale answer.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use pstack_core::PError;
use pstack_heap::PHeap;
use pstack_nvram::{PMem, POffset};

use crate::funcs::{KvTaskAnswer, KvTaskOp, KvTaskResult};

const TABLE_MAGIC: u64 = 0x5053_4B56_5251_5431; // "PSKVRQT1"
const HEADER_LEN: u64 = 64; // keeps slot 0 cache-line aligned
const SLOT_STRIDE: u64 = 64; // one slot = one persist line

const KIND_PUT: u8 = 0;
const KIND_GET: u8 = 1;
const KIND_DEL: u8 = 2;
const KIND_CAS: u8 = 3;

const ST_DONE: u8 = 1;

// Slot field offsets (all inside the one 64-byte line).
const F_KIND: u64 = 0;
const F_DONE: u64 = 1;
const F_FLAG: u64 = 2;
const F_ACKED: u64 = 3;
const F_EXEC: u64 = 4;
const F_KEY: u64 = 8;
const F_VALUE: u64 = 16;
const F_EXPECTED: u64 = 24;
const F_GOT: u64 = 32;
const F_REQ_ID: u64 = 40;

/// Outcome of a [`KvRequestTable::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqSubmit {
    /// The request id was unknown; a slot now holds its durable
    /// descriptor and the operation has never executed.
    Fresh(u32),
    /// The request id is already in the table — a retry. `answer` is
    /// the durable answer when the first execution completed, `None`
    /// while the slot is still pending (route the retry through the
    /// store's recovery duals).
    Known {
        /// The slot holding the request.
        slot: u32,
        /// The durable answer, if the request already completed.
        answer: Option<KvTaskAnswer>,
    },
    /// Every slot is occupied by a request that is not yet both done
    /// and acked — the admission-control signal (shed the request with
    /// an explicit overload response; never drop it silently).
    Full,
    /// The request id is at or below its client's acknowledged
    /// high-water `seq` but no longer in the table — a retransmission
    /// of an answered-and-acked (possibly recycled) request, which the
    /// retry contract forbids. Shed it with an explicit stale response;
    /// admitting it would hand a buggy client a **second effect** for
    /// an id that already executed.
    Stale,
}

/// Splits a `(client_id << 32) | seq` request id into its halves — the
/// identity convention of the serving layer, which is what makes a
/// per-client high-water line possible.
fn split_id(req_id: u64) -> (u32, u32) {
    ((req_id >> 32) as u32, req_id as u32)
}

/// Volatile bookkeeping rebuilt by [`KvRequestTable::open`]: the
/// request-id index and the recyclable-slot free list.
#[derive(Debug, Default)]
struct ReqIndex {
    /// Request id → slot, for every slot whose identity is still
    /// meaningful (pending, done-unacked, and done+acked slots that
    /// have not been recycled yet — the latter still serve dedup hits).
    by_id: HashMap<u64, u32>,
    /// Slots whose next occupant may overwrite them (never used, or
    /// done + acked).
    free: Vec<u32>,
    /// Slots handed out again after an earlier occupant completed.
    recycled: u64,
    /// High-water mark of live (non-recyclable) slots.
    live_high_water: u64,
    /// Per-client high-water of **acked** sequence numbers — the
    /// server-side guard behind the client's never-retransmit-after-ack
    /// promise. A submit whose `(client, seq)` is at or below this line
    /// and absent from `by_id` is a stale retransmission
    /// ([`ReqSubmit::Stale`]), not a fresh admission. Rebuilt
    /// best-effort by [`KvRequestTable::open`] from the done+acked
    /// slots still present (evidence in recycled slots is gone — the
    /// line re-grows as the client acks again).
    acked_high: HashMap<u32, u32>,
}

/// A persistent, bounded, request-id-keyed descriptor/answer table.
///
/// # Example
///
/// ```
/// use pstack_nvram::PMemBuilder;
/// use pstack_heap::PHeap;
/// use pstack_kv::{KvRequestTable, KvTaskOp, KvTaskResult, ReqSubmit};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pmem = PMemBuilder::new().len(1 << 14).eager_flush(true).build_in_memory();
/// let heap = PHeap::format(pmem.clone(), 0u64.into(), 1 << 14)?;
/// let table = KvRequestTable::format(pmem, &heap, 4)?;
///
/// // First delivery: a fresh slot.
/// let ReqSubmit::Fresh(slot) = table.submit(0x1_0001, KvTaskOp::Put { key: 9, value: 4 })? else {
///     panic!("fresh request");
/// };
/// table.mark_done(slot, 1, KvTaskResult::Stored(true))?;
///
/// // A retry dedupes against the durable answer instead of re-executing.
/// let ReqSubmit::Known { answer: Some(a), .. } =
///     table.submit(0x1_0001, KvTaskOp::Put { key: 9, value: 4 })? else {
///     panic!("retry must hit the table");
/// };
/// assert_eq!(a.result, KvTaskResult::Stored(true));
///
/// // Ack → the slot becomes recyclable.
/// assert!(table.ack(0x1_0001)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KvRequestTable {
    pmem: PMem,
    base: POffset,
    capacity: u32,
    idx: Arc<Mutex<ReqIndex>>,
}

impl KvRequestTable {
    /// Bytes of NVRAM needed for a `capacity`-slot table.
    #[must_use]
    pub fn required_len(capacity: u32) -> usize {
        (HEADER_LEN + u64::from(capacity) * SLOT_STRIDE) as usize
    }

    /// Allocates and persists an empty table of `capacity` slots.
    ///
    /// # Errors
    ///
    /// Heap or NVRAM errors, or [`PError::InvalidConfig`] for zero
    /// capacity.
    pub fn format(pmem: PMem, heap: &PHeap, capacity: u32) -> Result<Self, PError> {
        if capacity == 0 {
            return Err(PError::InvalidConfig(
                "request table needs at least one slot".into(),
            ));
        }
        let len = Self::required_len(capacity);
        let base = heap.alloc_aligned(len, 64)?;
        pmem.fill(base, 0, len)?;
        pmem.write_u64(base, TABLE_MAGIC)?;
        pmem.write_u64(base + 8u64, u64::from(capacity))?;
        pmem.flush(base, len)?;
        let idx = ReqIndex {
            free: (0..capacity).rev().collect(),
            ..ReqIndex::default()
        };
        Ok(KvRequestTable {
            pmem,
            base,
            capacity,
            idx: Arc::new(Mutex::new(idx)),
        })
    }

    /// Re-attaches to a table created at `base`, rebuilding the
    /// volatile request-id index and free list from the durable slots.
    ///
    /// # Errors
    ///
    /// [`PError::CorruptStack`] on a bad magic word, NVRAM errors.
    pub fn open(pmem: PMem, base: POffset) -> Result<Self, PError> {
        let magic = pmem.read_u64(base)?;
        if magic != TABLE_MAGIC {
            return Err(PError::CorruptStack(format!(
                "bad request-table magic {magic:#x} at {base}"
            )));
        }
        let capacity = u32::try_from(pmem.read_u64(base + 8u64)?)
            .map_err(|_| PError::CorruptStack("request-table capacity overflow".into()))?;
        let mut idx = ReqIndex::default();
        for slot in (0..capacity).rev() {
            let e = Self::slot_off(base, slot);
            let req_id = pmem.read_u64(e + F_REQ_ID)?;
            if req_id == 0 {
                idx.free.push(slot);
                continue;
            }
            let done = pmem.read_u8(e + F_DONE)? == ST_DONE;
            let acked = pmem.read_u8(e + F_ACKED)? != 0;
            if done && acked {
                idx.free.push(slot);
                // Best-effort rebuild of the per-client acked
                // high-water line from the evidence still in the table
                // (recycled slots' evidence is gone; the line re-grows
                // as the client acks again).
                let (client, seq) = split_id(req_id);
                let hw = idx.acked_high.entry(client).or_insert(0);
                *hw = (*hw).max(seq);
            }
            // Done+acked slots stay in the index until recycled: a
            // duplicate retry that races the ack still dedupes.
            idx.by_id.insert(req_id, slot);
        }
        idx.live_high_water = u64::from(capacity) - idx.free.len() as u64;
        Ok(KvRequestTable {
            pmem,
            base,
            capacity,
            idx: Arc::new(Mutex::new(idx)),
        })
    }

    fn slot_off(base: POffset, slot: u32) -> POffset {
        base + (HEADER_LEN + u64::from(slot) * SLOT_STRIDE)
    }

    fn slot(&self, slot: u32) -> Result<POffset, PError> {
        if slot >= self.capacity {
            return Err(PError::InvalidConfig(format!(
                "slot {slot} out of range ({} slots)",
                self.capacity
            )));
        }
        Ok(Self::slot_off(self.base, slot))
    }

    /// The table's base offset (persist it to find the table again).
    #[must_use]
    pub fn base(&self) -> POffset {
        self.base
    }

    /// Number of slots — the hard bound on outstanding-or-unacked
    /// requests.
    #[must_use]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Slots currently holding a request that is not yet recyclable.
    ///
    /// # Panics
    ///
    /// Panics if the volatile index lock is poisoned.
    #[must_use]
    pub fn live(&self) -> u64 {
        let idx = self.idx.lock().expect("request-table index poisoned");
        u64::from(self.capacity) - idx.free.len() as u64
    }

    /// High-water mark of live slots since this handle family opened —
    /// the number a bounded-growth assertion checks.
    ///
    /// # Panics
    ///
    /// Panics if the volatile index lock is poisoned.
    #[must_use]
    pub fn live_high_water(&self) -> u64 {
        self.idx
            .lock()
            .expect("request-table index poisoned")
            .live_high_water
    }

    /// Slots handed out again after an earlier occupant was answered
    /// and acked.
    ///
    /// # Panics
    ///
    /// Panics if the volatile index lock is poisoned.
    #[must_use]
    pub fn recycled(&self) -> u64 {
        self.idx
            .lock()
            .expect("request-table index poisoned")
            .recycled
    }

    /// Admits request `req_id` into the table: dedups against live and
    /// answered slots, sheds stale retransmissions of already-acked
    /// sequence numbers ([`ReqSubmit::Stale`]), claims (possibly
    /// recycling) a slot for a fresh id, and reports
    /// [`ReqSubmit::Full`] when nothing is recyclable. A fresh
    /// descriptor is durable when this returns — effects can only
    /// execute after their descriptor.
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] for the reserved id 0, NVRAM errors.
    ///
    /// # Panics
    ///
    /// Panics if the volatile index lock is poisoned.
    pub fn submit(&self, req_id: u64, op: KvTaskOp) -> Result<ReqSubmit, PError> {
        if req_id == 0 {
            return Err(PError::InvalidConfig(
                "request id 0 is reserved for free slots".into(),
            ));
        }
        let mut idx = self.idx.lock().expect("request-table index poisoned");
        if let Some(&slot) = idx.by_id.get(&req_id) {
            return Ok(ReqSubmit::Known {
                slot,
                answer: self.result(slot)?,
            });
        }
        // Stale-retransmission guard: the id is gone from the table but
        // its client already acked this seq (or a later one) — the slot
        // was legitimately recycled and re-admitting would re-execute.
        let (client, seq) = split_id(req_id);
        if idx.acked_high.get(&client).is_some_and(|&hw| seq <= hw) {
            return Ok(ReqSubmit::Stale);
        }
        let Some(slot) = idx.free.pop() else {
            return Ok(ReqSubmit::Full);
        };
        let e = self.slot(slot)?;
        let old_id = self.pmem.read_u64(e + F_REQ_ID)?;
        if old_id != 0 {
            idx.by_id.remove(&old_id);
            idx.recycled += 1;
        }
        // Completion state first, identity last (see module docs: an
        // eager-region crash inside this sequence can only leak the old
        // occupant, never marry the new id to stale state).
        self.pmem.write_u8(e + F_DONE, 0)?;
        self.pmem.write_u8(e + F_ACKED, 0)?;
        self.pmem.write_u8(e + F_FLAG, 0)?;
        self.pmem.write_u32(e + F_EXEC, 0)?;
        self.pmem.write_i64(e + F_GOT, 0)?;
        match op {
            KvTaskOp::Put { key, value } => {
                self.pmem.write_u8(e + F_KIND, KIND_PUT)?;
                self.pmem.write_u64(e + F_KEY, key)?;
                self.pmem.write_i64(e + F_VALUE, value)?;
                self.pmem.write_i64(e + F_EXPECTED, 0)?;
            }
            KvTaskOp::Get { key } => {
                self.pmem.write_u8(e + F_KIND, KIND_GET)?;
                self.pmem.write_u64(e + F_KEY, key)?;
                self.pmem.write_i64(e + F_VALUE, 0)?;
                self.pmem.write_i64(e + F_EXPECTED, 0)?;
            }
            KvTaskOp::Delete { key } => {
                self.pmem.write_u8(e + F_KIND, KIND_DEL)?;
                self.pmem.write_u64(e + F_KEY, key)?;
                self.pmem.write_i64(e + F_VALUE, 0)?;
                self.pmem.write_i64(e + F_EXPECTED, 0)?;
            }
            KvTaskOp::Cas { key, expected, new } => {
                self.pmem.write_u8(e + F_KIND, KIND_CAS)?;
                self.pmem.write_u64(e + F_KEY, key)?;
                self.pmem.write_i64(e + F_VALUE, new)?;
                self.pmem.write_i64(e + F_EXPECTED, expected)?;
            }
        }
        self.pmem.write_u64(e + F_REQ_ID, req_id)?;
        self.pmem.flush(e, SLOT_STRIDE as usize)?;
        idx.by_id.insert(req_id, slot);
        let live = u64::from(self.capacity) - idx.free.len() as u64;
        idx.live_high_water = idx.live_high_water.max(live);
        Ok(ReqSubmit::Fresh(slot))
    }

    /// Looks request `req_id` up without admitting anything.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    ///
    /// # Panics
    ///
    /// Panics if the volatile index lock is poisoned.
    pub fn lookup(&self, req_id: u64) -> Result<Option<(u32, Option<KvTaskAnswer>)>, PError> {
        let idx = self.idx.lock().expect("request-table index poisoned");
        match idx.by_id.get(&req_id) {
            Some(&slot) => Ok(Some((slot, self.result(slot)?))),
            None => Ok(None),
        }
    }

    /// Reads slot `slot`'s request id (0 for never-used slots).
    ///
    /// # Errors
    ///
    /// Out-of-range slot or NVRAM errors.
    pub fn req_id(&self, slot: u32) -> Result<u64, PError> {
        Ok(self.pmem.read_u64(self.slot(slot)? + F_REQ_ID)?)
    }

    /// Reads slot `slot`'s operation.
    ///
    /// # Errors
    ///
    /// Out-of-range slot, an unknown kind byte (corruption), or NVRAM
    /// errors.
    pub fn op(&self, slot: u32) -> Result<KvTaskOp, PError> {
        let e = self.slot(slot)?;
        let key = self.pmem.read_u64(e + F_KEY)?;
        match self.pmem.read_u8(e + F_KIND)? {
            KIND_PUT => Ok(KvTaskOp::Put {
                key,
                value: self.pmem.read_i64(e + F_VALUE)?,
            }),
            KIND_GET => Ok(KvTaskOp::Get { key }),
            KIND_DEL => Ok(KvTaskOp::Delete { key }),
            KIND_CAS => Ok(KvTaskOp::Cas {
                key,
                expected: self.pmem.read_i64(e + F_EXPECTED)?,
                new: self.pmem.read_i64(e + F_VALUE)?,
            }),
            other => Err(PError::CorruptStack(format!(
                "slot {slot} has unknown kind {other}"
            ))),
        }
    }

    /// Reads slot `slot`'s answer, if its execution completed.
    ///
    /// # Errors
    ///
    /// Out-of-range slot, an unknown kind byte (corruption), or NVRAM
    /// errors.
    pub fn result(&self, slot: u32) -> Result<Option<KvTaskAnswer>, PError> {
        let e = self.slot(slot)?;
        if self.pmem.read_u8(e + F_DONE)? != ST_DONE {
            return Ok(None);
        }
        let executor = self.pmem.read_u32(e + F_EXEC)?;
        let flag = self.pmem.read_u8(e + F_FLAG)? != 0;
        let result = match self.pmem.read_u8(e + F_KIND)? {
            KIND_PUT => KvTaskResult::Stored(flag),
            KIND_GET => KvTaskResult::Got(if flag {
                Some(self.pmem.read_i64(e + F_GOT)?)
            } else {
                None
            }),
            KIND_DEL => KvTaskResult::Deleted(flag),
            KIND_CAS => KvTaskResult::Swapped(flag),
            other => {
                return Err(PError::CorruptStack(format!(
                    "slot {slot} has unknown kind {other}"
                )))
            }
        };
        Ok(Some(KvTaskAnswer { executor, result }))
    }

    /// `true` if slot `slot`'s answer was acknowledged by its client.
    ///
    /// # Errors
    ///
    /// Out-of-range slot or NVRAM errors.
    pub fn acked(&self, slot: u32) -> Result<bool, PError> {
        Ok(self.pmem.read_u8(self.slot(slot)? + F_ACKED)? != 0)
    }

    fn write_answer(
        &self,
        slot: u32,
        executor: u32,
        result: KvTaskResult,
    ) -> Result<POffset, PError> {
        let e = self.slot(slot)?;
        self.pmem.write_u32(e + F_EXEC, executor)?;
        match result {
            KvTaskResult::Stored(ok) | KvTaskResult::Deleted(ok) | KvTaskResult::Swapped(ok) => {
                self.pmem.write_u8(e + F_FLAG, u8::from(ok))?;
            }
            KvTaskResult::Got(None) => {
                self.pmem.write_u8(e + F_FLAG, 0)?;
            }
            KvTaskResult::Got(Some(v)) => {
                self.pmem.write_i64(e + F_GOT, v)?;
                self.pmem.write_u8(e + F_FLAG, 1)?;
            }
        }
        Ok(e)
    }

    /// Persists slot `slot`'s answer: payload strictly before the done
    /// flag, so a crash in between leaves the request pending and
    /// recovery recomputes the answer through the evidence scan.
    ///
    /// # Errors
    ///
    /// Out-of-range slot or NVRAM errors.
    pub fn mark_done(&self, slot: u32, executor: u32, result: KvTaskResult) -> Result<(), PError> {
        let e = self.write_answer(slot, executor, result)?;
        self.pmem.flush(e, SLOT_STRIDE as usize)?;
        self.pmem.write_u8(e + F_DONE, ST_DONE)?;
        self.pmem.flush(e + F_DONE, 1)?;
        Ok(())
    }

    /// Persists a whole batch of answers with two coalesced persists
    /// (all payloads, then all done flags) — the answer half of a
    /// group-commit window, with [`KvRequestTable::mark_done`]'s
    /// per-slot ordering invariant preserved.
    ///
    /// # Errors
    ///
    /// Out-of-range slot or NVRAM errors.
    pub fn mark_done_batch(&self, entries: &[(u32, u32, KvTaskResult)]) -> Result<(), PError> {
        let Some(&(first, ..)) = entries.first() else {
            return Ok(());
        };
        let mut lo = Self::slot_off(self.base, first).get();
        let mut hi = lo;
        for &(slot, executor, result) in entries {
            let e = self.write_answer(slot, executor, result)?;
            lo = lo.min(e.get());
            hi = hi.max(e.get());
        }
        let span = (hi - lo + SLOT_STRIDE) as usize;
        self.pmem.flush(POffset::new(lo), span)?;
        for &(slot, ..) in entries {
            self.pmem
                .write_u8(Self::slot_off(self.base, slot) + F_DONE, ST_DONE)?;
        }
        self.pmem.flush(POffset::new(lo), span)?;
        Ok(())
    }

    /// Records the client's acknowledgement of `req_id`'s answer and
    /// frees the slot for recycling. Returns `false` for unknown ids
    /// (already recycled, or never admitted) and done-less slots
    /// (acks are only valid answers to a durable `Done`).
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    ///
    /// # Panics
    ///
    /// Panics if the volatile index lock is poisoned.
    pub fn ack(&self, req_id: u64) -> Result<bool, PError> {
        let mut idx = self.idx.lock().expect("request-table index poisoned");
        let Some(&slot) = idx.by_id.get(&req_id) else {
            return Ok(false);
        };
        let e = self.slot(slot)?;
        if self.pmem.read_u8(e + F_DONE)? != ST_DONE {
            return Ok(false);
        }
        if self.pmem.read_u8(e + F_ACKED)? == 0 {
            self.pmem.write_u8(e + F_ACKED, 1)?;
            self.pmem.flush(e + F_ACKED, 1)?;
            idx.free.push(slot);
        }
        // Advance the client's acked high-water line: from here on a
        // retransmission of this seq (or below) is shed as Stale once
        // its slot recycles.
        let (client, seq) = split_id(req_id);
        let hw = idx.acked_high.entry(client).or_insert(0);
        *hw = (*hw).max(seq);
        Ok(true)
    }

    /// Slots holding a request whose execution has not completed, in
    /// slot order — what a reboot re-drives through the recovery duals
    /// when the client retries.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn pending_slots(&self) -> Result<Vec<u32>, PError> {
        let mut out = Vec::new();
        for slot in 0..self.capacity {
            let e = self.slot(slot)?;
            if self.pmem.read_u64(e + F_REQ_ID)? != 0 && self.pmem.read_u8(e + F_DONE)? != ST_DONE {
                out.push(slot);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_nvram::PMemBuilder;

    fn fixture(capacity: u32) -> (PMem, KvRequestTable) {
        let pmem = PMemBuilder::new()
            .len(1 << 16)
            .eager_flush(true)
            .build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 16).unwrap();
        let table = KvRequestTable::format(pmem.clone(), &heap, capacity).unwrap();
        (pmem, table)
    }

    #[test]
    fn submit_dedup_done_ack_round_trip() {
        let (pmem, table) = fixture(4);
        assert_eq!(table.capacity(), 4);
        assert_eq!(table.live(), 0);

        let op = KvTaskOp::Cas {
            key: 3,
            expected: -1,
            new: 7,
        };
        let ReqSubmit::Fresh(slot) = table.submit(0x7_0001, op).unwrap() else {
            panic!("fresh")
        };
        assert_eq!(table.op(slot).unwrap(), op);
        assert_eq!(table.req_id(slot).unwrap(), 0x7_0001);
        assert_eq!(table.live(), 1);
        assert_eq!(table.pending_slots().unwrap(), vec![slot]);

        // A retry before completion dedupes to the pending slot.
        assert_eq!(
            table.submit(0x7_0001, op).unwrap(),
            ReqSubmit::Known { slot, answer: None }
        );

        table
            .mark_done(slot, 7, KvTaskResult::Swapped(true))
            .unwrap();
        let ReqSubmit::Known {
            answer: Some(ans), ..
        } = table.submit(0x7_0001, op).unwrap()
        else {
            panic!("done retry")
        };
        assert_eq!(ans.executor, 7);
        assert_eq!(ans.result, KvTaskResult::Swapped(true));

        assert!(!table.acked(slot).unwrap());
        assert!(table.ack(0x7_0001).unwrap());
        assert!(table.acked(slot).unwrap());
        assert_eq!(table.live(), 0, "done+acked slots are recyclable");
        // Acks are idempotent; unknown ids are refused.
        assert!(table.ack(0x7_0001).unwrap());
        assert!(!table.ack(0xDEAD).unwrap());
        // Reopen rebuilds the same view.
        let t2 = KvRequestTable::open(pmem, table.base()).unwrap();
        assert_eq!(t2.live(), 0);
        assert_eq!(
            t2.lookup(0x7_0001).unwrap().unwrap().1.unwrap().result,
            KvTaskResult::Swapped(true)
        );
    }

    #[test]
    fn ack_of_pending_slot_is_refused() {
        let (_, table) = fixture(2);
        table.submit(5, KvTaskOp::Get { key: 0 }).unwrap();
        assert!(!table.ack(5).unwrap(), "only durable answers can be acked");
        assert_eq!(table.live(), 1);
    }

    #[test]
    fn full_table_sheds_and_recycling_keeps_it_bounded() {
        // Satellite gate: a long-running server's answer table must not
        // grow without bound. 10× more requests than slots, each
        // answered and acked, all through a 8-slot table.
        let (_, table) = fixture(8);
        for req in 1..=80u64 {
            let ReqSubmit::Fresh(slot) = table.submit(req, KvTaskOp::Get { key: req }).unwrap()
            else {
                panic!("req {req} should find a recycled slot")
            };
            table.mark_done(slot, 0, KvTaskResult::Got(None)).unwrap();
            assert!(table.ack(req).unwrap());
        }
        assert!(table.live_high_water() <= 8);
        assert_eq!(
            table.recycled(),
            79,
            "every request after the first reused a slot"
        );

        // Un-acked answers pin their slots: the table fills and sheds
        // explicitly instead of growing.
        for req in 100..108u64 {
            let ReqSubmit::Fresh(slot) = table.submit(req, KvTaskOp::Get { key: 1 }).unwrap()
            else {
                panic!("slots free again")
            };
            table.mark_done(slot, 0, KvTaskResult::Got(None)).unwrap();
        }
        assert_eq!(
            table.submit(999, KvTaskOp::Get { key: 1 }).unwrap(),
            ReqSubmit::Full
        );
        assert_eq!(table.live(), 8);
        // Draining one ack frees exactly one admission.
        assert!(table.ack(100).unwrap());
        assert!(matches!(
            table.submit(999, KvTaskOp::Get { key: 1 }).unwrap(),
            ReqSubmit::Fresh(_)
        ));
    }

    #[test]
    fn recycled_req_id_retransmission_is_shed_as_stale() {
        // Regression: a buggy client that retransmits an id whose slot
        // has been recycled must not be re-admitted as Fresh — the
        // effect already executed and the evidence is gone. The
        // per-client acked high-water line sheds it as `Stale`.
        let id = |client: u32, seq: u32| (u64::from(client) << 32) | u64::from(seq);
        let (pmem, table) = fixture(2);

        // Client 1 runs seq 1 to completion and acks it.
        let ReqSubmit::Fresh(slot) = table.submit(id(1, 1), KvTaskOp::Get { key: 9 }).unwrap()
        else {
            panic!("fresh")
        };
        table.mark_done(slot, 0, KvTaskResult::Got(None)).unwrap();
        assert!(table.ack(id(1, 1)).unwrap());

        // Another client recycles the table until client 1's evidence
        // is overwritten.
        for seq in 1..=4u32 {
            let ReqSubmit::Fresh(s) = table.submit(id(2, seq), KvTaskOp::Get { key: 1 }).unwrap()
            else {
                panic!("recyclable")
            };
            table.mark_done(s, 0, KvTaskResult::Got(None)).unwrap();
            assert!(table.ack(id(2, seq)).unwrap());
        }
        assert!(table.lookup(id(1, 1)).unwrap().is_none(), "evidence gone");

        // The buggy retransmission is shed, not re-executed and not
        // treated as overload.
        assert_eq!(
            table.submit(id(1, 1), KvTaskOp::Get { key: 9 }).unwrap(),
            ReqSubmit::Stale
        );
        // Reopen rebuilds the line from surviving done+acked slots:
        // client 2's latest acked seq still sits in a slot, so its
        // earlier seqs stay shed across a restart. (Shedding writes
        // nothing, so the probe leaves the table untouched.)
        let t2 = KvRequestTable::open(pmem, table.base()).unwrap();
        assert_eq!(
            t2.submit(id(2, 3), KvTaskOp::Get { key: 1 }).unwrap(),
            ReqSubmit::Stale,
            "acked high-water rebuilt from slot evidence"
        );

        // A genuinely new seq from the same client is still admitted.
        assert!(matches!(
            table
                .submit(id(1, 2), KvTaskOp::Put { key: 9, value: 1 })
                .unwrap(),
            ReqSubmit::Fresh(_)
        ));
    }

    #[test]
    fn recycle_is_atomic_on_buffered_regions() {
        // A slot is one aligned persist line: crash at any flush
        // boundary of a recycle leaves either the old occupant (done,
        // acked) or the new one (pending), never a mix.
        use pstack_nvram::FailPlan;
        let build = || {
            let pmem = PMemBuilder::new().len(1 << 16).build_in_memory(); // buffered
            let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 16).unwrap();
            let table = KvRequestTable::format(pmem.clone(), &heap, 1).unwrap();
            let ReqSubmit::Fresh(slot) =
                table.submit(1, KvTaskOp::Put { key: 4, value: 2 }).unwrap()
            else {
                panic!("fresh")
            };
            table
                .mark_done(slot, 0, KvTaskResult::Stored(true))
                .unwrap();
            table.ack(1).unwrap();
            (pmem, table)
        };
        let (pmem, table) = build();
        let e0 = pmem.events();
        table.submit(2, KvTaskOp::Delete { key: 9 }).unwrap();
        let total = pmem.events() - e0;
        assert!(total >= 1);

        for k in 0..total {
            let (pmem, table) = build();
            pmem.arm_failpoint(FailPlan::after_events(k));
            assert!(table
                .submit(2, KvTaskOp::Delete { key: 9 })
                .unwrap_err()
                .is_crash());
            let pmem2 = pmem.reopen().unwrap();
            let t2 = KvRequestTable::open(pmem2, table.base()).unwrap();
            match t2.req_id(0).unwrap() {
                1 => {
                    // Old occupant intact: done, acked, recyclable.
                    assert_eq!(
                        t2.result(0).unwrap().unwrap().result,
                        KvTaskResult::Stored(true)
                    );
                    assert!(t2.acked(0).unwrap());
                    assert_eq!(t2.live(), 0);
                }
                2 => {
                    // New occupant fully installed and pending.
                    assert_eq!(t2.op(0).unwrap(), KvTaskOp::Delete { key: 9 });
                    assert!(t2.result(0).unwrap().is_none());
                    assert_eq!(t2.pending_slots().unwrap(), vec![0]);
                }
                other => panic!("crash at event {k}: torn identity {other}"),
            }
        }
    }

    #[test]
    fn mark_done_batch_coalesces() {
        let pmem = PMemBuilder::new().len(1 << 16).build_in_memory(); // buffered
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 16).unwrap();
        let table = KvRequestTable::format(pmem.clone(), &heap, 8).unwrap();
        let mut entries = Vec::new();
        for req in 1..=8u64 {
            let ReqSubmit::Fresh(slot) = table.submit(req, KvTaskOp::Get { key: req }).unwrap()
            else {
                panic!("fresh")
            };
            entries.push((slot, 1u32, KvTaskResult::Got(Some(req as i64))));
        }
        let before = pmem.stats().snapshot();
        table.mark_done_batch(&entries).unwrap();
        let delta = pmem.stats().snapshot() - before;
        assert_eq!(delta.persists, 2, "one payload persist + one flag persist");
        for (slot, _, expect) in entries {
            assert_eq!(table.result(slot).unwrap().unwrap().result, expect);
        }
        assert!(table.mark_done_batch(&[]).is_ok());
    }

    #[test]
    fn rejects_bad_magic_zero_capacity_and_reserved_id() {
        let (pmem, table) = fixture(2);
        let heap = PHeap::format(
            PMemBuilder::new()
                .len(1 << 14)
                .eager_flush(true)
                .build_in_memory(),
            POffset::new(0),
            1 << 14,
        )
        .unwrap();
        assert!(matches!(
            KvRequestTable::format(heap_pmem(&heap), &heap, 0),
            Err(PError::InvalidConfig(_))
        ));
        assert!(matches!(
            KvRequestTable::open(pmem, POffset::new(4096)),
            Err(PError::CorruptStack(_))
        ));
        assert!(matches!(
            table.submit(0, KvTaskOp::Get { key: 1 }),
            Err(PError::InvalidConfig(_))
        ));
        assert!(table.op(99).is_err());
    }

    fn heap_pmem(heap: &PHeap) -> PMem {
        heap.pmem().clone()
    }
}
