//! Property tests for the lock-free shard hot path: random crews of
//! concurrent mutators × compactions racing them through the quiesce
//! gate × crash placements landing between the reserve → persist →
//! publish steps, all checked against the sequential spec — every
//! mutation takes effect exactly once, every surviving chain replays,
//! and the persist-order sanitizer stays silent.
//!
//! # Reproducing failures
//!
//! The proptest shim has no shrinking; every case is deterministic per
//! (test, case index). `PROPTEST_SHIM_SEED=<u64>` perturbs all case
//! seeds, `PROPTEST_CASES=<n>` sets cases per property. (The racing
//! threads make the exact event interleaving schedule-dependent, so a
//! crash lands *within* its seeded window rather than on a replayable
//! event — rerun a failing seed a few times when hunting.)

use proptest::prelude::*;

use pstack_heap::PHeap;
use pstack_kv::{KvVariant, PKvStore};
use pstack_nvram::{FailPlan, PMemBuilder, POffset};
use pstack_verify::{check_kv_gen, KvAnswer, KvHistory, KvOp, KvOpKind};

const REGION: usize = 1 << 21;
const NBUCKETS: u64 = 8;
const LOG_CAP: u64 = 1024;
const KEY_SPACE: u64 = 8;

/// One planned mutation, derived deterministically from a strategy
/// word. Tags are `(mutator pid, per-mutator seq)` — globally unique.
#[derive(Debug, Clone, Copy)]
struct Planned {
    pid: u64,
    seq: u64,
    kind: KvOpKind,
    key: u64,
    value: i64,
    expected: i64,
}

fn plan_op(pid: u64, seq: u64, word: u64) -> Planned {
    let kind = match word % 10 {
        0..=5 => KvOpKind::Put,
        6 | 7 => KvOpKind::Delete,
        _ => KvOpKind::Cas,
    };
    Planned {
        pid,
        seq,
        kind,
        key: (word / 10) % KEY_SPACE,
        value: ((word / 80) % 50) as i64,
        expected: ((word / 4000) % 50) as i64,
    }
}

/// What one mutator thread brings back from a live round: the ops it
/// answered, plus the index of the op a crash cut mid-flight (outcome
/// unknown — must settle through a recovery dual).
type MutatorRound = (Vec<(usize, bool)>, Option<usize>);

fn to_kv_op(p: Planned, ok: bool) -> KvOp {
    KvOp {
        pid: p.pid,
        seq: p.seq,
        kind: p.kind,
        key: p.key,
        value: p.value,
        expected: p.expected,
        answer: match p.kind {
            KvOpKind::Put => KvAnswer::Stored(ok),
            KvOpKind::Delete => KvAnswer::Deleted(ok),
            KvOpKind::Cas => KvAnswer::Swapped(ok),
            KvOpKind::Get => unreachable!("the plan holds only mutations"),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Concurrent per-shard mutators × compaction quiesce × crash
    /// placement. Live rounds race `mutators` lock-free publishers
    /// against a concurrent compaction; armed fail-point countdowns
    /// cut executions between reserve, persist and publish (and inside
    /// the compaction's quiesced rewrite). After each crash the store
    /// reopens, settles interrupted compactions from evidence, and
    /// answers every *attempted* op through its recovery dual before
    /// the next crew races. The finished execution must replay against
    /// the sequential spec with exactly-once effects and a clean
    /// sanitizer.
    #[test]
    fn concurrent_mutators_compaction_and_crashes_linearize(
        mutators in 2usize..5,
        words in proptest::collection::vec(0u64..1_000_000, 12..72),
        countdowns in proptest::collection::vec(20u64..400, 0..4),
    ) {
        let mut pmem = PMemBuilder::new()
            .len(REGION)
            .psan(true)
            .build_in_memory();
        let mut heap = PHeap::format(pmem.clone(), POffset::new(0), REGION as u64).unwrap();
        let mut store =
            PKvStore::format(pmem.clone(), &heap, NBUCKETS, LOG_CAP, KvVariant::Nsrl).unwrap();
        let base = store.base();

        // Thread m owns plan indices m, m + mutators, ... in order.
        let plan: Vec<Planned> = words
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let m = i % mutators;
                plan_op(m as u64 + 1, (i / mutators) as u64 + 1, w)
            })
            .collect();
        let mut answered: Vec<Option<bool>> = vec![None; plan.len()];
        // Ops a thread *started* before a crash: unknown outcome, must
        // go through the evidence-scanning recovery duals.
        let mut attempted: Vec<bool> = vec![false; plan.len()];
        let mut crashes = countdowns.into_iter();
        let mut rounds = 0usize;

        while answered.iter().any(Option::is_none) {
            rounds += 1;
            prop_assert!(rounds < 64, "execution did not quiesce");

            // Settle the attempted-but-unanswered ops from evidence,
            // single-threaded — the recovery discipline both drive
            // modes share.
            for i in 0..plan.len() {
                if answered[i].is_some() || !attempted[i] {
                    continue;
                }
                let p = plan[i];
                let ok = match p.kind {
                    KvOpKind::Put => store.recover_put(p.pid, p.seq, p.key, p.value).unwrap(),
                    KvOpKind::Delete => store.recover_delete(p.pid, p.seq, p.key).unwrap(),
                    KvOpKind::Cas => store
                        .recover_cas(p.pid, p.seq, p.key, p.expected, p.value)
                        .unwrap(),
                    KvOpKind::Get => unreachable!(),
                };
                answered[i] = Some(ok);
            }

            // The live crew: each mutator publishes its next ops
            // lock-free while a compaction races them through the
            // quiesce gate.
            let fresh: Vec<Vec<usize>> = (0..mutators)
                .map(|m| {
                    (m..plan.len())
                        .step_by(mutators)
                        .filter(|&i| answered[i].is_none())
                        .collect()
                })
                .collect();
            if fresh.iter().all(Vec::is_empty) {
                break;
            }
            let gen_before = store.generation().unwrap();
            if let Some(countdown) = crashes.next() {
                pmem.arm_failpoint(FailPlan::after_events(countdown));
            }
            let crew: Vec<MutatorRound> = std::thread::scope(|sc| {
                let compactor = {
                    let store = store.clone();
                    let heap = heap.clone();
                    sc.spawn(move || match store.compact(&heap) {
                        Ok(_) => Ok(()),
                        Err(e) if e.is_crash() => Ok(()),
                        Err(e) => Err(e),
                    })
                };
                let handles: Vec<_> = fresh
                    .iter()
                    .map(|mine| {
                        let store = store.clone();
                        let plan = &plan;
                        sc.spawn(move || {
                            let mut done = Vec::new();
                            for &i in mine {
                                let p = plan[i];
                                let r = match p.kind {
                                    KvOpKind::Put => store.put(p.pid, p.seq, p.key, p.value),
                                    KvOpKind::Delete => store.delete(p.pid, p.seq, p.key),
                                    KvOpKind::Cas => {
                                        store.cas(p.pid, p.seq, p.key, p.expected, p.value)
                                    }
                                    KvOpKind::Get => unreachable!(),
                                };
                                match r {
                                    Ok(ok) => done.push((i, ok)),
                                    // Crash mid-op: outcome unknown.
                                    Err(e) if e.is_crash() => return (done, Some(i)),
                                    Err(e) => panic!("mutator failed: {e}"),
                                }
                            }
                            (done, None)
                        })
                    })
                    .collect();
                compactor.join().expect("compactor panicked").unwrap();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("mutator panicked"))
                    .collect()
            });
            for (done, cut) in crew {
                for (i, ok) in done {
                    answered[i] = Some(ok);
                }
                if let Some(i) = cut {
                    attempted[i] = true;
                }
            }

            if pmem.is_crashed() {
                // Power failure: unflushed lines are gone. Reopen,
                // settle any interrupted compaction from evidence,
                // then loop back into the recovery pass.
                pmem = pmem.reopen().unwrap();
                heap = PHeap::open(pmem.clone(), POffset::new(0)).unwrap();
                store = PKvStore::open(pmem.clone(), base, KvVariant::Nsrl).unwrap();
                store.recover_compact(&heap, gen_before).unwrap();
            } else {
                pmem.disarm_failpoint();
            }
        }

        // Replay against the sequential spec: every chain record owned
        // by exactly one op, every effectful answer backed by exactly
        // one record, compaction carries faithful.
        let history = KvHistory {
            ops: plan
                .iter()
                .zip(&answered)
                .map(|(&p, ok)| to_kv_op(p, ok.unwrap()))
                .collect(),
            chains: store
                .snapshot()
                .unwrap()
                .into_iter()
                .map(|chain| chain.into_iter().map(Into::into).collect())
                .collect(),
        };
        let verdict = check_kv_gen(&history, store.generation().unwrap());
        prop_assert!(
            verdict.is_linearizable(),
            "lost or torn update: {:?}",
            verdict.violation()
        );
        prop_assert!(
            pmem.psan_violations().is_empty(),
            "sanitizer findings: {:?}",
            pmem.psan_violations()
        );
    }
}
