//! The transactional for-loop of Appendix A.1, as a reusable library
//! combinator.
//!
//! The paper motivates unbounded stacks with a *transactional loop*:
//! update items `a₁ … aₙ` so that a crash anywhere in the middle rolls
//! every update back. The loop is a recursive function `F(i)` — save
//! `aᵢ`'s old value, update `aᵢ`, call `F(i + 1)` — whose recover dual
//! rolls `aᵢ` back; because recovery walks frames top-down, rollbacks
//! run in reverse order. [`TxnLoop`] packages that recursion: the
//! application supplies a [`TxnStep`] (how to apply and roll back one
//! item), the combinator owns the frame-per-item machinery.
//!
//! # Two subtleties the paper's sketch leaves open
//!
//! Both were found by the crash-point enumeration tests of this module
//! (which sweep *every* persistence event of a transaction) and both
//! are resolved by [`U64CellStep`]'s epoch discipline:
//!
//! 1. **Commit must be a single event.** In the naive sketch the
//!    transaction is "committed" once the recursion has unwound — but
//!    the unwind pops one frame at a time. A crash in the middle of
//!    the unwind leaves frames `F(0) … F(i)` on the stack while items
//!    `i+1 …` were applied by already-popped frames; rolling back just
//!    the prefix tears the transaction. The combinator therefore calls
//!    [`TxnStep::commit`] in the **deepest** frame (`i == count`),
//!    *before* any frame pops: a persistent committed-epoch flag, one
//!    atomic flush. Pre-commit crashes find every applied item's frame
//!    still on the stack (full rollback); post-commit crashes find the
//!    flag and roll back nothing.
//! 2. **Undo records go stale.** Recovery of frame `F(i)` may run
//!    before `F(i)`'s body saved its undo record (the frame linearizes
//!    at the push marker flip; the undo write happens strictly later).
//!    If the undo area still holds a record from a previous, committed
//!    transaction, a naive rollback restores a stale value. Undo
//!    records are therefore tagged with the transaction epoch bumped by
//!    [`U64CellStep::begin`]; rollback honours only current-epoch
//!    records.
//!
//! Depth equals the item count, so large transactions need the
//! unbounded stacks of Appendix A ([`StackKind::Vec`] /
//! [`StackKind::List`]) — and, because every persistent frame is
//! mirrored by a host (Rust) stack frame during forward execution, a
//! large *volatile* thread stack as well
//! ([`Runtime::host_stack_size`](crate::Runtime::host_stack_size)).
//! Recovery is iterative and needs no extra host stack.
//!
//! [`StackKind::Vec`]: crate::StackKind::Vec
//! [`StackKind::List`]: crate::StackKind::List

use std::sync::Arc;

use pstack_nvram::POffset;

use crate::invoke::PContext;
use crate::registry::{FunctionRegistry, RecoverableFunction};
use crate::runtime::Task;
use crate::{PError, RetBytes};

/// One item-wise step of a transactional loop.
///
/// `apply` must persist enough undo state *before* mutating the item
/// for `rollback` to restore it; `rollback` must be idempotent (repeated
/// failures can run it more than once) and must ignore undo state left
/// by previous transactions (see the module docs on epochs —
/// [`U64CellStep`] shows the pattern).
pub trait TxnStep: Send + Sync {
    /// Applies step `i`: persist the undo record, then mutate item `i`.
    ///
    /// # Errors
    ///
    /// A propagated crash, or an application error (which aborts the
    /// recursion; already-applied items are *not* rolled back on
    /// abort — they are rolled back only by crash recovery).
    fn apply(&self, ctx: &mut PContext<'_>, i: u64) -> Result<(), PError>;

    /// Rolls step `i` back if (and only if) this transaction's `apply`
    /// persisted an undo record for it **and** the transaction has not
    /// committed (see [`TxnStep::commit`]).
    ///
    /// # Errors
    ///
    /// A propagated crash (recovery re-runs after restart), or an
    /// application error.
    fn rollback(&self, ctx: &mut PContext<'_>, i: u64) -> Result<(), PError>;

    /// Marks the transaction committed, with a single atomic persist.
    /// The combinator calls this in the deepest frame, before any frame
    /// of the chain pops — this is the transaction's linearization
    /// point (see the module docs on why the unwind itself cannot be
    /// the commit).
    ///
    /// # Errors
    ///
    /// A propagated crash, or an application error.
    fn commit(&self, ctx: &mut PContext<'_>) -> Result<(), PError>;
}

fn encode_args(i: u64, count: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(16);
    v.extend_from_slice(&i.to_le_bytes());
    v.extend_from_slice(&count.to_le_bytes());
    v
}

fn decode_args(args: &[u8]) -> Result<(u64, u64), PError> {
    if args.len() < 16 {
        return Err(PError::Task(
            "transactional-loop frame args must hold (index, count)".into(),
        ));
    }
    let i = u64::from_le_bytes(args[..8].try_into().expect("slice length"));
    let count = u64::from_le_bytes(args[8..16].try_into().expect("slice length"));
    Ok((i, count))
}

struct TxnLoopFunction {
    func_id: u64,
    step: Arc<dyn TxnStep>,
}

impl RecoverableFunction for TxnLoopFunction {
    fn call(&self, ctx: &mut PContext<'_>, args: &[u8]) -> Result<Option<RetBytes>, PError> {
        let (i, count) = decode_args(args)?;
        if i >= count {
            // Deepest frame: every item is applied and every frame of
            // the chain is still on the stack — commit here, in one
            // atomic persist, before the unwind starts popping frames.
            self.step.commit(ctx)?;
            return Ok(None);
        }
        self.step.apply(ctx, i)?;
        ctx.call(self.func_id, &encode_args(i + 1, count))?;
        Ok(None)
    }

    fn recover(&self, ctx: &mut PContext<'_>, args: &[u8]) -> Result<Option<RetBytes>, PError> {
        let (i, count) = decode_args(args)?;
        if i < count {
            // Deeper frames were already rolled back (recovery walks
            // top-down), so undoing item i keeps the suffix intact.
            self.step.rollback(ctx, i)?;
        }
        Ok(None)
    }
}

/// The registered transactional-loop combinator. Create with
/// [`TxnLoop::register`], then submit [`TxnLoop::task`]s (or invoke
/// [`TxnLoop::run`] from inside another recoverable function).
///
/// # Example
///
/// See the `transactional_update` example and the tests of this module;
/// the short form is:
///
/// ```
/// use std::sync::Arc;
/// use pstack_core::{FunctionRegistry, Runtime, RuntimeConfig, TxnLoop, U64CellStep};
/// use pstack_nvram::PMemBuilder;
///
/// # fn main() -> Result<(), pstack_core::PError> {
/// let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
/// let stub = FunctionRegistry::new();
/// let rt = Runtime::format(pmem.clone(), RuntimeConfig::new(1), &stub)?;
/// let step = U64CellStep::format(&rt, 8, Arc::new(|v| v + 1))?;
/// let mut registry = FunctionRegistry::new();
/// let txn = TxnLoop::register(&mut registry, 77, Arc::new(step.clone()))?;
/// let rt = Runtime::open(pmem, &registry)?;
///
/// step.begin()?; // bump the undo epoch, then run the transaction
/// let report = rt.run_tasks(vec![txn.task(8)]);
/// assert_eq!(report.completed, 1);
/// assert_eq!(step.read_item(0)?, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TxnLoop {
    func_id: u64,
}

impl TxnLoop {
    /// Registers the recursion machinery under `func_id`, driving
    /// `step`.
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] if `func_id` is already registered.
    pub fn register(
        registry: &mut FunctionRegistry,
        func_id: u64,
        step: Arc<dyn TxnStep>,
    ) -> Result<Self, PError> {
        registry.register(func_id, Arc::new(TxnLoopFunction { func_id, step }))?;
        Ok(TxnLoop { func_id })
    }

    /// The function id the combinator was registered under.
    #[must_use]
    pub fn func_id(&self) -> u64 {
        self.func_id
    }

    /// Builds the root task executing items `0 .. count` transactionally.
    #[must_use]
    pub fn task(&self, count: u64) -> Task {
        Task::new(self.func_id, encode_args(0, count))
    }

    /// Runs the loop as a nested persistent call from inside another
    /// recoverable function.
    ///
    /// # Errors
    ///
    /// Propagated crash or application errors.
    pub fn run(&self, ctx: &mut PContext<'_>, count: u64) -> Result<(), PError> {
        ctx.call(self.func_id, &encode_args(0, count))?;
        Ok(())
    }
}

const CELL_MAGIC: u64 = 0x5053_5458_4E43_4C31; // "PSTXNCL1"

/// A batteries-included [`TxnStep`] over an array of `u64` cells in the
/// NVRAM heap, applying a pure update function to every cell with
/// epoch-tagged undo records (see the module docs).
///
/// Layout (allocated by [`U64CellStep::format`]):
///
/// ```text
/// header   magic u64, epoch u64, count u64, committed-epoch u64
///          (one cache line)
/// items    count × u64
/// undo     count × (old u64, epoch u64)
/// ```
///
/// The transaction of epoch `e` is committed iff `committed-epoch = e`;
/// rollback is a no-op for committed transactions.
#[derive(Clone)]
pub struct U64CellStep {
    pmem: pstack_nvram::PMem,
    base: POffset,
    count: u64,
    update: Arc<dyn Fn(u64) -> u64 + Send + Sync>,
}

impl std::fmt::Debug for U64CellStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("U64CellStep")
            .field("base", &self.base)
            .field("count", &self.count)
            .finish()
    }
}

const HEADER_LEN: u64 = 64;

impl U64CellStep {
    /// Bytes of NVRAM needed for `count` cells.
    #[must_use]
    pub fn required_len(count: u64) -> usize {
        (HEADER_LEN + count * 8 + count * 16) as usize
    }

    /// Allocates the header, items (zero-initialized) and undo area
    /// from the runtime's heap.
    ///
    /// # Errors
    ///
    /// Heap or NVRAM errors, or [`PError::InvalidConfig`] for zero
    /// `count`.
    pub fn format(
        rt: &crate::Runtime,
        count: u64,
        update: Arc<dyn Fn(u64) -> u64 + Send + Sync>,
    ) -> Result<Self, PError> {
        if count == 0 {
            return Err(PError::InvalidConfig("cell count must be positive".into()));
        }
        let pmem = rt.pmem().clone();
        let base = rt.heap().alloc_aligned(Self::required_len(count), 64)?;
        pmem.fill(base, 0, Self::required_len(count))?;
        pmem.write_u64(base, CELL_MAGIC)?;
        pmem.write_u64(base + 16u64, count)?;
        // No transaction has committed yet; MAX is never a real epoch.
        pmem.write_u64(base + 24u64, u64::MAX)?;
        pmem.flush(base, Self::required_len(count))?;
        Ok(U64CellStep {
            pmem,
            base,
            count,
            update,
        })
    }

    /// Re-attaches to an area created by [`U64CellStep::format`] at
    /// `base` (recovery boot). The update function is code, not data —
    /// supply the same one.
    ///
    /// # Errors
    ///
    /// [`PError::CorruptStack`] on a bad magic word.
    pub fn open(
        rt: &crate::Runtime,
        base: POffset,
        update: Arc<dyn Fn(u64) -> u64 + Send + Sync>,
    ) -> Result<Self, PError> {
        let pmem = rt.pmem().clone();
        let magic = pmem.read_u64(base)?;
        if magic != CELL_MAGIC {
            return Err(PError::CorruptStack(format!(
                "bad cell-step magic {magic:#x} at {base}"
            )));
        }
        let count = pmem.read_u64(base + 16u64)?;
        Ok(U64CellStep {
            pmem,
            base,
            count,
            update,
        })
    }

    /// The area's base offset (persist it to find the cells again).
    #[must_use]
    pub fn base(&self) -> POffset {
        self.base
    }

    /// Number of cells.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    fn item_off(&self, i: u64) -> POffset {
        self.base + (HEADER_LEN + i * 8)
    }

    fn undo_off(&self, i: u64) -> POffset {
        self.base + (HEADER_LEN + self.count * 8 + i * 16)
    }

    fn epoch(&self) -> Result<u64, PError> {
        Ok(self.pmem.read_u64(self.base + 8u64)?)
    }

    fn committed_epoch(&self) -> Result<u64, PError> {
        Ok(self.pmem.read_u64(self.base + 24u64)?)
    }

    /// `true` if the current transaction has committed.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn is_committed(&self) -> Result<bool, PError> {
        Ok(self.committed_epoch()? == self.epoch()?)
    }

    /// Starts a new transaction: bumps and persists the undo epoch so
    /// stale undo records from previous (committed or rolled-back)
    /// transactions are never replayed. Call once before each
    /// [`TxnLoop::task`] over this step; do not run two transactions
    /// over one step concurrently.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn begin(&self) -> Result<(), PError> {
        let e = self.epoch()?;
        self.pmem.write_u64(self.base + 8u64, e + 1)?;
        self.pmem.flush(self.base + 8u64, 8)?;
        Ok(())
    }

    /// Reads cell `i`.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn read_item(&self, i: u64) -> Result<u64, PError> {
        assert!(
            i < self.count,
            "cell {i} out of range ({} cells)",
            self.count
        );
        Ok(self.pmem.read_u64(self.item_off(i))?)
    }

    /// Writes and persists cell `i` (setup helper for tests/examples).
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn write_item(&self, i: u64, v: u64) -> Result<(), PError> {
        assert!(
            i < self.count,
            "cell {i} out of range ({} cells)",
            self.count
        );
        self.pmem.write_u64(self.item_off(i), v)?;
        self.pmem.flush(self.item_off(i), 8)?;
        Ok(())
    }

    /// Reads all cells.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn read_all(&self) -> Result<Vec<u64>, PError> {
        (0..self.count).map(|i| self.read_item(i)).collect()
    }
}

impl TxnStep for U64CellStep {
    fn apply(&self, _ctx: &mut PContext<'_>, i: u64) -> Result<(), PError> {
        if i >= self.count {
            return Err(PError::Task(format!(
                "transaction item {i} out of range ({} cells)",
                self.count
            )));
        }
        let epoch = self.epoch()?;
        let old = self.pmem.read_u64(self.item_off(i))?;
        // Undo record first: value, then the epoch word that validates
        // it. Both in one 16-byte record; persist before mutating.
        self.pmem.write_u64(self.undo_off(i), old)?;
        self.pmem.write_u64(self.undo_off(i) + 8u64, epoch)?;
        self.pmem.flush(self.undo_off(i), 16)?;
        self.pmem.write_u64(self.item_off(i), (self.update)(old))?;
        self.pmem.flush(self.item_off(i), 8)?;
        Ok(())
    }

    fn rollback(&self, _ctx: &mut PContext<'_>, i: u64) -> Result<(), PError> {
        if i >= self.count {
            return Ok(());
        }
        let epoch = self.epoch()?;
        if self.committed_epoch()? == epoch {
            // The transaction committed before the crash; the remaining
            // frames are just an interrupted unwind. Nothing to undo.
            return Ok(());
        }
        let rec_epoch = self.pmem.read_u64(self.undo_off(i) + 8u64)?;
        if rec_epoch == epoch {
            let old = self.pmem.read_u64(self.undo_off(i))?;
            self.pmem.write_u64(self.item_off(i), old)?;
            self.pmem.flush(self.item_off(i), 8)?;
            // Leave the record in place: restoring twice writes the
            // same old value — rollback is naturally idempotent.
        }
        Ok(())
    }

    fn commit(&self, _ctx: &mut PContext<'_>) -> Result<(), PError> {
        let epoch = self.epoch()?;
        self.pmem.write_u64(self.base + 24u64, epoch)?;
        self.pmem.flush(self.base + 24u64, 8)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{RecoveryMode, Runtime, RuntimeConfig};
    use crate::stack::StackKind;
    use pstack_nvram::{FailPlan, PMem, PMemBuilder};

    const TXN_FN: u64 = 0x7871;

    fn setup(
        kind: StackKind,
        count: u64,
    ) -> (PMem, Runtime, U64CellStep, TxnLoop, FunctionRegistry) {
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let stub = FunctionRegistry::new();
        let rt = Runtime::format(
            pmem.clone(),
            RuntimeConfig::new(1).stack_kind(kind).stack_capacity(512),
            &stub,
        )
        .unwrap();
        let step = U64CellStep::format(&rt, count, Arc::new(|v| v * 2 + 1)).unwrap();
        for i in 0..count {
            step.write_item(i, 100 + i).unwrap();
        }
        let mut registry = FunctionRegistry::new();
        let txn = TxnLoop::register(&mut registry, TXN_FN, Arc::new(step.clone())).unwrap();
        let rt = Runtime::open(pmem.clone(), &registry).unwrap();
        (pmem, rt, step, txn, registry)
    }

    /// Recovery boot: reopen the region and rebuild the registry around
    /// a step bound to the *new* region handle (a real restart would do
    /// exactly this — the old handles died with the process).
    fn reopen(pmem: &PMem, step_base: POffset) -> (PMem, Runtime, U64CellStep) {
        let pmem2 = pmem.reopen().unwrap();
        let stub = FunctionRegistry::new();
        let rt_probe = Runtime::open(pmem2.clone(), &stub).unwrap();
        let step2 = U64CellStep::open(&rt_probe, step_base, Arc::new(|v| v * 2 + 1)).unwrap();
        let mut registry = FunctionRegistry::new();
        TxnLoop::register(&mut registry, TXN_FN, Arc::new(step2.clone())).unwrap();
        let rt2 = Runtime::open(pmem2.clone(), &registry).unwrap();
        (pmem2, rt2, step2)
    }

    #[test]
    fn clean_transaction_commits_all_items() {
        let (_, rt, step, txn, _) = setup(StackKind::Fixed, 8);
        step.begin().unwrap();
        let report = rt.run_tasks(vec![txn.task(8)]);
        assert_eq!(report.completed, 1);
        let expected: Vec<u64> = (0..8).map(|i| (100 + i) * 2 + 1).collect();
        assert_eq!(step.read_all().unwrap(), expected);
    }

    #[test]
    fn zero_count_transaction_is_a_noop() {
        let (_, rt, step, txn, _) = setup(StackKind::Fixed, 4);
        step.begin().unwrap();
        let before = step.read_all().unwrap();
        let report = rt.run_tasks(vec![txn.task(0)]);
        assert_eq!(report.completed, 1);
        assert_eq!(step.read_all().unwrap(), before);
    }

    #[test]
    fn crash_mid_transaction_rolls_back_everything() {
        let (pmem, rt, step, txn, _) = setup(StackKind::List, 16);
        let before = step.read_all().unwrap();
        step.begin().unwrap();
        pmem.arm_failpoint(FailPlan::after_events(120));
        let report = rt.run_tasks(vec![txn.task(16)]);
        assert!(report.crashed, "fail-point must cut the transaction");
        let (_, rt2, step2) = reopen(&pmem, step.base());
        rt2.recover(RecoveryMode::Parallel).unwrap();
        assert_eq!(step2.read_all().unwrap(), before, "all-or-nothing violated");
    }

    #[test]
    fn crash_point_sweep_is_all_or_nothing() {
        // The central Appendix-A claim, exhaustively: crash after every
        // k-th persistence event of the whole transaction; after
        // recovery the array is either fully updated (commit happened)
        // or fully restored.
        let count = 6u64;
        let (_, rt, step, txn, _) = setup(StackKind::Vec, count);
        let before = step.read_all().unwrap();
        let after: Vec<u64> = before.iter().map(|v| v * 2 + 1).collect();
        step.begin().unwrap();
        let e0 = rt.pmem().events();
        let report = rt.run_tasks(vec![txn.task(count)]);
        assert_eq!(report.completed, 1);
        let total = rt.pmem().events() - e0;

        for k in 0..total {
            let (pmem, rt, step, txn, _) = setup(StackKind::Vec, count);
            step.begin().unwrap();
            pmem.arm_failpoint(FailPlan::after_events(k));
            let report = rt.run_tasks(vec![txn.task(count)]);
            if !report.crashed {
                // The fail-point landed after the task finished (final
                // queue bookkeeping): the commit stands.
                assert_eq!(step.read_all().unwrap(), after, "crash at {k}");
                continue;
            }
            let (_, rt2, step2) = reopen(&pmem, step.base());
            rt2.recover(RecoveryMode::Parallel).unwrap();
            let got = step2.read_all().unwrap();
            assert!(
                got == before || got == after,
                "crash at event {k}: torn state {got:?}"
            );
        }
    }

    #[test]
    fn repeated_failures_during_rollback_still_restore() {
        let count = 10u64;
        let (pmem, rt, step, txn, _) = setup(StackKind::List, count);
        let before = step.read_all().unwrap();
        step.begin().unwrap();
        pmem.arm_failpoint(FailPlan::after_events(90));
        let report = rt.run_tasks(vec![txn.task(count)]);
        assert!(report.crashed);

        // Crash the recovery itself a few times at staggered points;
        // every boot rebuilds the registry on the fresh region handle.
        pmem.crash_now(0, 1.0); // idempotent if already crashed
        let mut cur = pmem;
        for attempt in 0..20u64 {
            let (pmem2, rt2, _) = reopen(&cur, step.base());
            cur = pmem2;
            if attempt < 3 {
                cur.arm_failpoint(FailPlan::after_events(7 + attempt * 5));
            }
            match rt2.recover(RecoveryMode::Parallel) {
                Ok(_) => {
                    cur.disarm_failpoint();
                    break;
                }
                Err(e) => {
                    assert!(e.is_crash(), "unexpected error: {e}");
                    if !cur.is_crashed() {
                        cur.crash_now(0, 1.0);
                    }
                }
            }
        }
        cur.crash_now(0, 1.0);
        let (_, rt2, step2) = reopen(&cur, step.base());
        assert_eq!(rt2.recover(RecoveryMode::Serial).unwrap().total_frames(), 0);
        assert_eq!(step2.read_all().unwrap(), before);
    }

    #[test]
    fn stale_undo_from_committed_transaction_is_ignored() {
        // Transaction 1 commits. Transaction 2 crashes after pushing
        // F(0) but before its apply persisted a fresh undo record; the
        // rollback must NOT replay transaction 1's record for item 0.
        let (pmem, rt, step, txn, registry) = setup(StackKind::Fixed, 4);
        step.begin().unwrap();
        let report = rt.run_tasks(vec![txn.task(4)]);
        assert_eq!(report.completed, 1);
        let committed = step.read_all().unwrap();

        step.begin().unwrap();
        // The frame push costs a handful of events; crash before any
        // undo write of transaction 2 (its first apply would write the
        // undo record for item 0). Sweep the earliest window to be sure
        // we hit the frame-pushed-but-no-undo point.
        for k in 0..8 {
            // Rebuild a fresh copy of the committed state for each k.
            let (pmem, rt, step, txn, _) = setup(StackKind::Fixed, 4);
            step.begin().unwrap();
            assert_eq!(rt.run_tasks(vec![txn.task(4)]).completed, 1);
            let committed = step.read_all().unwrap();
            step.begin().unwrap();
            pmem.arm_failpoint(FailPlan::after_events(k));
            let report = rt.run_tasks(vec![txn.task(4)]);
            if !report.crashed {
                continue;
            }
            let (_, rt2, step2) = reopen(&pmem, step.base());
            rt2.recover(RecoveryMode::Parallel).unwrap();
            let got = step2.read_all().unwrap();
            // All-or-nothing relative to transaction 2; never a replay
            // of transaction 1's old values.
            let after2: Vec<u64> = committed.iter().map(|v| v * 2 + 1).collect();
            assert!(
                got == committed || got == after2,
                "crash at {k}: stale undo replayed: {got:?} (committed {committed:?})"
            );
        }
        let _ = (pmem, registry, committed);
    }

    #[test]
    fn application_error_aborts_without_rollback() {
        // Abort ≠ crash: the paper's model rolls back on *recovery*;
        // an application error unwinds frames without running recover
        // duals. Items updated before the error stay updated.
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let stub = FunctionRegistry::new();
        let rt = Runtime::format(pmem.clone(), RuntimeConfig::new(1), &stub).unwrap();
        let step = U64CellStep::format(&rt, 4, Arc::new(|v| v + 1)).unwrap();

        struct FailingStep {
            inner: U64CellStep,
        }
        impl TxnStep for FailingStep {
            fn apply(&self, ctx: &mut PContext<'_>, i: u64) -> Result<(), PError> {
                if i == 2 {
                    return Err(PError::Task("step 2 rejects".into()));
                }
                self.inner.apply(ctx, i)
            }
            fn rollback(&self, ctx: &mut PContext<'_>, i: u64) -> Result<(), PError> {
                self.inner.rollback(ctx, i)
            }
            fn commit(&self, ctx: &mut PContext<'_>) -> Result<(), PError> {
                self.inner.commit(ctx)
            }
        }

        let mut registry = FunctionRegistry::new();
        let txn = TxnLoop::register(
            &mut registry,
            TXN_FN,
            Arc::new(FailingStep {
                inner: step.clone(),
            }),
        )
        .unwrap();
        let rt = Runtime::open(pmem, &registry).unwrap();
        step.begin().unwrap();
        let report = rt.run_tasks(vec![txn.task(4)]);
        assert_eq!(report.task_errors, 1);
        assert_eq!(step.read_all().unwrap(), vec![1, 1, 0, 0]);
        assert_eq!(rt.open_stack(0).unwrap().depth(), 0, "frames unwound");
    }

    #[test]
    fn txn_loop_composes_as_nested_call() {
        // A parent recoverable function runs a transactional loop as a
        // nested persistent call.
        const PARENT: u64 = 0x7070;
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let stub = FunctionRegistry::new();
        let rt = Runtime::format(pmem.clone(), RuntimeConfig::new(1), &stub).unwrap();
        let step = U64CellStep::format(&rt, 4, Arc::new(|v| v + 10)).unwrap();
        let mut registry = FunctionRegistry::new();
        let txn = TxnLoop::register(&mut registry, TXN_FN, Arc::new(step.clone())).unwrap();
        registry
            .register_pair(
                PARENT,
                move |ctx: &mut PContext<'_>, _args: &[u8]| {
                    txn.run(ctx, 4)?;
                    Ok(None)
                },
                |_ctx, _args| Ok(None),
            )
            .unwrap();
        let rt = Runtime::open(pmem, &registry).unwrap();
        step.begin().unwrap();
        let report = rt.run_tasks(vec![Task::new(PARENT, vec![])]);
        assert_eq!(report.completed, 1);
        assert_eq!(step.read_all().unwrap(), vec![10, 10, 10, 10]);
    }

    #[test]
    fn format_and_open_round_trip() {
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let stub = FunctionRegistry::new();
        let rt = Runtime::format(pmem.clone(), RuntimeConfig::new(1), &stub).unwrap();
        let step = U64CellStep::format(&rt, 3, Arc::new(|v| v)).unwrap();
        step.write_item(1, 42).unwrap();
        let step2 = U64CellStep::open(&rt, step.base(), Arc::new(|v| v)).unwrap();
        assert_eq!(step2.count(), 3);
        assert_eq!(step2.read_item(1).unwrap(), 42);
        let junk = rt.heap().alloc_zeroed(64).unwrap();
        assert!(matches!(
            U64CellStep::open(&rt, junk, Arc::new(|v| v)),
            Err(PError::CorruptStack(_))
        ));
        assert!(U64CellStep::format(&rt, 0, Arc::new(|v| v)).is_err());
    }

    #[test]
    fn deep_transactions_need_and_get_big_host_stacks() {
        // One persistent frame = one host frame during forward
        // execution; Runtime::host_stack_size provisions workers for
        // deep recursion. (Without it, thousands of frames overflow
        // the platform default — found by the soak suite.)
        let count = 3_000u64;
        let pmem = PMemBuilder::new().len(1 << 23).build_in_memory();
        let stub = FunctionRegistry::new();
        let rt = Runtime::format(
            pmem.clone(),
            RuntimeConfig::new(1)
                .stack_kind(StackKind::List)
                .stack_capacity(1024),
            &stub,
        )
        .unwrap();
        let step = U64CellStep::format(&rt, count, Arc::new(|v| v + 1)).unwrap();
        let mut registry = FunctionRegistry::new();
        let txn = TxnLoop::register(&mut registry, TXN_FN, Arc::new(step.clone())).unwrap();
        let rt = Runtime::open(pmem, &registry)
            .unwrap()
            .host_stack_size(128 << 20);
        step.begin().unwrap();
        let report = rt.run_tasks(vec![txn.task(count)]);
        assert_eq!(report.completed, 1);
        assert_eq!(step.read_item(count - 1).unwrap(), 1);
        assert!(step.is_committed().unwrap());
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let stub = FunctionRegistry::new();
        let rt = Runtime::format(pmem, RuntimeConfig::new(1), &stub).unwrap();
        let step = U64CellStep::format(&rt, 2, Arc::new(|v| v)).unwrap();
        let mut registry = FunctionRegistry::new();
        TxnLoop::register(&mut registry, 1, Arc::new(step.clone())).unwrap();
        assert!(TxnLoop::register(&mut registry, 1, Arc::new(step)).is_err());
    }
}
