//! The invocation machinery: persistent `CALL`/`RET` (§3.2, §4.2).
//!
//! [`PContext::call`] is the persistent analogue of an x86 `CALL`:
//!
//! 1. clear the caller's return slot (so a later crash can tell whether
//!    *this* child completed);
//! 2. push the callee's frame — linearized by the end-marker flip;
//! 3. run the callee body;
//! 4. persist the small return value into the **caller's** slot (§4.2);
//! 5. pop the frame — the `RET`, linearized by the reverse marker flip.
//!
//! A crash anywhere in this sequence leaves the stack describing
//! exactly the invocations that must be re-examined: recovery
//! ([`recover_stack`]) walks the frames top-to-bottom, invoking each
//! function's recover dual and popping as it goes (§4.3).
//!
//! Return values larger than 8 bytes go through the NVRAM heap instead:
//! the caller allocates a cell, passes its *offset* in the arguments
//! (offsets, never pointers — §4.1), and the callee persists the big
//! value there before returning. [`PContext`] exposes the heap for
//! exactly that pattern.

use pstack_heap::PHeap;
use pstack_nvram::{PMem, POffset};

use crate::registry::FunctionRegistry;
use crate::stack::{PersistentStack, ReturnSlot};
use crate::PError;

/// Small return value transported through a frame's return slot (§4.2
/// limits these to 8 bytes; bigger results go through the heap).
pub type RetBytes = [u8; 8];

/// What a frame's return slot says about the most recently invoked
/// child of that frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildStatus {
    /// No completion recorded: the child either never linearized or its
    /// result write was lost — recovery must re-examine it.
    NotCompleted,
    /// The child completed; its return value (if any) is durable.
    Completed(Option<RetBytes>),
}

/// Execution context handed to every [`RecoverableFunction`]. Wraps the
/// worker's persistent stack together with the NVRAM region, heap,
/// registry and identity of the executing process.
///
/// [`RecoverableFunction`]: crate::registry::RecoverableFunction
pub struct PContext<'a> {
    /// The NVRAM region (cheap cloned handle).
    pub pmem: PMem,
    /// The persistent heap, for big return values and application data.
    pub heap: PHeap,
    /// Identity of the executing worker (the paper's process id `p`).
    pub pid: usize,
    registry: &'a FunctionRegistry,
    stack: &'a mut dyn PersistentStack,
    user_root: POffset,
}

impl std::fmt::Debug for PContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PContext")
            .field("pid", &self.pid)
            .field("depth", &self.stack.depth())
            .field("user_root", &self.user_root)
            .finish()
    }
}

impl<'a> PContext<'a> {
    /// Builds a context around a worker's stack.
    pub fn new(
        pmem: PMem,
        heap: PHeap,
        registry: &'a FunctionRegistry,
        stack: &'a mut dyn PersistentStack,
        pid: usize,
        user_root: POffset,
    ) -> Self {
        PContext {
            pmem,
            heap,
            pid,
            registry,
            stack,
            user_root,
        }
    }

    /// The application's persistent root offset (set via
    /// [`Runtime::set_user_root`](crate::runtime::Runtime::set_user_root)).
    #[must_use]
    pub fn user_root(&self) -> POffset {
        self.user_root
    }

    /// Current invocation depth (frames above the dummy frame).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.stack.depth()
    }

    /// Invokes the registered function `func_id` with `args` as a
    /// nested persistent call: pushes a frame, runs the body, persists
    /// the return value into the caller's slot, pops the frame.
    ///
    /// # Errors
    ///
    /// * a propagated crash — the frame stays on the stack for recovery;
    /// * any application error — the frame is popped (*abort*: the
    ///   callee's partial effects are **not** rolled back; roll-back is
    ///   the application's job, as in the paper's transactional-loop
    ///   example) and the error propagates;
    /// * [`PError::UnknownFunction`] before anything is pushed.
    pub fn call(&mut self, func_id: u64, args: &[u8]) -> Result<Option<RetBytes>, PError> {
        let f = self.registry.get(func_id)?;
        let caller = self.stack.top_index();
        // Clear the caller's slot so its recover dual can distinguish
        // "this child completed" from a stale completion record.
        self.stack.set_ret(caller, ReturnSlot::Empty)?;
        self.stack.push(func_id, args)?;
        match f.call(self, args) {
            Ok(ret) => {
                self.finish_top_frame(caller, ret)?;
                Ok(ret)
            }
            Err(e) if e.is_crash() => Err(e),
            Err(e) => {
                // Abort: unwind this frame so the stack stays balanced
                // for the caller.
                self.stack.pop()?;
                Err(e)
            }
        }
    }

    /// Persists `ret` into frame `caller`'s slot and pops the top
    /// frame — the completion protocol shared by `call` and recovery.
    pub(crate) fn finish_top_frame(
        &mut self,
        caller: usize,
        ret: Option<RetBytes>,
    ) -> Result<(), PError> {
        let slot = match ret {
            None => ReturnSlot::Unit,
            Some(v) => ReturnSlot::Value(v),
        };
        self.stack.set_ret(caller, slot)?;
        self.stack.pop()
    }

    /// Reads the executing function's own return slot: did the child it
    /// most recently invoked complete? Recover duals use this to decide
    /// whether to re-invoke children.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn child_status(&self) -> Result<ChildStatus, PError> {
        let slot = self.stack.ret(self.stack.top_index())?;
        Ok(match slot.completion() {
            None => ChildStatus::NotCompleted,
            Some(v) => ChildStatus::Completed(v),
        })
    }

    /// Read-only view of the underlying stack (diagnostics, tests).
    #[must_use]
    pub fn stack(&self) -> &dyn PersistentStack {
        &*self.stack
    }
}

/// Statistics from recovering one worker stack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StackRecovery {
    /// Number of interrupted invocations whose recover dual ran.
    pub frames_recovered: usize,
}

/// Recovers one worker's stack (§4.3): repeatedly take the top frame,
/// invoke its function's recover dual with the original arguments,
/// persist the recovered return value into the parent's slot, and pop —
/// until only the dummy frame remains.
///
/// Recover duals may push nested frames of their own; if a repeated
/// failure hits, the next recovery simply starts from the new top. A
/// frame popped by a completed recover dual is never recovered twice,
/// which is the paper's progress argument for repeated failures.
///
/// # Errors
///
/// A propagated crash (leaving the remaining frames for the next
/// recovery attempt), [`PError::UnknownFunction`] if a frame references
/// an unregistered function, or an application error from a recover
/// dual.
pub fn recover_stack(ctx: &mut PContext<'_>) -> Result<StackRecovery, PError> {
    let mut stats = StackRecovery::default();
    while ctx.stack.top_index() > 0 {
        let top = ctx.stack.top_index();
        let rec = ctx.stack.frame_record(top)?;
        let f = ctx.registry.get(rec.func_id)?;
        let ret = f.recover(ctx, &rec.args)?;
        // The recover dual returned balanced; its frame is again on top.
        let caller = ctx.stack.top_index() - 1;
        ctx.finish_top_frame(caller, ret)?;
        stats.frames_recovered += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::FunctionRegistry;
    use crate::stack::FixedStack;
    use pstack_nvram::PMemBuilder;

    fn fixture() -> (PMem, PHeap, FixedStack) {
        let pmem = PMemBuilder::new().len(1 << 18).build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(1 << 16), 1 << 16).unwrap();
        let stack = FixedStack::format(pmem.clone(), POffset::new(0), 16 * 1024).unwrap();
        (pmem, heap, stack)
    }

    fn ctx<'a>(
        pmem: &PMem,
        heap: &PHeap,
        registry: &'a FunctionRegistry,
        stack: &'a mut FixedStack,
    ) -> PContext<'a> {
        PContext::new(
            pmem.clone(),
            heap.clone(),
            registry,
            stack,
            0,
            POffset::new(1 << 17),
        )
    }

    #[test]
    fn call_balances_stack_and_returns_value() {
        let (pmem, heap, mut stack) = fixture();
        let mut reg = FunctionRegistry::new();
        reg.register_pair(
            1,
            |_c, args| {
                let x = u64::from_le_bytes(args[..8].try_into().unwrap());
                Ok(Some((x * 2).to_le_bytes()))
            },
            |_c, _| Ok(None),
        )
        .unwrap();
        let mut c = ctx(&pmem, &heap, &reg, &mut stack);
        let ret = c.call(1, &21u64.to_le_bytes()).unwrap();
        assert_eq!(ret, Some(42u64.to_le_bytes()));
        assert_eq!(c.depth(), 0);
        // The dummy frame's slot holds the completion record.
        assert_eq!(
            c.child_status().unwrap(),
            ChildStatus::Completed(Some(42u64.to_le_bytes()))
        );
    }

    #[test]
    fn nested_calls_run_at_increasing_depth() {
        let (pmem, heap, mut stack) = fixture();
        let mut reg = FunctionRegistry::new();
        reg.register_pair(
            1,
            |c, _| {
                assert_eq!(c.depth(), 1);
                let inner = c.call(2, &[])?;
                assert_eq!(inner, Some(7u64.to_le_bytes()));
                assert_eq!(c.depth(), 1);
                Ok(None)
            },
            |_c, _| Ok(None),
        )
        .unwrap();
        reg.register_pair(
            2,
            |c, _| {
                assert_eq!(c.depth(), 2);
                Ok(Some(7u64.to_le_bytes()))
            },
            |_c, _| Ok(None),
        )
        .unwrap();
        let mut c = ctx(&pmem, &heap, &reg, &mut stack);
        c.call(1, &[]).unwrap();
        assert_eq!(c.depth(), 0);
    }

    #[test]
    fn unknown_function_pushes_nothing() {
        let (pmem, heap, mut stack) = fixture();
        let reg = FunctionRegistry::new();
        let mut c = ctx(&pmem, &heap, &reg, &mut stack);
        assert!(matches!(c.call(9, &[]), Err(PError::UnknownFunction(9))));
        assert_eq!(c.depth(), 0);
    }

    #[test]
    fn application_error_aborts_and_unwinds() {
        let (pmem, heap, mut stack) = fixture();
        let mut reg = FunctionRegistry::new();
        reg.register_pair(
            1,
            |_c, _| Err(PError::Task("boom".into())),
            |_c, _| Ok(None),
        )
        .unwrap();
        let mut c = ctx(&pmem, &heap, &reg, &mut stack);
        assert!(matches!(c.call(1, &[]), Err(PError::Task(_))));
        assert_eq!(c.depth(), 0, "aborted frame must be unwound");
        // The caller's slot still says "not completed".
        assert_eq!(c.child_status().unwrap(), ChildStatus::NotCompleted);
    }

    #[test]
    fn nested_application_error_unwinds_every_level() {
        let (pmem, heap, mut stack) = fixture();
        let mut reg = FunctionRegistry::new();
        reg.register_pair(1, |c, _| c.call(2, &[]), |_c, _| Ok(None))
            .unwrap();
        reg.register_pair(
            2,
            |_c, _| Err(PError::Task("inner".into())),
            |_c, _| Ok(None),
        )
        .unwrap();
        let mut c = ctx(&pmem, &heap, &reg, &mut stack);
        assert!(c.call(1, &[]).is_err());
        assert_eq!(c.depth(), 0);
    }

    #[test]
    fn crash_leaves_frames_for_recovery() {
        let (pmem, heap, mut stack) = fixture();
        let mut reg = FunctionRegistry::new();
        reg.register_pair(
            1,
            |c, _| {
                c.pmem.crash_now(0, 0.0);
                // The next access observes the crash.
                c.pmem.read_u8(POffset::new(0))?;
                unreachable!("read after crash must fail");
            },
            |_c, _| Ok(None),
        )
        .unwrap();
        let mut c = ctx(&pmem, &heap, &reg, &mut stack);
        let err = c.call(1, &[]).unwrap_err();
        assert!(err.is_crash());
        // Frame intentionally left on the stack (volatile index still
        // knows it; the persistent bytes do too).
        assert_eq!(stack.depth(), 1);
    }

    #[test]
    fn recover_stack_completes_interrupted_work() {
        let (pmem, heap, mut stack) = fixture();
        // Build a stack with two interrupted frames by pushing manually.
        use crate::stack::PersistentStack;
        stack.push(1, &5u64.to_le_bytes()).unwrap();
        stack.push(2, &6u64.to_le_bytes()).unwrap();

        let mut reg = FunctionRegistry::new();
        // Each recover dual writes its argument into a distinct heap
        // cell so the test can observe the order of recovery.
        let cell = heap.alloc_zeroed(32).unwrap();
        let cell2 = cell;
        reg.register_pair(
            1,
            |_c, _| Ok(None),
            move |c, args| {
                // Runs second (bottom frame): child must be completed.
                assert_eq!(
                    c.child_status().unwrap(),
                    ChildStatus::Completed(Some(66u64.to_le_bytes()))
                );
                let x = u64::from_le_bytes(args[..8].try_into().unwrap());
                c.pmem.write_u64(cell2, x * 11)?;
                c.pmem.flush(cell2, 8)?;
                Ok(Some((x * 11).to_le_bytes()))
            },
        )
        .unwrap();
        let cell3 = cell;
        reg.register_pair(
            2,
            |_c, _| Ok(None),
            move |c, args| {
                let x = u64::from_le_bytes(args[..8].try_into().unwrap());
                c.pmem.write_u64(cell3 + 8u64, x * 11)?;
                c.pmem.flush(cell3 + 8u64, 8)?;
                Ok(Some((x * 11).to_le_bytes()))
            },
        )
        .unwrap();

        let mut c = ctx(&pmem, &heap, &reg, &mut stack);
        let stats = recover_stack(&mut c).unwrap();
        assert_eq!(stats.frames_recovered, 2);
        assert_eq!(c.depth(), 0);
        assert_eq!(pmem.read_u64(cell).unwrap(), 55);
        assert_eq!(pmem.read_u64(cell + 8u64).unwrap(), 66);
    }

    #[test]
    fn recover_stack_on_clean_stack_is_noop() {
        let (pmem, heap, mut stack) = fixture();
        let reg = FunctionRegistry::new();
        let mut c = ctx(&pmem, &heap, &reg, &mut stack);
        let stats = recover_stack(&mut c).unwrap();
        assert_eq!(stats.frames_recovered, 0);
    }

    #[test]
    fn recover_dual_may_call_nested_functions() {
        let (pmem, heap, mut stack) = fixture();
        use crate::stack::PersistentStack;
        stack.push(1, &[]).unwrap();

        let mut reg = FunctionRegistry::new();
        reg.register_pair(
            1,
            |_c, _| Ok(None),
            |c, _| {
                // Recovery completes the operation by re-invoking the
                // helper as a fresh nested persistent call.
                let v = c.call(2, &[])?;
                Ok(v)
            },
        )
        .unwrap();
        reg.register_pair(2, |_c, _| Ok(Some(9u64.to_le_bytes())), |_c, _| Ok(None))
            .unwrap();

        let mut c = ctx(&pmem, &heap, &reg, &mut stack);
        let stats = recover_stack(&mut c).unwrap();
        assert_eq!(stats.frames_recovered, 1);
        assert_eq!(
            c.child_status().unwrap(),
            ChildStatus::Completed(Some(9u64.to_le_bytes()))
        );
    }

    #[test]
    fn big_return_values_go_through_the_heap() {
        // §4.2: caller allocates a cell, passes its offset; callee
        // persists the big value there.
        let (pmem, heap, mut stack) = fixture();
        let mut reg = FunctionRegistry::new();
        reg.register_pair(
            1,
            |c, _| {
                let cell = c.heap.alloc(64)?;
                let v = c.call(2, &cell.get().to_le_bytes())?;
                assert_eq!(v, None);
                let big = c.pmem.read_vec(cell, 64)?;
                assert_eq!(big, vec![0x5A; 64]);
                c.heap.free(cell)?;
                Ok(None)
            },
            |_c, _| Ok(None),
        )
        .unwrap();
        reg.register_pair(
            2,
            |c, args| {
                let cell = POffset::new(u64::from_le_bytes(args[..8].try_into().unwrap()));
                c.pmem.write(cell, &[0x5A; 64])?;
                c.pmem.flush(cell, 64)?;
                Ok(None)
            },
            |_c, _| Ok(None),
        )
        .unwrap();
        let mut c = ctx(&pmem, &heap, &reg, &mut stack);
        c.call(1, &[]).unwrap();
    }
}
