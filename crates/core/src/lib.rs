//! Persistent call stack and runtime for NVRAM programs.
//!
//! This crate implements the contribution of *"Execution of NVRAM
//! Programs with Persistent Stack"* (Aksenov et al., PACT 2021):
//!
//! * [`stack`] — the persistent stack itself, in the three layouts the
//!   paper describes: a fixed-capacity contiguous region (§3), a
//!   dynamically resizable array (Appendix A.2) and a linked list of
//!   blocks (Appendix A.3). All share one frame codec and one trait,
//!   [`PersistentStack`]. Push linearizes at a single-byte end-marker
//!   flip (`0x1 → 0x0` on the previous top frame); pop at the reverse
//!   flip on the penultimate frame. Both are crash-atomic because a
//!   single byte never crosses a cache line.
//! * [`registry`] — the table of recoverable functions: every function
//!   `F` registered with the runtime comes with its dual `F.Recover`
//!   (§2.3), invoked during recovery with the same arguments.
//! * [`invoke`] — the invocation machinery replacing x86 `CALL`/`RET`
//!   (§3.2 explains why the hardware stack cannot be reused): pushing a
//!   frame, clearing the parent's return slot, running the body, writing
//!   the return value through the persistent slot (§4.2) and popping.
//! * [`runtime`] — the system of §4.3: a main thread in standard or
//!   recovery mode, N worker threads with per-thread persistent stacks
//!   fed from a producer-consumer queue, and parallel recovery that
//!   walks each stack top-to-bottom calling recover duals. The
//!   [`StripedRuntime`] variant spans a control region plus a stripe of
//!   data regions under whole-system crash semantics: a crash in any
//!   region trips them all, runs are attributed to the tripping region
//!   ([`CrashSite`]), and recovery fans per-shard preludes out before
//!   replaying interrupted frames.
//! * [`txn`] — the transactional for-loop of Appendix A.1 as a reusable
//!   combinator: one persistent frame per item, crash ⇒ reverse-order
//!   rollback, commit at the final unwind.
//!
//! See the `pstack` facade crate for a complete quickstart.

pub mod admission;
pub mod frame;
pub mod invoke;
pub mod registry;
pub mod runtime;
pub mod stack;
pub mod txn;

mod error;
mod macros;

pub use admission::{Admission, AdmissionQueue};
pub use error::PError;
pub use frame::{FrameMeta, ParsedFrame, MARKER_FRAME_END, MARKER_STACK_END};
pub use invoke::{recover_stack, ChildStatus, PContext, RetBytes, StackRecovery};
pub use registry::{FnPair, FunctionRegistry, RecoverableFunction, DUMMY_FUNC_ID};
pub use runtime::{
    CrashRegion, CrashSite, RecoveryMode, RecoveryReport, RunReport, Runtime, RuntimeConfig,
    StripedRuntime, Task, TaskQueue,
};
pub use stack::{
    FixedStack, FlushPolicy, FrameRecord, ListStack, PersistentStack, ReturnSlot, StackKind,
    VecStack,
};
pub use txn::{TxnLoop, TxnStep, U64CellStep};
