//! Boilerplate reduction for registering recoverable functions.
//!
//! The paper's future-work direction 3 proposes a compiler plugin that
//! auto-generates the frame push/pop around each call. Rust gets most
//! of the way there with a declarative macro: [`recoverable_functions!`]
//! registers a batch of call/recover pairs with their stable ids in one
//! readable block.

/// Registers a batch of recoverable functions on a
/// [`FunctionRegistry`](crate::FunctionRegistry).
///
/// Each entry names a stable function id, the `call` body and the
/// `recover` dual. Bodies are ordinary closures receiving
/// `(&mut PContext, &[u8])` and returning
/// `Result<Option<RetBytes>, PError>`.
///
/// # Example
///
/// ```
/// use pstack_core::{recoverable_functions, FunctionRegistry};
///
/// # fn main() -> Result<(), pstack_core::PError> {
/// let mut registry = FunctionRegistry::new();
/// recoverable_functions! { registry =>
///     /// Doubles its 8-byte argument.
///     DOUBLE = 1 {
///         call(_ctx, args) {
///             let x = u64::from_le_bytes(args[..8].try_into().unwrap());
///             Ok(Some((x * 2).to_le_bytes()))
///         }
///         recover(_ctx, args) {
///             let x = u64::from_le_bytes(args[..8].try_into().unwrap());
///             Ok(Some((x * 2).to_le_bytes()))
///         }
///     }
///     NOOP = 2 {
///         call(_ctx, _args) { Ok(None) }
///         recover(_ctx, _args) { Ok(None) }
///     }
/// }
/// assert_eq!(DOUBLE, 1);
/// assert_eq!(NOOP, 2);
/// assert!(registry.contains(DOUBLE));
/// assert!(registry.contains(NOOP));
/// # Ok(())
/// # }
/// ```
#[macro_export]
macro_rules! recoverable_functions {
    ($registry:expr => $(
        $(#[$meta:meta])*
        $name:ident = $id:literal {
            call($call_ctx:tt, $call_args:tt) $call_body:block
            recover($rec_ctx:tt, $rec_args:tt) $rec_body:block
        }
    )+) => {
        $(
            $(#[$meta])*
            const $name: u64 = $id;
            $registry.register_pair(
                $name,
                |$call_ctx: &mut $crate::PContext<'_>, $call_args: &[u8]|
                    -> Result<Option<$crate::RetBytes>, $crate::PError> { $call_body },
                |$rec_ctx: &mut $crate::PContext<'_>, $rec_args: &[u8]|
                    -> Result<Option<$crate::RetBytes>, $crate::PError> { $rec_body },
            )?;
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::{FunctionRegistry, PError, Runtime, RuntimeConfig, Task};
    use pstack_nvram::PMemBuilder;

    #[test]
    fn macro_registers_and_runs() -> Result<(), PError> {
        let mut registry = FunctionRegistry::new();
        recoverable_functions! { registry =>
            /// Persist the argument to the user root.
            STORE = 11 {
                call(ctx, args) {
                    let v = u64::from_le_bytes(args[..8].try_into().unwrap());
                    ctx.pmem.write_u64(ctx.user_root(), v)?;
                    ctx.pmem.flush(ctx.user_root(), 8)?;
                    Ok(None)
                }
                recover(ctx, args) {
                    let v = u64::from_le_bytes(args[..8].try_into().unwrap());
                    ctx.pmem.write_u64(ctx.user_root(), v)?;
                    ctx.pmem.flush(ctx.user_root(), 8)?;
                    Ok(None)
                }
            }
            /// Calls STORE as a nested persistent call.
            DELEGATE = 12 {
                call(ctx, args) {
                    ctx.call(STORE, args)
                }
                recover(ctx, args) {
                    ctx.call(STORE, args)
                }
            }
        }
        assert!(registry.contains(STORE));
        assert!(registry.contains(DELEGATE));

        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let rt = Runtime::format(pmem.clone(), RuntimeConfig::new(1), &registry)?;
        let report = rt.run_tasks(vec![Task::new(DELEGATE, 77u64.to_le_bytes().to_vec())]);
        assert_eq!(report.completed, 1);
        assert_eq!(pmem.read_u64(rt.user_root()?)?, 77);
        Ok(())
    }

    #[test]
    fn macro_duplicate_id_propagates_error() {
        fn try_register() -> Result<(), PError> {
            let mut registry = FunctionRegistry::new();
            recoverable_functions! { registry =>
                A = 5 {
                    call(_c, _a) { Ok(None) }
                    recover(_c, _a) { Ok(None) }
                }
            }
            let _ = A;
            recoverable_functions! { registry =>
                B = 5 {
                    call(_c, _a) { Ok(None) }
                    recover(_c, _a) { Ok(None) }
                }
            }
            let _ = B;
            Ok(())
        }
        assert!(matches!(try_register(), Err(PError::InvalidConfig(_))));
    }
}
