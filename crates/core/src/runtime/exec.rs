//! Standard-mode execution: worker threads draining the task queue
//! (§4.3, steps 3–4).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::invoke::PContext;
use crate::runtime::queue::{Task, TaskQueue};
use crate::runtime::Runtime;

/// Which NVRAM region of a (possibly multi-region) runtime a crash was
/// first observed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashRegion {
    /// The runtime's own region (superblock, worker stacks, heap).
    Runtime,
    /// Data region `i` of the stripe a
    /// [`StripedRuntime`](crate::runtime::StripedRuntime) spans.
    Shard(usize),
}

impl std::fmt::Display for CrashRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrashRegion::Runtime => write!(f, "runtime region"),
            CrashRegion::Shard(i) => write!(f, "shard region {i}"),
        }
    }
}

/// Attribution of a whole-system crash: the region whose failure
/// tripped it, plus that region's persistence-event counter at the
/// moment it died (the counter freezes at the crash, so it records
/// exactly how far the region got — the "op counter" campaign logs
/// attribute kills by).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSite {
    /// The region the crash originated in.
    pub region: CrashRegion,
    /// The region's persistence-event count at the crash.
    pub events: u64,
}

impl std::fmt::Display for CrashSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} after {} events", self.region, self.events)
    }
}

/// Outcome of one standard-mode run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Tasks that completed (their invocation frame was pushed, the
    /// function returned, and the frame was popped).
    pub completed: usize,
    /// Tasks aborted by application errors (frame unwound, effects not
    /// rolled back).
    pub task_errors: usize,
    /// `true` if a crash interrupted the run: the region is now in the
    /// crashed state and must be reopened and recovered.
    pub crashed: bool,
    /// Where the crash originated, when one interrupted the run. For a
    /// single-region [`Runtime`] this is always the runtime's own
    /// region; a [`StripedRuntime`](crate::runtime::StripedRuntime)
    /// attributes the crash to whichever data region tripped it.
    pub crash_site: Option<CrashSite>,
}

impl Runtime {
    /// Runs `tasks` to completion (or until a crash) on the configured
    /// number of worker threads. Each worker opens its own persistent
    /// stack, then repeatedly pops a task from the shared queue and
    /// executes it as a root persistent call.
    ///
    /// On a crash every worker unwinds at its next NVRAM access — the
    /// whole-system crash model of §2.2 — leaving all in-flight frames
    /// on the per-worker stacks for [`Runtime::recover`].
    pub fn run_tasks(&self, tasks: impl IntoIterator<Item = Task>) -> RunReport {
        let queue = TaskQueue::new();
        for t in tasks {
            queue.push(t);
        }
        queue.close();
        self.run_queue(&queue)
    }

    /// Like [`Runtime::run_tasks`] but draining a caller-managed queue,
    /// so a driving thread can keep producing tasks while workers run
    /// (the paper's main thread does exactly this). The caller must
    /// eventually [`TaskQueue::close`] the queue.
    pub fn run_queue(&self, queue: &TaskQueue) -> RunReport {
        self.run_queue_sited(queue, &|| CrashSite {
            region: CrashRegion::Runtime,
            events: self.pmem().events(),
        })
    }

    /// The engine behind [`Runtime::run_queue`], with a pluggable crash
    /// locator. The first worker to observe a crash invokes `locate`
    /// exactly once — a [`StripedRuntime`](crate::runtime::StripedRuntime)
    /// uses the hook to attribute the crash to the region that tripped
    /// it *and* to propagate the failure to every other region, so all
    /// workers unwind at their next NVRAM access (the whole-system
    /// crash model of §2.2).
    pub(crate) fn run_queue_sited(
        &self,
        queue: &TaskQueue,
        locate: &(dyn Fn() -> CrashSite + Sync),
    ) -> RunReport {
        let completed = AtomicUsize::new(0);
        let task_errors = AtomicUsize::new(0);
        let crashed = AtomicBool::new(false);
        let crash_site: Mutex<Option<CrashSite>> = Mutex::new(None);
        let note_crash = |crashed: &AtomicBool| {
            if !crashed.swap(true, Ordering::SeqCst) {
                *crash_site.lock() = Some(locate());
            }
        };
        let user_root = match self.user_root() {
            Ok(r) => r,
            Err(e) => {
                if e.is_crash() {
                    note_crash(&crashed);
                }
                return RunReport {
                    completed: 0,
                    task_errors: 0,
                    crashed: true,
                    crash_site: crash_site.into_inner(),
                };
            }
        };

        std::thread::scope(|scope| {
            for pid in 0..self.workers() {
                let queue = &queue;
                let completed = &completed;
                let task_errors = &task_errors;
                let crashed = &crashed;
                let note_crash = &note_crash;
                let body = move || {
                    let mut stack = match self.open_stack(pid) {
                        Ok(s) => s,
                        Err(e) => {
                            if e.is_crash() {
                                note_crash(crashed);
                            }
                            return;
                        }
                    };
                    while let Some(task) = queue.pop() {
                        let mut ctx = PContext::new(
                            self.pmem().clone(),
                            self.heap().clone(),
                            self.registry(),
                            stack.as_mut(),
                            pid,
                            user_root,
                        );
                        match ctx.call(task.func_id, &task.args) {
                            Ok(_) => {
                                completed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) if e.is_crash() => {
                                note_crash(crashed);
                                // The worker dies here, like a killed
                                // process: frames stay for recovery.
                                return;
                            }
                            Err(_) => {
                                task_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                };
                // Persistent recursion is mirrored by host recursion,
                // so deep workloads may need a bigger host stack (see
                // Runtime::host_stack_size).
                match self.host_stack() {
                    None => {
                        scope.spawn(body);
                    }
                    Some(bytes) => {
                        std::thread::Builder::new()
                            .name(format!("pstack-worker-{pid}"))
                            .stack_size(bytes)
                            .spawn_scoped(scope, body)
                            .expect("worker thread spawns");
                    }
                }
            }
        });

        RunReport {
            completed: completed.load(Ordering::Relaxed),
            task_errors: task_errors.load(Ordering::Relaxed),
            crashed: crashed.load(Ordering::SeqCst),
            crash_site: crash_site.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::FunctionRegistry;
    use crate::runtime::RuntimeConfig;
    use crate::PError;
    use pstack_nvram::{FailPlan, PMemBuilder};

    /// Function 1: atomically (write+flush) adds its argument into the
    /// u64 accumulator cell at `user_root + 8 * pid_slot`, guarded by a
    /// per-task done-flag so recovery is idempotent. For these tests we
    /// keep it simpler: each task writes to its own slot.
    fn slot_registry() -> FunctionRegistry {
        let mut reg = FunctionRegistry::new();
        let body = |c: &mut PContext<'_>, args: &[u8]| {
            let slot = u64::from_le_bytes(args[..8].try_into().unwrap());
            let val = u64::from_le_bytes(args[8..16].try_into().unwrap());
            let off = c.user_root() + slot * 8;
            c.pmem.write_u64(off, val)?;
            c.pmem.flush(off, 8)?;
            Ok(None)
        };
        reg.register_pair(1, body, body).unwrap();
        reg
    }

    #[test]
    fn tasks_run_to_completion_across_workers() {
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let reg = slot_registry();
        let rt = Runtime::format(pmem.clone(), RuntimeConfig::new(4), &reg).unwrap();
        let tasks: Vec<Task> = (0..64u64)
            .map(|i| {
                let mut args = i.to_le_bytes().to_vec();
                args.extend_from_slice(&(i + 1000).to_le_bytes());
                Task::new(1, args)
            })
            .collect();
        let report = rt.run_tasks(tasks);
        assert_eq!(report.completed, 64);
        assert_eq!(report.task_errors, 0);
        assert!(!report.crashed);
        assert_eq!(report.crash_site, None);
        let root = rt.user_root().unwrap();
        for i in 0..64u64 {
            assert_eq!(pmem.read_u64(root + i * 8).unwrap(), i + 1000);
        }
        // All stacks are balanced afterwards.
        for pid in 0..4 {
            assert_eq!(rt.open_stack(pid).unwrap().depth(), 0);
        }
    }

    #[test]
    fn application_errors_are_counted_not_fatal() {
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let mut reg = FunctionRegistry::new();
        reg.register_pair(
            1,
            |_c, args| {
                if args[0] == 1 {
                    Err(PError::Task("odd one out".into()))
                } else {
                    Ok(None)
                }
            },
            |_c, _| Ok(None),
        )
        .unwrap();
        let rt = Runtime::format(pmem, RuntimeConfig::new(2), &reg).unwrap();
        let tasks = vec![
            Task::new(1, vec![0]),
            Task::new(1, vec![1]),
            Task::new(1, vec![0]),
            Task::new(1, vec![1]),
        ];
        let report = rt.run_tasks(tasks);
        assert_eq!(report.completed, 2);
        assert_eq!(report.task_errors, 2);
        assert!(!report.crashed);
    }

    #[test]
    fn crash_stops_all_workers_and_is_reported() {
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let reg = slot_registry();
        let rt = Runtime::format(pmem.clone(), RuntimeConfig::new(4), &reg).unwrap();
        // Enough persistence events to get through part of the work.
        pmem.arm_failpoint(FailPlan::after_events(40));
        let tasks: Vec<Task> = (0..200u64)
            .map(|i| {
                let mut args = i.to_le_bytes().to_vec();
                args.extend_from_slice(&7u64.to_le_bytes());
                Task::new(1, args)
            })
            .collect();
        let report = rt.run_tasks(tasks);
        assert!(report.crashed);
        assert!(report.completed < 200);
        assert!(pmem.is_crashed());
        // The crash is attributed to the runtime's own region, at the
        // exact (frozen) event counter the fail-point fired on.
        let site = report.crash_site.expect("crash must carry a site");
        assert_eq!(site.region, CrashRegion::Runtime);
        assert_eq!(site.events, pmem.events());
        assert!(site.events > 0);
    }

    #[test]
    fn run_queue_supports_external_producer() {
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let reg = slot_registry();
        let rt = Runtime::format(pmem, RuntimeConfig::new(2), &reg).unwrap();
        let queue = TaskQueue::new();
        let report = std::thread::scope(|s| {
            let producer = s.spawn(|| {
                for i in 0..16u64 {
                    let mut args = i.to_le_bytes().to_vec();
                    args.extend_from_slice(&1u64.to_le_bytes());
                    queue.push(Task::new(1, args));
                }
                queue.close();
            });
            let report = rt.run_queue(&queue);
            producer.join().unwrap();
            report
        });
        assert_eq!(report.completed, 16);
    }

    #[test]
    fn unknown_function_counts_as_task_error() {
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let reg = slot_registry();
        let rt = Runtime::format(pmem, RuntimeConfig::new(1), &reg).unwrap();
        let report = rt.run_tasks(vec![Task::new(999, vec![])]);
        assert_eq!(report.task_errors, 1);
        assert_eq!(report.completed, 0);
    }

    #[test]
    fn user_root_is_wired_into_contexts() {
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let reg = slot_registry();
        let rt = Runtime::format(pmem.clone(), RuntimeConfig::new(1), &reg).unwrap();
        let cell = rt.heap().alloc_zeroed(64).unwrap();
        rt.set_user_root(cell).unwrap();
        let mut args = 0u64.to_le_bytes().to_vec();
        args.extend_from_slice(&4242u64.to_le_bytes());
        let report = rt.run_tasks(vec![Task::new(1, args)]);
        assert_eq!(report.completed, 1);
        assert_eq!(pmem.read_u64(cell).unwrap(), 4242);
    }
}
