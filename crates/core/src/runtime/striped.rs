//! Multi-region runtime: the whole-system crash model of §2.2 spanning
//! a control region *and* a stripe of data regions.
//!
//! A sharded workload puts its data plane on a [`PMemStripe`] — one
//! independent region per shard, so shard critical sections never
//! serialize — while the runtime's own state (superblock, per-worker
//! persistent stacks, heap, answer evidence) lives in a dedicated
//! control region. The paper's crash model is *system-wide*: a power
//! failure does not pick a region. [`StripedRuntime`] enforces exactly
//! that:
//!
//! * a crash observed in **any** region (a shard's fail-point firing
//!   mid-batch, or the control region dying under a stack push) trips
//!   the whole system — every other region is crashed on the spot, so
//!   every worker unwinds at its next NVRAM access no matter which
//!   shard it was touching;
//! * the [`RunReport`] attributes the failure to the region that
//!   tripped it ([`CrashSite`]: region index plus that region's frozen
//!   persistence-event counter), so campaign logs can name the kill;
//! * [`StripedRuntime::crash_all`] / [`StripedRuntime::reopen_all`]
//!   are the boot path: inject a system failure, then reopen every
//!   region together as the recovery boot would;
//! * [`StripedRuntime::recover_with`] fans out a per-shard prelude
//!   (e.g. an evidence scan over the shard's own log) — in parallel,
//!   one thread per shard, mirroring §4.3's parallel stack recovery —
//!   before replaying the interrupted frames. A crash during either
//!   phase trips the remaining regions and leaves a state from which
//!   the next `reopen_all` + `recover` continues idempotently.

use pstack_nvram::{op_label, PMem, PMemStripe};

use crate::registry::FunctionRegistry;
use crate::runtime::exec::{CrashRegion, CrashSite, RunReport};
use crate::runtime::queue::{Task, TaskQueue};
use crate::runtime::recovery::{RecoveryMode, RecoveryReport};
use crate::runtime::{Runtime, RuntimeConfig};
use crate::PError;

/// Salt mixed into the control region's survivor seed so control and
/// shard 0 never share a survival pattern.
const CONTROL_SEED_SALT: u64 = 0xC0_17_20_11_D0_0D_F1_1E;

/// A [`Runtime`] whose workers additionally operate on a stripe of
/// data regions, under whole-system crash semantics: a crash in any
/// region takes every region down, and recovery spans them all.
///
/// Cheap to clone; clones share the underlying regions.
///
/// # Example
///
/// ```
/// use pstack_core::{FunctionRegistry, RuntimeConfig, StripedRuntime, Task};
/// use pstack_nvram::PMemBuilder;
///
/// # fn main() -> Result<(), pstack_core::PError> {
/// // Function 1 persists its argument into shard `args[8]`'s region.
/// let stripe = PMemBuilder::new().len(4096).eager_flush(true).build_striped(2);
/// let mut registry = FunctionRegistry::new();
/// {
///     let stripe = stripe.clone();
///     let body = move |_ctx: &mut pstack_core::PContext<'_>, args: &[u8]| {
///         let val = u64::from_le_bytes(args[..8].try_into().unwrap());
///         stripe.region(args[8] as usize).write_u64(0u64.into(), val)?;
///         Ok(None)
///     };
///     registry.register_pair(1, body.clone(), body)?;
/// }
/// let control = PMemBuilder::new().len(1 << 20).build_in_memory();
/// let rt = StripedRuntime::format(control, stripe.clone(), RuntimeConfig::new(1), &registry)?;
/// let mut args = 7u64.to_le_bytes().to_vec();
/// args.push(1); // shard 1
/// let report = rt.run_tasks(vec![Task::new(1, args)]);
/// assert_eq!(report.completed, 1);
/// assert_eq!(stripe.region(1).read_u64(0u64.into())?, 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StripedRuntime {
    runtime: Runtime,
    stripe: PMemStripe,
    crash_seed: u64,
    crash_survival: f64,
    /// The site of the last whole-system crash this boot tripped
    /// (shared by clones; reset on `reopen_all`).
    last_site: std::sync::Arc<std::sync::Mutex<Option<CrashSite>>>,
}

impl StripedRuntime {
    /// Bundles an already-built [`Runtime`] (over its control region)
    /// with the data stripe its tasks operate on.
    #[must_use]
    pub fn from_parts(runtime: Runtime, stripe: PMemStripe) -> Self {
        // Name the control region in telemetry traces; shard regions
        // were already labeled by `build_striped`. No-op when the
        // recorder is compiled out.
        runtime.pmem().telemetry_set_label("control");
        StripedRuntime {
            runtime,
            stripe,
            crash_seed: 0,
            crash_survival: 0.0,
            last_site: std::sync::Arc::new(std::sync::Mutex::new(None)),
        }
    }

    /// Formats a fresh system: the control region gets the runtime
    /// layout (superblock, stacks, heap); the stripe is taken as-is
    /// (data-plane formatting is the application's business).
    ///
    /// # Errors
    ///
    /// Same as [`Runtime::format`].
    pub fn format(
        control: PMem,
        stripe: PMemStripe,
        cfg: RuntimeConfig,
        registry: &FunctionRegistry,
    ) -> Result<Self, PError> {
        Ok(Self::from_parts(
            Runtime::format(control, cfg, registry)?,
            stripe,
        ))
    }

    /// Opens a previously formatted system (the recovery-mode boot).
    /// Run [`StripedRuntime::recover`] before submitting new tasks.
    ///
    /// # Errors
    ///
    /// Same as [`Runtime::open`].
    pub fn open(
        control: PMem,
        stripe: PMemStripe,
        registry: &FunctionRegistry,
    ) -> Result<Self, PError> {
        Ok(Self::from_parts(Runtime::open(control, registry)?, stripe))
    }

    /// Sets the survivor seed used when this runtime propagates a
    /// whole-system crash (each region's dirty lines survive under
    /// `seed ^ region`, deterministically).
    #[must_use]
    pub fn crash_seed(mut self, seed: u64) -> Self {
        self.crash_seed = seed;
        self
    }

    /// Sets the per-line survival probability for propagated crashes
    /// (default `0.0`: every unflushed line is lost — the harshest,
    /// fully deterministic survivors model).
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]`.
    #[must_use]
    pub fn crash_survival(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability must be in [0, 1]");
        self.crash_survival = prob;
        self
    }

    /// The single-region runtime over the control region.
    #[must_use]
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// The data stripe.
    #[must_use]
    pub fn stripe(&self) -> &PMemStripe {
        &self.stripe
    }

    /// The control region (superblock, stacks, heap).
    #[must_use]
    pub fn control(&self) -> &PMem {
        self.runtime.pmem()
    }

    /// Attributes an observed crash to the region it originated in:
    /// the lowest-indexed crashed shard region, else the control
    /// region. Meaningful before the failure has been propagated
    /// stripe-wide (afterwards every region is crashed).
    fn locate_crash(&self) -> CrashSite {
        match self.stripe.crash_site() {
            Some((shard, events)) => CrashSite {
                region: CrashRegion::Shard(shard),
                events,
            },
            None => CrashSite {
                region: CrashRegion::Runtime,
                events: self.control().events(),
            },
        }
    }

    /// Records where the crash originated, then takes the whole system
    /// down: §2.2 knows no partial failures, so the first observer of
    /// any region's death kills the rest before unwinding.
    fn trip_system_crash(&self) -> CrashSite {
        let site = self.locate_crash();
        // Recorded before the propagation below, so the attribution
        // event anchors the crash burst in the telemetry timeline.
        pstack_telemetry::crash_site(
            match site.region {
                CrashRegion::Shard(shard) => shard as u64,
                CrashRegion::Runtime => pstack_telemetry::CONTROL_REGION,
            },
            site.events,
        );
        *self.last_site.lock().expect("site lock never poisoned") = Some(site);
        self.control()
            .crash_now(self.crash_seed ^ CONTROL_SEED_SALT, self.crash_survival);
        self.stripe.crash_all(self.crash_seed, self.crash_survival);
        site
    }

    /// The attribution of the last whole-system crash this boot
    /// tripped — also available through [`RunReport::crash_site`] for
    /// crashes during a run, but this accessor covers crashes tripped
    /// during [`StripedRuntime::recover_with`] too. `None` until a
    /// crash is tripped; reset by the reopen boot path.
    #[must_use]
    pub fn last_crash_site(&self) -> Option<CrashSite> {
        *self.last_site.lock().expect("site lock never poisoned")
    }

    /// `true` once every region (control and stripe) has crashed — the
    /// precondition of [`StripedRuntime::reopen_all`].
    #[must_use]
    pub fn all_crashed(&self) -> bool {
        self.control().is_crashed() && self.stripe.all_crashed()
    }

    /// Injects a whole-system failure: every not-yet-crashed region
    /// dies, dirty lines surviving per-region-deterministically under
    /// `seed` with probability `survival_prob`.
    pub fn crash_all(&self, seed: u64, survival_prob: f64) {
        self.control()
            .crash_now(seed ^ CONTROL_SEED_SALT, survival_prob);
        self.stripe.crash_all(seed, survival_prob);
    }

    /// Reopens every region of the crashed system and re-attaches the
    /// runtime — the recovery boot (§4.3 steps 1–2 across all
    /// regions). Follow with [`StripedRuntime::recover`].
    ///
    /// Only for registries that do **not** capture region handles; a
    /// registry whose functions hold `PMem`/stripe clones must be
    /// rebuilt over the reopened regions via
    /// [`StripedRuntime::reopen_all_with`], or its recover duals would
    /// still address the dead pre-crash handles.
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] if any region has not crashed, or a
    /// propagated open failure.
    pub fn reopen_all(&self, registry: &FunctionRegistry) -> Result<Self, PError> {
        self.reopen_all_with(|_, _| Ok(registry.clone()))
    }

    /// Like [`StripedRuntime::reopen_all`], but the function registry
    /// is rebuilt *over the reopened regions*: `make_registry` receives
    /// the fresh control region and stripe, so task functions can
    /// re-attach their stores/tables to live handles — the recovery
    /// boot of any application whose functions capture region handles.
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] if any region has not crashed, an
    /// error from `make_registry`, or a propagated open failure.
    pub fn reopen_all_with<F>(&self, make_registry: F) -> Result<Self, PError>
    where
        F: FnOnce(&PMem, &PMemStripe) -> Result<FunctionRegistry, PError>,
    {
        if !self.all_crashed() {
            return Err(PError::InvalidConfig(
                "reopen_all requires a whole-system crash; some region is still live".into(),
            ));
        }
        let _phase = pstack_telemetry::phase("recovery.reopen");
        let control = self.control().reopen()?;
        let stripe = self.stripe.reopen_all()?;
        let registry = make_registry(&control, &stripe)?;
        Ok(StripedRuntime {
            runtime: Runtime::open(control, &registry)?,
            stripe,
            crash_seed: self.crash_seed,
            crash_survival: self.crash_survival,
            last_site: std::sync::Arc::new(std::sync::Mutex::new(None)),
        })
    }

    /// Runs `tasks` on the configured workers under whole-system crash
    /// semantics: the first worker to observe a crash in *any* region
    /// attributes it ([`RunReport::crash_site`]) and crashes every
    /// other region, so all workers unwind at their next NVRAM access
    /// regardless of which shard they were touching. After a crashed
    /// run, [`StripedRuntime::reopen_all`] + [`StripedRuntime::recover`]
    /// is the restart path.
    pub fn run_tasks(&self, tasks: impl IntoIterator<Item = Task>) -> RunReport {
        let queue = TaskQueue::new();
        for t in tasks {
            queue.push(t);
        }
        queue.close();
        self.run_queue(&queue)
    }

    /// Like [`StripedRuntime::run_tasks`] over a caller-managed queue.
    pub fn run_queue(&self, queue: &TaskQueue) -> RunReport {
        self.runtime
            .run_queue_sited(queue, &|| self.trip_system_crash())
    }

    /// Recovers the whole system: replays every interrupted frame on
    /// every worker stack (with no per-shard prelude). Equivalent to
    /// `recover_with(mode, |_, _| Ok(()))`.
    ///
    /// # Errors
    ///
    /// Same as [`StripedRuntime::recover_with`].
    pub fn recover(&self, mode: RecoveryMode) -> Result<RecoveryReport, PError> {
        self.recover_with(mode, |_, _| Ok(()))
    }

    /// Recovers the whole system in two phases:
    ///
    /// 1. **per-shard fan-out** — `prelude(shard, region)` runs for
    ///    every stripe region (in parallel under
    ///    [`RecoveryMode::Parallel`], one thread per shard, mirroring
    ///    §4.3's parallel stack recovery). Applications hook their
    ///    per-shard evidence scans here;
    /// 2. **frame replay** — [`Runtime::recover`] walks every worker
    ///    stack top-to-bottom invoking recover duals.
    ///
    /// A crash during either phase trips the remaining regions (so the
    /// system is uniformly down) and propagates; recovery after
    /// `reopen_all` continues from the un-recovered suffix — frames
    /// popped by a completed recover dual are never replayed, the
    /// paper's idempotence argument, now spanning regions.
    ///
    /// # Errors
    ///
    /// The first error any phase hit: a propagated crash, an
    /// unregistered function id, or an application error from a
    /// prelude or recover dual.
    pub fn recover_with<F>(&self, mode: RecoveryMode, prelude: F) -> Result<RecoveryReport, PError>
    where
        F: Fn(usize, &PMem) -> Result<(), PError> + Sync,
    {
        let result = {
            let _phase = pstack_telemetry::phase("recovery.evidence-scan");
            self.shard_prelude_pass(mode, &prelude)
        }
        .and_then(|()| self.runtime.recover(mode));
        if let Err(e) = &result {
            if e.is_crash() {
                self.trip_system_crash();
            }
        }
        result
    }

    fn shard_prelude_pass<F>(&self, mode: RecoveryMode, prelude: &F) -> Result<(), PError>
    where
        F: Fn(usize, &PMem) -> Result<(), PError> + Sync,
    {
        match mode {
            RecoveryMode::Serial => {
                for (shard, region) in self.stripe.regions().iter().enumerate() {
                    let _label = op_label("runtime.recover");
                    prelude(shard, region)?;
                }
                Ok(())
            }
            RecoveryMode::Parallel => {
                let results: Vec<Result<(), PError>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .stripe
                        .regions()
                        .iter()
                        .enumerate()
                        .map(|(shard, region)| {
                            scope.spawn(move || {
                                let _label = op_label("runtime.recover");
                                prelude(shard, region)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("shard prelude must not panic"))
                        .collect()
                });
                for r in results {
                    r?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invoke::PContext;
    use pstack_nvram::{FailPlan, PMemBuilder, POffset};

    /// Function 1: persist `args[8..16]` at offset `args[16..24]` of
    /// shard `args[0..8]`'s region; the body doubles as the (idempotent)
    /// recover dual.
    fn stripe_registry(stripe: &PMemStripe) -> FunctionRegistry {
        let mut reg = FunctionRegistry::new();
        let stripe = stripe.clone();
        let body = move |_c: &mut PContext<'_>, args: &[u8]| {
            let shard = u64::from_le_bytes(args[..8].try_into().unwrap()) as usize;
            let val = u64::from_le_bytes(args[8..16].try_into().unwrap());
            let off = POffset::new(u64::from_le_bytes(args[16..24].try_into().unwrap()));
            let region = stripe.region(shard);
            region.write_u64(off, val)?;
            region.flush(off, 8)?;
            Ok(None)
        };
        reg.register_pair(1, body.clone(), body).unwrap();
        reg
    }

    fn task(shard: u64, val: u64, off: u64) -> Task {
        let mut args = shard.to_le_bytes().to_vec();
        args.extend_from_slice(&val.to_le_bytes());
        args.extend_from_slice(&off.to_le_bytes());
        Task::new(1, args)
    }

    fn fixture(shards: usize, workers: usize) -> (StripedRuntime, PMemStripe, FunctionRegistry) {
        let stripe = PMemBuilder::new().len(1 << 16).build_striped(shards);
        let control = PMemBuilder::new().len(1 << 20).build_in_memory();
        let reg = stripe_registry(&stripe);
        let rt = StripedRuntime::format(control, stripe.clone(), RuntimeConfig::new(workers), &reg)
            .unwrap();
        (rt, stripe, reg)
    }

    #[test]
    fn tasks_reach_their_shard_regions() {
        let (rt, stripe, _) = fixture(3, 2);
        let tasks: Vec<Task> = (0..12u64)
            .map(|i| task(i % 3, i + 100, 64 + i * 8))
            .collect();
        let report = rt.run_tasks(tasks);
        assert_eq!(report.completed, 12);
        assert!(!report.crashed);
        assert_eq!(report.crash_site, None);
        for i in 0..12u64 {
            assert_eq!(
                stripe
                    .region((i % 3) as usize)
                    .read_u64(POffset::new(64 + i * 8))
                    .unwrap(),
                i + 100
            );
        }
    }

    #[test]
    fn shard_crash_trips_the_whole_system_and_is_attributed() {
        let (rt, stripe, _) = fixture(2, 2);
        // Only shard 1's region is armed; its fail-point firing must
        // still take down shard 0 and the control region.
        stripe.region(1).arm_failpoint(FailPlan::after_events(5));
        let tasks: Vec<Task> = (0..64u64).map(|i| task(i % 2, i, 64 + i * 8)).collect();
        let report = rt.run_tasks(tasks);
        assert!(report.crashed);
        assert!(rt.all_crashed(), "crash must propagate to every region");
        let site = report.crash_site.expect("crash must carry a site");
        assert_eq!(site.region, CrashRegion::Shard(1));
        // The event counter froze when the armed fail-point fired.
        assert_eq!(site.events, stripe.region(1).events());
        assert!(site.events > 0);
    }

    #[test]
    fn control_crash_is_attributed_to_the_runtime_region() {
        let (rt, _stripe, _) = fixture(2, 1);
        rt.control().arm_failpoint(FailPlan::after_events(3));
        let report = rt.run_tasks((0..8u64).map(|i| task(i % 2, i, 64)));
        assert!(report.crashed);
        assert!(rt.all_crashed());
        let site = report.crash_site.expect("crash must carry a site");
        assert_eq!(site.region, CrashRegion::Runtime);
        assert_eq!(site.events, rt.control().events());
    }

    #[test]
    fn reopen_all_then_recover_completes_interrupted_tasks() {
        let (rt, stripe, _reg) = fixture(2, 2);
        stripe.region(0).arm_failpoint(FailPlan::after_events(4));
        let tasks: Vec<Task> = (0..32u64).map(|i| task(i % 2, 7, 64 + i * 8)).collect();
        let report = rt.run_tasks(tasks);
        assert!(report.crashed);

        // The registry captured pre-crash stripe handles, so the boot
        // path rebuilds it over the reopened regions.
        let rt2 = rt
            .reopen_all_with(|_, stripe| Ok(stripe_registry(stripe)))
            .unwrap();
        let rec = rt2.recover(RecoveryMode::Parallel).unwrap();
        // At most one in-flight frame per worker.
        assert!(rec.total_frames() <= 2);
        // Idempotent second pass.
        assert_eq!(rt2.recover(RecoveryMode::Serial).unwrap().total_frames(), 0);
    }

    #[test]
    fn reopen_all_rejects_partially_live_systems() {
        let (rt, stripe, reg) = fixture(2, 1);
        stripe.region(0).crash_now(0, 0.0);
        assert!(matches!(rt.reopen_all(&reg), Err(PError::InvalidConfig(_))));
        // Finishing the system failure makes the boot path work.
        rt.crash_all(9, 0.0);
        assert!(rt.all_crashed());
        let rt2 = rt.reopen_all(&reg).unwrap();
        assert!(!rt2.all_crashed());
        assert_eq!(rt2.runtime().workers(), 1);
    }

    #[test]
    fn recover_with_fans_preludes_over_all_shards() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let (rt, _stripe, reg) = fixture(3, 1);
        rt.crash_all(1, 1.0);
        let rt2 = rt.reopen_all(&reg).unwrap();
        for mode in [RecoveryMode::Parallel, RecoveryMode::Serial] {
            let seen = AtomicUsize::new(0);
            rt2.recover_with(mode, |shard, region| {
                assert!(shard < 3);
                assert!(!region.is_crashed());
                seen.fetch_add(1, Ordering::SeqCst);
                Ok(())
            })
            .unwrap();
            assert_eq!(seen.load(Ordering::SeqCst), 3);
        }
    }

    #[test]
    fn crash_during_recovery_trips_remaining_regions() {
        let (rt, stripe, _reg) = fixture(2, 1);
        // Leave an interrupted frame behind: the kill lands on shard
        // 0's flush, between the task's write and its persist.
        stripe.region(0).arm_failpoint(FailPlan::after_events(1));
        let report = rt.run_tasks(vec![task(0, 5, 64), task(1, 6, 64)]);
        assert!(report.crashed);
        let reboot = |rt: &StripedRuntime| {
            rt.reopen_all_with(|_, stripe| Ok(stripe_registry(stripe)))
                .unwrap()
        };
        let rt2 = reboot(&rt);
        // The recovery prelude dies in shard 1; the whole system must
        // be down afterwards so reopen_all works again.
        let err = rt2
            .recover_with(RecoveryMode::Serial, |shard, region| {
                if shard == 1 {
                    region.crash_now(3, 0.0);
                    region.read_u64(POffset::new(0))?;
                }
                Ok(())
            })
            .unwrap_err();
        assert!(err.is_crash());
        assert!(rt2.all_crashed());
        let rt3 = reboot(&rt2);
        rt3.recover(RecoveryMode::Parallel).unwrap();
        assert_eq!(rt3.recover(RecoveryMode::Serial).unwrap().total_frames(), 0);
    }

    #[test]
    fn clone_shares_regions_and_configuration() {
        let (rt, _stripe, _) = fixture(2, 1);
        let rt = rt.crash_seed(7).crash_survival(0.0);
        let clone = rt.clone();
        clone.crash_all(7, 0.0);
        assert!(rt.all_crashed(), "clones share the underlying regions");
    }
}
