//! The producer-consumer task queue of §4.3.
//!
//! The queue itself is *volatile* (as in the paper: the main thread
//! refills it after every restart from its persistent record of
//! outstanding work); only task *effects* are persistent.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

/// One unit of work: a registered function id plus serialized
/// arguments, exactly what a persistent stack frame records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// Registered function id to invoke.
    pub func_id: u64,
    /// Serialized arguments passed to the function (and persisted in
    /// its frame).
    pub args: Vec<u8>,
}

impl Task {
    /// Creates a task.
    #[must_use]
    pub fn new(func_id: u64, args: Vec<u8>) -> Self {
        Task { func_id, args }
    }
}

/// Multi-producer multi-consumer queue feeding worker threads.
///
/// # Example
///
/// ```
/// use pstack_core::{Task, TaskQueue};
///
/// let q = TaskQueue::new();
/// q.push(Task::new(1, vec![]));
/// q.close();
/// assert_eq!(q.pop().unwrap().func_id, 1);
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct TaskQueue {
    tx: Mutex<Option<Sender<Task>>>,
    rx: Receiver<Task>,
    pushed: AtomicU64,
    popped: AtomicU64,
}

impl Default for TaskQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl TaskQueue {
    /// Creates an empty open queue.
    #[must_use]
    pub fn new() -> Self {
        let (tx, rx) = unbounded();
        TaskQueue {
            tx: Mutex::new(Some(tx)),
            rx,
            pushed: AtomicU64::new(0),
            popped: AtomicU64::new(0),
        }
    }

    /// Enqueues a task.
    ///
    /// # Panics
    ///
    /// Panics if the queue has been closed.
    pub fn push(&self, task: Task) {
        let guard = self.tx.lock();
        let tx = guard.as_ref().expect("queue is closed");
        tx.send(task).expect("receiver lives as long as the queue");
        self.pushed.fetch_add(1, Ordering::Relaxed);
    }

    /// Closes the queue: consumers drain the remaining tasks, then
    /// [`TaskQueue::pop`] returns `None` forever.
    pub fn close(&self) {
        self.tx.lock().take();
    }

    /// Blocks for the next task; `None` once the queue is closed and
    /// drained.
    pub fn pop(&self) -> Option<Task> {
        match self.rx.recv() {
            Ok(t) => {
                self.popped.fetch_add(1, Ordering::Relaxed);
                Some(t)
            }
            Err(_) => None,
        }
    }

    /// Total tasks ever enqueued.
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Total tasks ever dequeued.
    #[must_use]
    pub fn popped(&self) -> u64 {
        self.popped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_single_consumer() {
        let q = TaskQueue::new();
        q.push(Task::new(1, vec![1]));
        q.push(Task::new(2, vec![2]));
        q.close();
        assert_eq!(q.pop().unwrap().func_id, 1);
        assert_eq!(q.pop().unwrap().func_id, 2);
        assert!(q.pop().is_none());
        assert_eq!(q.pushed(), 2);
        assert_eq!(q.popped(), 2);
    }

    #[test]
    fn concurrent_consumers_drain_everything() {
        let q = TaskQueue::new();
        for i in 0..100 {
            q.push(Task::new(i, vec![]));
        }
        q.close();
        let seen = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while let Some(t) = q.pop() {
                        seen.lock().unwrap().push(t.func_id);
                    }
                });
            }
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "queue is closed")]
    fn push_after_close_panics() {
        let q = TaskQueue::new();
        q.close();
        q.push(Task::new(1, vec![]));
    }
}
