//! Recovery mode (§4.3): one recovery thread per worker stack, each
//! walking its stack top-to-bottom invoking recover duals.

use std::time::{Duration, Instant};

use crate::invoke::{recover_stack, PContext};
use crate::runtime::Runtime;
use crate::PError;

/// How recovery threads are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryMode {
    /// One thread per worker stack, all at once — the paper's design:
    /// "system recovery happens in parallel, which allows for a faster
    /// recovery than an ordinary single-threaded recovery."
    #[default]
    Parallel,
    /// One stack after another on the calling thread; the baseline the
    /// paper compares against (experiment E5).
    Serial,
}

/// Outcome of a recovery pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Frames recovered per worker stack.
    pub frames_recovered: Vec<usize>,
    /// Wall-clock time of the whole pass.
    pub elapsed: Duration,
    /// Wall-clock time each worker's recovery took (its thread's view).
    pub per_worker: Vec<Duration>,
    /// Scheduling mode used.
    pub mode: RecoveryMode,
}

impl RecoveryReport {
    /// Total frames recovered across all stacks.
    #[must_use]
    pub fn total_frames(&self) -> usize {
        self.frames_recovered.iter().sum()
    }

    /// The critical path of an ideally parallel recovery: the longest
    /// single worker's recovery. On a machine with at least as many
    /// cores as workers, parallel recovery approaches this; on fewer
    /// cores it degrades toward the sum. Simulators report this figure
    /// because wall-clock parallel speedup is a property of the host,
    /// not of the algorithm.
    #[must_use]
    pub fn critical_path(&self) -> Duration {
        self.per_worker.iter().copied().max().unwrap_or_default()
    }

    /// Sum of all workers' recovery times — what a single-threaded
    /// recovery pays.
    #[must_use]
    pub fn total_work(&self) -> Duration {
        self.per_worker.iter().sum()
    }

    /// Modelled speedup of parallel over serial recovery:
    /// `total_work / critical_path`. Equals the worker count when the
    /// per-stack work is balanced (§4.3's motivation for parallel
    /// recovery).
    #[must_use]
    pub fn modeled_speedup(&self) -> f64 {
        let cp = self.critical_path().as_secs_f64();
        if cp == 0.0 {
            1.0
        } else {
            self.total_work().as_secs_f64() / cp
        }
    }
}

impl Runtime {
    /// Runs recovery over every worker stack (steps 2–3 of the §4.3
    /// recovery path). Idempotent: recovering an already-clean system
    /// recovers zero frames. Tolerates repeated failures — a crash
    /// mid-recovery leaves the un-recovered suffix of each stack in
    /// place, and the next recovery pass continues from there.
    ///
    /// # Errors
    ///
    /// The first error any recovery thread hit: a propagated crash, an
    /// unregistered function id, or an application error from a recover
    /// dual.
    pub fn recover(&self, mode: RecoveryMode) -> Result<RecoveryReport, PError> {
        let _phase = pstack_telemetry::phase("recovery.frame-replay");
        let start = Instant::now();
        let timed: Vec<(usize, Duration)> = match mode {
            RecoveryMode::Serial => {
                let mut out = Vec::with_capacity(self.workers());
                for pid in 0..self.workers() {
                    out.push(self.recover_worker_timed(pid)?);
                }
                out
            }
            RecoveryMode::Parallel => {
                let results: Vec<Result<(usize, Duration), PError>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..self.workers())
                        .map(|pid| match self.host_stack() {
                            None => scope.spawn(move || self.recover_worker_timed(pid)),
                            Some(bytes) => std::thread::Builder::new()
                                .name(format!("pstack-recovery-{pid}"))
                                .stack_size(bytes)
                                .spawn_scoped(scope, move || self.recover_worker_timed(pid))
                                .expect("recovery thread spawns"),
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("recovery thread must not panic"))
                        .collect()
                });
                let mut out = Vec::with_capacity(results.len());
                for r in results {
                    out.push(r?);
                }
                out
            }
        };
        Ok(RecoveryReport {
            frames_recovered: timed.iter().map(|(n, _)| *n).collect(),
            elapsed: start.elapsed(),
            per_worker: timed.into_iter().map(|(_, d)| d).collect(),
            mode,
        })
    }

    /// Recovers a single worker stack; exposed for tests and benches.
    ///
    /// # Errors
    ///
    /// Same as [`Runtime::recover`].
    pub fn recover_worker(&self, pid: usize) -> Result<usize, PError> {
        Ok(self.recover_worker_timed(pid)?.0)
    }

    fn recover_worker_timed(&self, pid: usize) -> Result<(usize, Duration), PError> {
        let start = Instant::now();
        let mut stack = self.open_stack(pid)?;
        let user_root = self.user_root()?;
        let mut ctx = PContext::new(
            self.pmem().clone(),
            self.heap().clone(),
            self.registry(),
            stack.as_mut(),
            pid,
            user_root,
        );
        let frames = recover_stack(&mut ctx)?.frames_recovered;
        Ok((frames, start.elapsed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::FunctionRegistry;
    use crate::runtime::{RuntimeConfig, Task};
    use pstack_nvram::{FailPlan, PMemBuilder};

    /// Function 1 writes `args[8..16]` into slot `args[0..8]` of the
    /// user area, with the write idempotent so call and recover share
    /// the body.
    fn registry() -> FunctionRegistry {
        let mut reg = FunctionRegistry::new();
        let body = |c: &mut PContext<'_>, args: &[u8]| {
            let slot = u64::from_le_bytes(args[..8].try_into().unwrap());
            let val = u64::from_le_bytes(args[8..16].try_into().unwrap());
            let off = c.user_root() + slot * 8;
            c.pmem.write_u64(off, val)?;
            c.pmem.flush(off, 8)?;
            Ok(None)
        };
        reg.register_pair(1, body, body).unwrap();
        reg
    }

    fn task(slot: u64, val: u64) -> Task {
        let mut args = slot.to_le_bytes().to_vec();
        args.extend_from_slice(&val.to_le_bytes());
        Task::new(1, args)
    }

    #[test]
    fn recovery_of_clean_system_is_noop() {
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let reg = registry();
        let rt = Runtime::format(pmem, RuntimeConfig::new(3), &reg).unwrap();
        for mode in [RecoveryMode::Parallel, RecoveryMode::Serial] {
            let report = rt.recover(mode).unwrap();
            assert_eq!(report.total_frames(), 0);
            assert_eq!(report.frames_recovered.len(), 3);
            assert_eq!(report.mode, mode);
        }
    }

    #[test]
    fn crash_then_recover_completes_interrupted_tasks() {
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let reg = registry();
        let rt = Runtime::format(pmem.clone(), RuntimeConfig::new(4), &reg).unwrap();
        pmem.arm_failpoint(FailPlan::after_events(50));
        let report = rt.run_tasks((0..100).map(|i| task(i, i + 1)));
        assert!(report.crashed);

        let pmem2 = pmem.reopen().unwrap();
        let rt2 = Runtime::open(pmem2.clone(), &reg).unwrap();
        let rec = rt2.recover(RecoveryMode::Parallel).unwrap();
        // In-flight frames (at most one per worker) were recovered.
        assert!(rec.total_frames() <= 4);
        // Every stack is balanced again.
        for pid in 0..4 {
            assert_eq!(rt2.open_stack(pid).unwrap().depth(), 0);
        }
        // Recovery is idempotent.
        assert_eq!(rt2.recover(RecoveryMode::Serial).unwrap().total_frames(), 0);
    }

    #[test]
    fn repeated_failures_make_progress() {
        // E6: crash during recovery, recover again, never re-run a
        // popped frame, and eventually finish.
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let reg = registry();
        let rt = Runtime::format(pmem.clone(), RuntimeConfig::new(2), &reg).unwrap();
        pmem.arm_failpoint(FailPlan::after_events(30));
        let report = rt.run_tasks((0..50).map(|i| task(i, 1)));
        assert!(report.crashed);

        let mut pmem = pmem.reopen().unwrap();
        let mut total_recovered = 0usize;
        let mut attempts = 0;
        loop {
            attempts += 1;
            assert!(attempts < 100, "recovery must terminate");
            let rt = Runtime::open(pmem.clone(), &reg).unwrap();
            // Inject a crash into every other recovery attempt.
            if attempts % 2 == 1 {
                pmem.arm_failpoint(FailPlan::after_events(1));
            }
            match rt.recover(RecoveryMode::Parallel) {
                Ok(rep) => {
                    total_recovered += rep.total_frames();
                    break;
                }
                Err(e) => {
                    assert!(e.is_crash(), "only crashes expected, got {e}");
                    pmem = pmem.reopen().unwrap();
                }
            }
        }
        // At most one in-flight frame per worker existed; repeated
        // failures must not recover more than that in total.
        assert!(total_recovered <= 2, "recovered {total_recovered}");
        let rt = Runtime::open(pmem, &reg).unwrap();
        assert_eq!(rt.recover(RecoveryMode::Serial).unwrap().total_frames(), 0);
    }

    #[test]
    fn recovery_preserves_task_effects() {
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let reg = registry();
        let rt = Runtime::format(pmem.clone(), RuntimeConfig::new(1), &reg).unwrap();
        // Run a single task and crash partway through it.
        pmem.arm_failpoint(FailPlan::after_events(6));
        let _ = rt.run_tasks(vec![task(3, 33)]);
        if !pmem.is_crashed() {
            pmem.crash_now(0, 0.0);
        }
        let pmem2 = pmem.reopen().unwrap();
        let rt2 = Runtime::open(pmem2.clone(), &reg).unwrap();
        rt2.recover(RecoveryMode::Parallel).unwrap();
        let root = rt2.user_root().unwrap();
        // Whether the crash hit before or after the write, recovery
        // re-ran the idempotent body, so the slot now holds 33 — unless
        // the task never started (frame never linearized), in which
        // case the slot is 0 and no frame was recovered. Both are
        // legal; what is illegal is a torn in-between.
        let v = pmem2.read_u64(root + 24u64).unwrap();
        assert!(v == 33 || v == 0, "torn value {v}");
    }

    #[test]
    fn unknown_function_in_frame_fails_recovery() {
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let reg = registry();
        let rt = Runtime::format(pmem.clone(), RuntimeConfig::new(1), &reg).unwrap();
        // Push a frame for an id that the (next boot's) registry lacks.
        let mut stack = rt.open_stack(0).unwrap();
        stack.push(777, &[]).unwrap();
        drop(stack);
        pmem.crash_now(0, 1.0);
        let pmem2 = pmem.reopen().unwrap();
        let rt2 = Runtime::open(pmem2, &reg).unwrap();
        assert!(matches!(
            rt2.recover(RecoveryMode::Parallel),
            Err(PError::UnknownFunction(777))
        ));
    }
}
