//! The system architecture of §4.3: one main thread (standard mode or
//! recovery mode), N worker threads with per-thread persistent stacks,
//! a producer-consumer task queue, and parallel recovery.
//!
//! # Persistent layout
//!
//! ```text
//! offset 0      superblock (64 bytes): magic, version, workers,
//!               stack kind/capacity, stacks base, heap base/len,
//!               user root
//! offset 64     user scratch area (1 KiB) — default user root
//! offset 1088   per-worker stack areas (fixed regions, or 64-byte
//!               headers for the unbounded variants)
//! then          the persistent heap, to the end of the region
//! ```
//!
//! `Runtime::format` is the standard-mode boot of a fresh system;
//! `Runtime::open` is the boot after a crash, and `Runtime::recover`
//! is the recovery pass that must complete before tasks run again.

mod exec;
mod queue;
mod recovery;
mod striped;

pub use exec::{CrashRegion, CrashSite, RunReport};
pub use queue::{Task, TaskQueue};
pub use recovery::{RecoveryMode, RecoveryReport};
pub use striped::StripedRuntime;

use pstack_heap::PHeap;
use pstack_nvram::{PMem, POffset};

use crate::registry::FunctionRegistry;
use crate::stack::{FixedStack, ListStack, PersistentStack, StackKind, VecStack};
use crate::PError;

const SB_MAGIC: u64 = 0x5053_5441_434B_5254; // "PSTACKRT"
const SB_VERSION: u32 = 1;

const OFF_MAGIC: u64 = 0;
const OFF_VERSION: u64 = 8;
const OFF_WORKERS: u64 = 12;
const OFF_KIND: u64 = 16;
const OFF_STACK_CAP: u64 = 24;
const OFF_STACKS_BASE: u64 = 32;
const OFF_HEAP_BASE: u64 = 40;
const OFF_HEAP_LEN: u64 = 48;
const OFF_USER_ROOT: u64 = 56;

const SUPERBLOCK_LEN: u64 = 64;
const USER_SCRATCH_LEN: u64 = 1024;

/// Default per-worker stack capacity (fixed variant) or initial/default
/// block size (unbounded variants).
pub const DEFAULT_STACK_CAPACITY: u64 = 16 * 1024;

/// Configuration for [`Runtime::format`].
///
/// # Example
///
/// ```
/// use pstack_core::{RuntimeConfig, StackKind};
///
/// let cfg = RuntimeConfig::new(4)
///     .stack_kind(StackKind::List)
///     .stack_capacity(4096);
/// assert_eq!(cfg.workers, 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Number of worker threads (and persistent stacks).
    pub workers: usize,
    /// Stack layout for every worker.
    pub kind: StackKind,
    /// Capacity of each fixed stack, or initial capacity / default
    /// block size for the unbounded variants.
    pub capacity: u64,
    /// Explicit heap length; defaults to all space after the stacks.
    pub heap_len: Option<u64>,
}

impl RuntimeConfig {
    /// Starts a configuration with `workers` workers, fixed stacks of
    /// [`DEFAULT_STACK_CAPACITY`] and the rest of the region as heap.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        RuntimeConfig {
            workers,
            kind: StackKind::Fixed,
            capacity: DEFAULT_STACK_CAPACITY,
            heap_len: None,
        }
    }

    /// Selects the stack layout.
    #[must_use]
    pub fn stack_kind(mut self, kind: StackKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets the per-worker stack capacity (see [`RuntimeConfig::capacity`]).
    #[must_use]
    pub fn stack_capacity(mut self, capacity: u64) -> Self {
        self.capacity = capacity;
        self
    }

    /// Limits the heap length instead of using all remaining space.
    #[must_use]
    pub fn heap_len(mut self, len: u64) -> Self {
        self.heap_len = Some(len);
        self
    }
}

/// The persistent-stack runtime: formats or opens the NVRAM layout and
/// runs tasks (standard mode) or recovery (recovery mode).
///
/// See the `pstack` facade crate documentation for a full example.
#[derive(Debug, Clone)]
pub struct Runtime {
    pmem: PMem,
    heap: PHeap,
    registry: FunctionRegistry,
    workers: usize,
    kind: StackKind,
    capacity: u64,
    stacks_base: u64,
    stack_area: u64,
    host_stack: Option<usize>,
}

fn round64(v: u64) -> u64 {
    (v + 63) & !63
}

impl Runtime {
    /// Formats a fresh system over `pmem`: writes the superblock,
    /// formats the heap and every worker stack. This is the standard-
    /// mode initialization of §4.3 (steps 1–2).
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] if the region is too small for the
    /// requested configuration, or propagated NVRAM/heap errors.
    pub fn format(
        pmem: PMem,
        cfg: RuntimeConfig,
        registry: &FunctionRegistry,
    ) -> Result<Self, PError> {
        if cfg.workers == 0 {
            return Err(PError::InvalidConfig(
                "at least one worker is required".into(),
            ));
        }
        if cfg.capacity == 0 {
            return Err(PError::InvalidConfig(
                "stack capacity must be positive".into(),
            ));
        }
        let stacks_base = round64(SUPERBLOCK_LEN + USER_SCRATCH_LEN);
        let stack_area = match cfg.kind {
            StackKind::Fixed => round64(cfg.capacity),
            StackKind::Vec | StackKind::List => 64,
        };
        let heap_base = round64(stacks_base + cfg.workers as u64 * stack_area);
        let max_heap = (pmem.len() as u64).saturating_sub(heap_base);
        let heap_len = cfg.heap_len.unwrap_or(max_heap);
        if heap_len > max_heap || heap_len < 256 {
            return Err(PError::InvalidConfig(format!(
                "heap of {heap_len} bytes does not fit (region leaves {max_heap} after layout)"
            )));
        }

        pmem.write_u64(POffset::new(OFF_MAGIC), SB_MAGIC)?;
        pmem.write_u32(POffset::new(OFF_VERSION), SB_VERSION)?;
        pmem.write_u32(POffset::new(OFF_WORKERS), cfg.workers as u32)?;
        pmem.write_u8(POffset::new(OFF_KIND), cfg.kind.as_u8())?;
        pmem.write_u64(POffset::new(OFF_STACK_CAP), cfg.capacity)?;
        pmem.write_u64(POffset::new(OFF_STACKS_BASE), stacks_base)?;
        pmem.write_u64(POffset::new(OFF_HEAP_BASE), heap_base)?;
        pmem.write_u64(POffset::new(OFF_HEAP_LEN), heap_len)?;
        pmem.write_u64(POffset::new(OFF_USER_ROOT), SUPERBLOCK_LEN)?;
        pmem.flush(POffset::new(0), SUPERBLOCK_LEN as usize)?;

        let heap = PHeap::format(pmem.clone(), POffset::new(heap_base), heap_len)?;
        let rt = Runtime {
            pmem,
            heap,
            registry: registry.clone(),
            workers: cfg.workers,
            kind: cfg.kind,
            capacity: cfg.capacity,
            stacks_base,
            stack_area,
            host_stack: None,
        };
        for pid in 0..rt.workers {
            rt.format_stack(pid)?;
        }
        Ok(rt)
    }

    /// Opens a previously formatted system (recovery-mode boot,
    /// steps 1–2 of §4.3's crash path). Run [`Runtime::recover`] before
    /// submitting new tasks.
    ///
    /// # Errors
    ///
    /// [`PError::CorruptStack`] for a bad superblock, or propagated
    /// heap/NVRAM errors.
    pub fn open(pmem: PMem, registry: &FunctionRegistry) -> Result<Self, PError> {
        let magic = pmem.read_u64(POffset::new(OFF_MAGIC))?;
        if magic != SB_MAGIC {
            return Err(PError::CorruptStack(format!(
                "bad superblock magic {magic:#x}; was the region formatted?"
            )));
        }
        let version = pmem.read_u32(POffset::new(OFF_VERSION))?;
        if version != SB_VERSION {
            return Err(PError::CorruptStack(format!(
                "superblock version {version} is not supported (expected {SB_VERSION})"
            )));
        }
        let workers = pmem.read_u32(POffset::new(OFF_WORKERS))? as usize;
        let kind = StackKind::from_u8(pmem.read_u8(POffset::new(OFF_KIND))?)?;
        let capacity = pmem.read_u64(POffset::new(OFF_STACK_CAP))?;
        let stacks_base = pmem.read_u64(POffset::new(OFF_STACKS_BASE))?;
        let heap_base = pmem.read_u64(POffset::new(OFF_HEAP_BASE))?;
        let stack_area = match kind {
            StackKind::Fixed => round64(capacity),
            StackKind::Vec | StackKind::List => 64,
        };
        let heap = PHeap::open(pmem.clone(), POffset::new(heap_base))?;
        Ok(Runtime {
            pmem,
            heap,
            registry: registry.clone(),
            workers,
            kind,
            capacity,
            stacks_base,
            stack_area,
            host_stack: None,
        })
    }

    fn stack_base(&self, pid: usize) -> POffset {
        POffset::new(self.stacks_base + pid as u64 * self.stack_area)
    }

    fn format_stack(&self, pid: usize) -> Result<(), PError> {
        let base = self.stack_base(pid);
        match self.kind {
            StackKind::Fixed => {
                FixedStack::format(self.pmem.clone(), base, self.capacity)?;
            }
            StackKind::Vec => {
                VecStack::format(self.pmem.clone(), self.heap.clone(), base, self.capacity)?;
            }
            StackKind::List => {
                ListStack::format(self.pmem.clone(), self.heap.clone(), base, self.capacity)?;
            }
        }
        Ok(())
    }

    /// Opens worker `pid`'s persistent stack, rebuilding its volatile
    /// index from NVRAM.
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] for an out-of-range `pid`, or
    /// corruption/NVRAM errors.
    pub fn open_stack(&self, pid: usize) -> Result<Box<dyn PersistentStack>, PError> {
        if pid >= self.workers {
            return Err(PError::InvalidConfig(format!(
                "worker {pid} out of range ({} workers)",
                self.workers
            )));
        }
        let base = self.stack_base(pid);
        Ok(match self.kind {
            StackKind::Fixed => Box::new(FixedStack::open(self.pmem.clone(), base, self.capacity)?),
            StackKind::Vec => Box::new(VecStack::open(self.pmem.clone(), self.heap.clone(), base)?),
            StackKind::List => {
                Box::new(ListStack::open(self.pmem.clone(), self.heap.clone(), base)?)
            }
        })
    }

    /// The NVRAM region this runtime lives in.
    #[must_use]
    pub fn pmem(&self) -> &PMem {
        &self.pmem
    }

    /// The persistent heap.
    #[must_use]
    pub fn heap(&self) -> &PHeap {
        &self.heap
    }

    /// The function registry this runtime resolves frames against.
    #[must_use]
    pub fn registry(&self) -> &FunctionRegistry {
        &self.registry
    }

    /// Number of workers (and stacks).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The stack layout in use.
    #[must_use]
    pub fn stack_kind(&self) -> StackKind {
        self.kind
    }

    /// Sets the *host* (volatile) stack size for worker and recovery
    /// threads. Persistent recursion is mirrored by host recursion —
    /// one Rust frame per persistent frame — so deep transactional
    /// loops (Appendix A) need more than the platform's default thread
    /// stack even though the *persistent* stack is unbounded. Volatile
    /// configuration: set it again after every open.
    #[must_use]
    pub fn host_stack_size(mut self, bytes: usize) -> Self {
        self.host_stack = Some(bytes);
        self
    }

    pub(crate) fn host_stack(&self) -> Option<usize> {
        self.host_stack
    }

    /// Reads the persistent application root offset.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn user_root(&self) -> Result<POffset, PError> {
        Ok(POffset::new(
            self.pmem.read_u64(POffset::new(OFF_USER_ROOT))?,
        ))
    }

    /// Persists a new application root offset. Applications point this
    /// at the heap cell anchoring their persistent data (offsets, not
    /// pointers — §4.1).
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn set_user_root(&self, root: POffset) -> Result<(), PError> {
        self.pmem
            .write_u64(POffset::new(OFF_USER_ROOT), root.get())?;
        self.pmem.flush(POffset::new(OFF_USER_ROOT), 8)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_nvram::PMemBuilder;

    fn registry() -> FunctionRegistry {
        let mut r = FunctionRegistry::new();
        r.register_pair(1, |_c, _| Ok(None), |_c, _| Ok(None))
            .unwrap();
        r
    }

    #[test]
    fn format_then_open_round_trips_configuration() {
        for kind in [StackKind::Fixed, StackKind::Vec, StackKind::List] {
            let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
            let reg = registry();
            let cfg = RuntimeConfig::new(3).stack_kind(kind).stack_capacity(2048);
            let rt = Runtime::format(pmem.clone(), cfg, &reg).unwrap();
            assert_eq!(rt.workers(), 3);
            assert_eq!(rt.stack_kind(), kind);
            // Reopen as a recovery boot would.
            pmem.crash_now(0, 1.0);
            let pmem2 = pmem.reopen().unwrap();
            let rt2 = Runtime::open(pmem2, &reg).unwrap();
            assert_eq!(rt2.workers(), 3);
            assert_eq!(rt2.stack_kind(), kind);
            for pid in 0..3 {
                let s = rt2.open_stack(pid).unwrap();
                assert_eq!(s.depth(), 0);
                s.check_consistency().unwrap();
            }
        }
    }

    #[test]
    fn open_rejects_unformatted_region() {
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        assert!(matches!(
            Runtime::open(pmem, &registry()),
            Err(PError::CorruptStack(_))
        ));
    }

    #[test]
    fn format_rejects_zero_workers() {
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        assert!(matches!(
            Runtime::format(pmem, RuntimeConfig::new(0), &registry()),
            Err(PError::InvalidConfig(_))
        ));
    }

    #[test]
    fn format_rejects_oversized_layout() {
        let pmem = PMemBuilder::new().len(8 * 1024).build_in_memory();
        let cfg = RuntimeConfig::new(4).stack_capacity(64 * 1024);
        assert!(matches!(
            Runtime::format(pmem, cfg, &registry()),
            Err(PError::InvalidConfig(_))
        ));
    }

    #[test]
    fn user_root_defaults_to_scratch_and_is_settable() {
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let reg = registry();
        let rt = Runtime::format(pmem.clone(), RuntimeConfig::new(1), &reg).unwrap();
        assert_eq!(rt.user_root().unwrap(), POffset::new(SUPERBLOCK_LEN));
        let cell = rt.heap().alloc(64).unwrap();
        rt.set_user_root(cell).unwrap();
        assert_eq!(rt.user_root().unwrap(), cell);
        // Survives a crash: it was flushed.
        pmem.crash_now(0, 0.0);
        let pmem2 = pmem.reopen().unwrap();
        let rt2 = Runtime::open(pmem2, &reg).unwrap();
        assert_eq!(rt2.user_root().unwrap(), cell);
    }

    #[test]
    fn out_of_range_worker_is_rejected() {
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let rt = Runtime::format(pmem, RuntimeConfig::new(2), &registry()).unwrap();
        assert!(rt.open_stack(2).is_err());
    }

    #[test]
    fn worker_stacks_are_disjoint() {
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let reg = registry();
        let rt = Runtime::format(pmem, RuntimeConfig::new(2), &reg).unwrap();
        let mut s0 = rt.open_stack(0).unwrap();
        let s1 = rt.open_stack(1).unwrap();
        s0.push(1, b"only-on-zero").unwrap();
        assert_eq!(s0.depth(), 1);
        assert_eq!(s1.depth(), 0);
    }
}
