//! Linked-list-of-blocks persistent stack (Appendix A.3 of the paper).
//!
//! Frames live in heap blocks chained by *pointer frames* (`0xB`
//! preamble): when a frame does not fit in the current block, a new
//! block is allocated, the frame is written there, a pointer frame is
//! appended to the current block, and only then does the usual
//! end-marker flip linearize the push. Every block reserves headroom
//! for one pointer frame so the chain can always be extended.
//!
//! Each block starts with a 16-byte header: the offset of the previous
//! block (the paper's doubly-linked variant, used to find the
//! predecessor in O(1) on pop) and a magic word. A pop that empties the
//! top block flips the marker of the frame *before* the pointer frame
//! — atomically invalidating both the pointer frame and the whole top
//! block — and then deallocates the block. A crash between the flip
//! and the deallocation leaks the block, the same window the paper's
//! step 3 has.

use pstack_heap::PHeap;
use pstack_nvram::{PMem, POffset};

use crate::frame::{
    encode_ordinary, encode_pointer, parse_frame, FrameMeta, ParsedFrame, MARKER_FRAME_END,
    MARKER_STACK_END, ORDINARY_OVERHEAD, POINTER_FRAME_LEN,
};
use crate::registry::DUMMY_FUNC_ID;
use crate::stack::{
    read_ret_slot, write_ret_slot, FrameRecord, PersistentStack, ReturnSlot, StackKind,
};
use crate::PError;

const LIST_MAGIC: u64 = 0x5053_4C49_5354_534B; // "PSLISTSK"
const LIST_BLOCK_MAGIC: u64 = 0x5053_424C_4F43_4B21; // "PSBLOCK!"

/// Bytes of per-block persistent metadata (prev offset + magic).
const BLOCK_HDR: u64 = 16;

/// Smallest usable block: header + dummy frame + pointer-frame headroom.
pub const MIN_LIST_BLOCK: u64 = BLOCK_HDR + ORDINARY_OVERHEAD + POINTER_FRAME_LEN;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockInfo {
    /// Heap payload offset of the block (its header starts here).
    payload: POffset,
    /// First offset past the block's usable bytes.
    limit: POffset,
    /// Offset of the pointer frame chaining to the next block, if this
    /// is not the last block.
    pointer_frame: Option<POffset>,
}

/// A persistent stack spread over a linked list of heap blocks.
///
/// The persistent footprint outside the blocks is a 16-byte header
/// (magic word + first-block offset) at a caller-chosen location.
///
/// # Example
///
/// ```
/// use pstack_nvram::{PMemBuilder, POffset};
/// use pstack_heap::PHeap;
/// use pstack_core::stack::{ListStack, PersistentStack};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pmem = PMemBuilder::new().len(1 << 16).build_in_memory();
/// let heap = PHeap::format(pmem.clone(), POffset::new(64), (1 << 16) - 64)?;
/// let mut stack = ListStack::format(pmem, heap, POffset::new(0), 128)?;
/// for i in 0..50 {
///     stack.push(i, &[0u8; 16])?; // chains new blocks as needed
/// }
/// assert_eq!(stack.depth(), 50);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ListStack {
    pmem: PMem,
    heap: PHeap,
    hdr: POffset,
    default_block: u64,
    /// Volatile block chain, bottom block first.
    blocks: Vec<BlockInfo>,
    /// Volatile frame index: (block index, frame metadata), including
    /// the dummy frame at position 0.
    frames: Vec<(usize, FrameMeta)>,
    /// Blocks allocated (grown) and freed (shrunk) by this handle.
    blocks_chained: u64,
    blocks_released: u64,
}

impl ListStack {
    /// Formats a fresh list stack: allocates the first block, writes
    /// the dummy frame and persists the header at `hdr`.
    ///
    /// # Errors
    ///
    /// Heap exhaustion, invalid configuration, or NVRAM errors.
    pub fn format(
        pmem: PMem,
        heap: PHeap,
        hdr: POffset,
        default_block: u64,
    ) -> Result<Self, PError> {
        let default_block = default_block.max(MIN_LIST_BLOCK);
        let payload = heap.alloc(default_block as usize)?;
        write_block_header(&pmem, payload, POffset::NULL)?;
        let dummy = encode_ordinary(DUMMY_FUNC_ID, &[], MARKER_STACK_END)?;
        pmem.write(payload + BLOCK_HDR, &dummy)?;
        pmem.flush(payload + BLOCK_HDR, dummy.len())?;
        pmem.write_u64(hdr, LIST_MAGIC)?;
        pmem.write_u64(hdr + 8u64, payload.get())?;
        pmem.flush(hdr, 16)?;
        let limit = payload + heap.payload_len(payload)?;
        Ok(ListStack {
            pmem,
            heap,
            hdr,
            default_block,
            blocks: vec![BlockInfo {
                payload,
                limit,
                pointer_frame: None,
            }],
            frames: vec![(
                0,
                FrameMeta {
                    start: payload + BLOCK_HDR,
                    func_id: DUMMY_FUNC_ID,
                    args_len: 0,
                },
            )],
            blocks_chained: 0,
            blocks_released: 0,
        })
    }

    /// Opens a previously formatted list stack from its header,
    /// re-walking the whole chain.
    ///
    /// # Errors
    ///
    /// [`PError::CorruptStack`] on bad magic, a broken chain, or
    /// unparseable frames.
    pub fn open(pmem: PMem, heap: PHeap, hdr: POffset) -> Result<Self, PError> {
        let magic = pmem.read_u64(hdr)?;
        if magic != LIST_MAGIC {
            return Err(PError::CorruptStack(format!(
                "bad list-stack magic {magic:#x} at {hdr}"
            )));
        }
        let first = POffset::new(pmem.read_u64(hdr + 8u64)?);
        let (blocks, frames) = walk_chain(&pmem, &heap, first)?;
        if frames[0].1.func_id != DUMMY_FUNC_ID {
            return Err(PError::CorruptStack(format!(
                "bottom frame of list stack at {first} is not the dummy frame"
            )));
        }
        // Infer the default block size from the first block.
        let default_block = blocks[0].limit.get() - blocks[0].payload.get();
        Ok(ListStack {
            pmem,
            heap,
            hdr,
            default_block,
            blocks,
            frames,
            blocks_chained: 0,
            blocks_released: 0,
        })
    }

    /// Number of blocks currently in the chain.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Blocks chained (allocated) by this handle since it was opened.
    #[must_use]
    pub fn blocks_chained(&self) -> u64 {
        self.blocks_chained
    }

    /// Blocks released (freed) by this handle since it was opened.
    #[must_use]
    pub fn blocks_released(&self) -> u64 {
        self.blocks_released
    }

    fn top(&self) -> &(usize, FrameMeta) {
        self.frames.last().expect("dummy frame always present")
    }

    fn meta(&self, index: usize) -> Result<&FrameMeta, PError> {
        self.frames.get(index).map(|(_, m)| m).ok_or_else(|| {
            PError::CorruptStack(format!(
                "frame index {index} out of range (frame count {})",
                self.frames.len()
            ))
        })
    }
}

fn write_block_header(pmem: &PMem, payload: POffset, prev: POffset) -> Result<(), PError> {
    pmem.write_u64(payload, prev.get())?;
    pmem.write_u64(payload + 8u64, LIST_BLOCK_MAGIC)?;
    pmem.flush(payload, BLOCK_HDR as usize)?;
    Ok(())
}

#[allow(clippy::type_complexity)]
fn walk_chain(
    pmem: &PMem,
    heap: &PHeap,
    first: POffset,
) -> Result<(Vec<BlockInfo>, Vec<(usize, FrameMeta)>), PError> {
    let mut blocks = Vec::new();
    let mut frames = Vec::new();

    let block_info = |payload: POffset, expect_prev: POffset| -> Result<BlockInfo, PError> {
        let magic = pmem.read_u64(payload + 8u64)?;
        if magic != LIST_BLOCK_MAGIC {
            return Err(PError::CorruptStack(format!(
                "bad block magic {magic:#x} at {payload}"
            )));
        }
        let prev = POffset::new(pmem.read_u64(payload)?);
        if prev != expect_prev {
            return Err(PError::CorruptStack(format!(
                "block at {payload} records prev {prev}, expected {expect_prev}"
            )));
        }
        let len = heap.payload_len(payload).map_err(|e| {
            PError::CorruptStack(format!(
                "list-stack block {payload} is not a live heap allocation: {e}"
            ))
        })?;
        Ok(BlockInfo {
            payload,
            limit: payload + len,
            pointer_frame: None,
        })
    };

    blocks.push(block_info(first, POffset::NULL)?);
    let mut pos = first + BLOCK_HDR;
    loop {
        let bidx = blocks.len() - 1;
        match parse_frame(pmem, pos, blocks[bidx].limit)? {
            ParsedFrame::Ordinary { meta, marker } => {
                pos = meta.end();
                frames.push((bidx, meta));
                if marker == MARKER_STACK_END {
                    break;
                }
            }
            ParsedFrame::Pointer {
                start,
                next_block,
                marker,
            } => {
                if marker == MARKER_STACK_END {
                    return Err(PError::CorruptStack(format!(
                        "pointer frame at {start} carries a stack-end marker"
                    )));
                }
                let cur_payload = blocks[bidx].payload;
                blocks[bidx].pointer_frame = Some(start);
                blocks.push(block_info(next_block, cur_payload)?);
                pos = next_block + BLOCK_HDR;
            }
        }
    }
    Ok((blocks, frames))
}

impl PersistentStack for ListStack {
    fn kind(&self) -> StackKind {
        StackKind::List
    }

    fn push(&mut self, func_id: u64, args: &[u8]) -> Result<(), PError> {
        let need = ORDINARY_OVERHEAD + args.len() as u64;
        let (top_bidx, top_meta) = *self.top();
        debug_assert_eq!(top_bidx, self.blocks.len() - 1, "top frame in last block");
        let tail = top_meta.end();
        let limit = self.blocks[top_bidx].limit;

        if tail.get() + need + POINTER_FRAME_LEN <= limit.get() {
            // Fits in the current block: §3.4 protocol verbatim.
            let buf = encode_ordinary(func_id, args, MARKER_STACK_END)?;
            self.pmem.write(tail, &buf)?;
            self.pmem.flush(tail, buf.len())?;
            self.pmem
                .write_u8(top_meta.marker_off(), MARKER_FRAME_END)?;
            self.pmem.flush(top_meta.marker_off(), 1)?;
            self.frames.push((
                top_bidx,
                FrameMeta {
                    start: tail,
                    func_id,
                    args_len: args.len() as u32,
                },
            ));
            return Ok(());
        }

        // Chain a new block (Appendix A.3): everything below is
        // invisible until the old top's marker flips.
        let block_len = self.default_block.max(BLOCK_HDR + need + POINTER_FRAME_LEN);
        let new_payload = self.heap.alloc(block_len as usize)?;
        write_block_header(&self.pmem, new_payload, self.blocks[top_bidx].payload)?;
        let frame_start = new_payload + BLOCK_HDR;
        let buf = encode_ordinary(func_id, args, MARKER_STACK_END)?;
        self.pmem.write(frame_start, &buf)?;
        self.pmem.flush(frame_start, buf.len())?;
        let ptr = encode_pointer(new_payload, MARKER_FRAME_END);
        self.pmem.write(tail, &ptr)?;
        self.pmem.flush(tail, ptr.len())?;
        // Linearization: flip the old top's marker.
        self.pmem
            .write_u8(top_meta.marker_off(), MARKER_FRAME_END)?;
        self.pmem.flush(top_meta.marker_off(), 1)?;

        let new_limit = new_payload + self.heap.payload_len(new_payload)?;
        self.blocks[top_bidx].pointer_frame = Some(tail);
        self.blocks.push(BlockInfo {
            payload: new_payload,
            limit: new_limit,
            pointer_frame: None,
        });
        self.frames.push((
            self.blocks.len() - 1,
            FrameMeta {
                start: frame_start,
                func_id,
                args_len: args.len() as u32,
            },
        ));
        self.blocks_chained += 1;
        Ok(())
    }

    fn pop(&mut self) -> Result<(), PError> {
        if self.frames.len() < 2 {
            return Err(PError::StackEmpty);
        }
        let (top_bidx, _) = *self.top();
        let (penult_bidx, penult) = self.frames[self.frames.len() - 2];
        // Flip the penultimate frame's marker: if the top frame was the
        // only one in its block, this single byte atomically invalidates
        // the pointer frame *and* the whole top block (Fig. 8).
        self.pmem.write_u8(penult.marker_off(), MARKER_STACK_END)?;
        self.pmem.flush(penult.marker_off(), 1)?;
        self.frames.pop();
        if top_bidx != penult_bidx {
            // Crash here leaks the unreachable block; same window as
            // the paper's deallocation step.
            let dead = self.blocks.pop().expect("top block exists");
            self.heap.free(dead.payload)?;
            self.blocks
                .last_mut()
                .expect("chain keeps its first block")
                .pointer_frame = None;
            self.blocks_released += 1;
        }
        Ok(())
    }

    fn frame_count(&self) -> usize {
        self.frames.len()
    }

    fn frame_record(&self, index: usize) -> Result<FrameRecord, PError> {
        let meta = self.meta(index)?;
        Ok(FrameRecord {
            func_id: meta.func_id,
            args: crate::frame::read_args(&self.pmem, meta)?,
        })
    }

    fn set_ret(&mut self, index: usize, slot: ReturnSlot) -> Result<(), PError> {
        let meta = *self.meta(index)?;
        write_ret_slot(&self.pmem, &meta, slot)
    }

    fn ret(&self, index: usize) -> Result<ReturnSlot, PError> {
        let meta = self.meta(index)?;
        read_ret_slot(&self.pmem, meta)
    }

    fn check_consistency(&self) -> Result<(), PError> {
        let first = POffset::new(self.pmem.read_u64(self.hdr + 8u64)?);
        let (blocks, frames) = walk_chain(&self.pmem, &self.heap, first)?;
        if blocks != self.blocks {
            return Err(PError::CorruptStack(format!(
                "persistent chain has {} blocks, volatile index has {}",
                blocks.len(),
                self.blocks.len()
            )));
        }
        if frames != self.frames {
            return Err(PError::CorruptStack(format!(
                "persistent walk found {} frames, volatile index has {}",
                frames.len(),
                self.frames.len()
            )));
        }
        Ok(())
    }

    fn used_bytes(&self) -> u64 {
        let frame_bytes: u64 = self.frames.iter().map(|(_, m)| m.total_len()).sum();
        let pointer_bytes: u64 = self
            .blocks
            .iter()
            .filter(|b| b.pointer_frame.is_some())
            .count() as u64
            * POINTER_FRAME_LEN;
        frame_bytes + pointer_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_nvram::{FailPlan, PMemBuilder};

    fn setup(block: u64) -> (PMem, PHeap, ListStack) {
        let pmem = PMemBuilder::new().len(1 << 18).build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(64), (1 << 18) - 64).unwrap();
        let s = ListStack::format(pmem.clone(), heap.clone(), POffset::new(0), block).unwrap();
        (pmem, heap, s)
    }

    #[test]
    fn push_pop_within_one_block() {
        let (_, _, mut s) = setup(4096);
        s.push(1, b"one").unwrap();
        s.push(2, b"two").unwrap();
        assert_eq!(s.block_count(), 1);
        assert_eq!(s.depth(), 2);
        s.check_consistency().unwrap();
        s.pop().unwrap();
        assert_eq!(s.frame_record(1).unwrap().args, b"one");
        s.check_consistency().unwrap();
    }

    #[test]
    fn chain_grows_and_shrinks() {
        let (_, _, mut s) = setup(96);
        for i in 0..30u64 {
            s.push(i, &[0u8; 24]).unwrap();
        }
        assert!(s.block_count() > 1, "small blocks must chain");
        assert!(s.blocks_chained() > 0);
        assert_eq!(s.depth(), 30);
        s.check_consistency().unwrap();
        for i in (0..30u64).rev() {
            assert_eq!(s.frame_record(s.top_index()).unwrap().func_id, i);
            s.pop().unwrap();
        }
        assert_eq!(s.block_count(), 1, "chain shrinks back to one block");
        assert!(s.blocks_released() > 0);
        assert_eq!(s.depth(), 0);
        s.check_consistency().unwrap();
    }

    #[test]
    fn oversized_frame_gets_dedicated_block() {
        let (_, _, mut s) = setup(96);
        s.push(1, &[0xAAu8; 500]).unwrap();
        assert_eq!(s.block_count(), 2);
        assert_eq!(s.frame_record(1).unwrap().args, vec![0xAAu8; 500]);
        s.pop().unwrap();
        assert_eq!(s.block_count(), 1);
        s.check_consistency().unwrap();
    }

    #[test]
    fn reopen_after_crash_sees_multi_block_stack() {
        let (pmem, _, mut s) = setup(96);
        for i in 0..20u64 {
            s.push(i, &[0u8; 24]).unwrap();
        }
        let blocks = s.block_count();
        assert!(blocks > 1);
        pmem.crash_now(0, 0.0);
        let pmem2 = pmem.reopen().unwrap();
        let heap2 = PHeap::open(pmem2.clone(), POffset::new(64)).unwrap();
        let s2 = ListStack::open(pmem2, heap2, POffset::new(0)).unwrap();
        assert_eq!(s2.depth(), 20);
        assert_eq!(s2.block_count(), blocks);
        for i in 0..20u64 {
            assert_eq!(s2.frame_record(1 + i as usize).unwrap().func_id, i);
        }
        s2.check_consistency().unwrap();
    }

    #[test]
    fn crash_point_enumeration_chaining_push_is_atomic() {
        let probe = || {
            let (pmem, heap, mut s) = setup(96);
            s.push(1, &[0u8; 24]).unwrap();
            s.push(2, &[0u8; 24]).unwrap();
            (pmem, heap, s)
        };
        // The third push must chain a new block.
        let (pmem, _, mut s) = probe();
        let e0 = pmem.events();
        s.push(3, &[0u8; 24]).unwrap();
        let chained = s.block_count() > 1;
        assert!(chained, "third push should chain");
        let total = pmem.events() - e0;

        for k in 0..total {
            let (pmem, _, mut s) = probe();
            pmem.arm_failpoint(FailPlan::after_events(k).with_survivors(k, 0.5));
            let err = s.push(3, &[0u8; 24]).unwrap_err();
            assert!(err.is_crash(), "event {k}");
            let pmem2 = pmem.reopen().unwrap();
            let heap2 = PHeap::open(pmem2.clone(), POffset::new(64)).unwrap();
            let s2 = ListStack::open(pmem2, heap2, POffset::new(0))
                .unwrap_or_else(|e| panic!("reopen failed after crash at event {k}: {e}"));
            assert!(
                s2.depth() == 2 || s2.depth() == 3,
                "crash at event {k} left depth {}",
                s2.depth()
            );
            if s2.depth() == 3 {
                assert_eq!(s2.frame_record(3).unwrap().func_id, 3);
            }
            s2.check_consistency().unwrap();
        }
    }

    #[test]
    fn crash_point_enumeration_cross_block_pop_is_atomic() {
        let probe = || {
            let (pmem, heap, mut s) = setup(96);
            s.push(1, &[0u8; 24]).unwrap();
            s.push(2, &[0u8; 24]).unwrap();
            s.push(3, &[0u8; 24]).unwrap();
            assert!(s.block_count() > 1);
            (pmem, heap, s)
        };
        let (pmem, _, mut s) = probe();
        let e0 = pmem.events();
        s.pop().unwrap();
        let total = pmem.events() - e0;

        for k in 0..total {
            let (pmem, _, mut s) = probe();
            pmem.arm_failpoint(FailPlan::after_events(k).with_survivors(k, 0.5));
            let err = s.pop().unwrap_err();
            assert!(err.is_crash(), "event {k}");
            let pmem2 = pmem.reopen().unwrap();
            let heap2 = PHeap::open(pmem2.clone(), POffset::new(64)).unwrap();
            let s2 = ListStack::open(pmem2, heap2, POffset::new(0))
                .unwrap_or_else(|e| panic!("reopen failed after crash at event {k}: {e}"));
            assert!(
                s2.depth() == 2 || s2.depth() == 3,
                "crash at event {k} left depth {}",
                s2.depth()
            );
            s2.check_consistency().unwrap();
        }
    }

    #[test]
    fn open_rejects_bad_magic() {
        let pmem = PMemBuilder::new().len(1 << 16).build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(64), (1 << 16) - 64).unwrap();
        assert!(matches!(
            ListStack::open(pmem, heap, POffset::new(0)),
            Err(PError::CorruptStack(_))
        ));
    }

    #[test]
    fn return_slots_work_across_blocks() {
        let (_, _, mut s) = setup(96);
        s.push(1, &[0u8; 24]).unwrap();
        for i in 0..10u64 {
            s.push(10 + i, &[0u8; 24]).unwrap();
        }
        assert!(s.block_count() > 1);
        s.set_ret(1, ReturnSlot::Value(*b"crossblk")).unwrap();
        assert_eq!(s.ret(1).unwrap(), ReturnSlot::Value(*b"crossblk"));
        s.set_ret(5, ReturnSlot::Unit).unwrap();
        assert_eq!(s.ret(5).unwrap(), ReturnSlot::Unit);
    }

    #[test]
    fn empty_pop_is_rejected() {
        let (_, _, mut s) = setup(4096);
        assert!(matches!(s.pop(), Err(PError::StackEmpty)));
    }

    #[test]
    fn min_block_is_enforced() {
        let (_, _, s) = setup(1);
        // format clamps to MIN_LIST_BLOCK; the dummy frame fits.
        assert_eq!(s.depth(), 0);
        s.check_consistency().unwrap();
    }
}
