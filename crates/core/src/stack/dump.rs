//! Human-readable stack dumps for debugging and post-mortem analysis.
//!
//! Recovery tooling wants to *look* at a persistent stack: which
//! functions were in flight at the crash, with what arguments, and what
//! their children returned. [`dump_stack`] renders any
//! [`PersistentStack`] into a compact text report.

use std::fmt::Write as _;

use crate::registry::DUMMY_FUNC_ID;
use crate::stack::{PersistentStack, ReturnSlot};
use crate::PError;

/// Renders the live frames of `stack`, bottom-up, one line per frame.
///
/// # Errors
///
/// Propagates NVRAM read failures.
///
/// # Example
///
/// ```
/// use pstack_nvram::{PMemBuilder, POffset};
/// use pstack_core::stack::{dump_stack, FixedStack, PersistentStack};
///
/// # fn main() -> Result<(), pstack_core::PError> {
/// let pmem = PMemBuilder::new().len(4096).build_in_memory();
/// let mut s = FixedStack::format(pmem, POffset::new(0), 2048)?;
/// s.push(7, b"abc")?;
/// let text = dump_stack(&s)?;
/// assert!(text.contains("func 0x7"));
/// # Ok(())
/// # }
/// ```
pub fn dump_stack(stack: &dyn PersistentStack) -> Result<String, PError> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} stack: {} live frame(s), {} bytes",
        stack.kind(),
        stack.depth(),
        stack.used_bytes()
    );
    for idx in 0..stack.frame_count() {
        let rec = stack.frame_record(idx)?;
        let slot = match stack.ret(idx)? {
            ReturnSlot::Empty => "ret slot: empty".to_string(),
            ReturnSlot::Unit => "ret slot: child completed (no value)".to_string(),
            ReturnSlot::Value(v) => {
                format!("ret slot: child returned {:#018x}", u64::from_le_bytes(v))
            }
        };
        let name = if rec.func_id == DUMMY_FUNC_ID {
            "[dummy]".to_string()
        } else {
            format!("func {:#x}", rec.func_id)
        };
        let args_preview: String = rec
            .args
            .iter()
            .take(16)
            .map(|b| format!("{b:02x}"))
            .collect();
        let ellipsis = if rec.args.len() > 16 { "…" } else { "" };
        let _ = writeln!(
            out,
            "  #{idx:<3} {name:<18} args[{}]={args_preview}{ellipsis}  {slot}",
            rec.args.len()
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::FixedStack;
    use pstack_nvram::{PMemBuilder, POffset};

    #[test]
    fn dump_shows_frames_and_slots() {
        let pmem = PMemBuilder::new().len(8192).build_in_memory();
        let mut s = FixedStack::format(pmem, POffset::new(0), 4096).unwrap();
        s.push(0xAB, &[1, 2, 3]).unwrap();
        s.push(0xCD, &[0u8; 40]).unwrap();
        s.set_ret(1, ReturnSlot::Value(7u64.to_le_bytes())).unwrap();
        let text = dump_stack(&s).unwrap();
        assert!(text.contains("fixed stack: 2 live frame(s)"));
        assert!(text.contains("[dummy]"));
        assert!(text.contains("func 0xab"));
        assert!(text.contains("func 0xcd"));
        assert!(text.contains("args[3]=010203"));
        assert!(text.contains("child returned"));
        assert!(text.contains('…'), "long args are abbreviated");
    }

    #[test]
    fn dump_of_empty_stack_mentions_dummy_only() {
        let pmem = PMemBuilder::new().len(4096).build_in_memory();
        let s = FixedStack::format(pmem, POffset::new(0), 2048).unwrap();
        let text = dump_stack(&s).unwrap();
        assert!(text.contains("0 live frame(s)"));
        assert!(text.contains("[dummy]"));
    }
}
