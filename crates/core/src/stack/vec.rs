//! Dynamically resizable persistent stack (Appendix A.2 of the paper).
//!
//! Along with the frame area we keep a single persistent pointer (an
//! offset, per §4.1) to the heap block holding the stack data. Growing
//! or shrinking allocates a new block, copies the live frames, flushes
//! the copy, and then *swings the pointer* with one 8-byte persist —
//! crash-atomic, because an 8-aligned word never crosses a cache line.
//! A crash before the swing leaves the old block authoritative; a crash
//! between the swing and the old block's deallocation leaks the old
//! block (the paper has the same window after its step 4).

use pstack_heap::PHeap;
use pstack_nvram::{PMem, POffset};

use crate::frame::{
    encode_ordinary, FrameMeta, MARKER_FRAME_END, MARKER_STACK_END, ORDINARY_OVERHEAD,
};
use crate::registry::DUMMY_FUNC_ID;
use crate::stack::{
    read_ret_slot, walk_contiguous, write_ret_slot, FrameRecord, PersistentStack, ReturnSlot,
    StackKind,
};
use crate::PError;

const VEC_MAGIC: u64 = 0x5053_5645_4353_544B; // "PSVECSTK"

/// Smallest capacity a resizable stack will use or shrink to.
pub const MIN_VEC_CAPACITY: u64 = 64;

/// Shrink when `capacity > SHRINK_RATIO * used` (the paper suggests 4).
const SHRINK_RATIO: u64 = 4;

/// A persistent stack backed by one relocatable heap block.
///
/// The persistent footprint outside the block is a 16-byte header
/// (magic word + block offset) at a caller-chosen, 8-aligned location.
///
/// # Example
///
/// ```
/// use pstack_nvram::{PMemBuilder, POffset};
/// use pstack_heap::PHeap;
/// use pstack_core::stack::{PersistentStack, VecStack};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pmem = PMemBuilder::new().len(1 << 16).build_in_memory();
/// let heap = PHeap::format(pmem.clone(), POffset::new(64), (1 << 16) - 64)?;
/// let mut stack = VecStack::format(pmem, heap, POffset::new(0), 128)?;
/// for i in 0..100 {
///     stack.push(i, &[0u8; 32])?; // grows as needed
/// }
/// assert_eq!(stack.depth(), 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct VecStack {
    pmem: PMem,
    heap: PHeap,
    hdr: POffset,
    block: POffset,
    capacity: u64,
    /// Volatile frame index (absolute offsets into the current block),
    /// including the dummy frame; rebased on relocation.
    frames: Vec<FrameMeta>,
    shrink: bool,
    relocations: u64,
}

impl VecStack {
    /// Formats a fresh resizable stack: allocates the initial block from
    /// `heap`, writes the dummy frame, and persists the header at `hdr`.
    ///
    /// # Errors
    ///
    /// Heap exhaustion, invalid configuration, or NVRAM errors.
    pub fn format(
        pmem: PMem,
        heap: PHeap,
        hdr: POffset,
        initial_capacity: u64,
    ) -> Result<Self, PError> {
        if !hdr.is_aligned(8) {
            return Err(PError::InvalidConfig(format!(
                "vec-stack header at {hdr} must be 8-aligned for the atomic pointer swing"
            )));
        }
        let capacity = initial_capacity.max(MIN_VEC_CAPACITY);
        let block = heap.alloc(capacity as usize)?;
        let dummy = encode_ordinary(DUMMY_FUNC_ID, &[], MARKER_STACK_END)?;
        pmem.write(block, &dummy)?;
        pmem.flush(block, dummy.len())?;
        pmem.write_u64(hdr, VEC_MAGIC)?;
        pmem.write_u64(hdr + 8u64, block.get())?;
        pmem.flush(hdr, 16)?;
        let capacity = heap.payload_len(block)?;
        Ok(VecStack {
            pmem,
            heap,
            hdr,
            block,
            capacity,
            frames: vec![FrameMeta {
                start: block,
                func_id: DUMMY_FUNC_ID,
                args_len: 0,
            }],
            shrink: true,
            relocations: 0,
        })
    }

    /// Opens a previously formatted stack from its header. The heap
    /// must already be open (the block is a live heap allocation).
    ///
    /// # Errors
    ///
    /// [`PError::CorruptStack`] on bad magic or unparseable frames.
    pub fn open(pmem: PMem, heap: PHeap, hdr: POffset) -> Result<Self, PError> {
        let magic = pmem.read_u64(hdr)?;
        if magic != VEC_MAGIC {
            return Err(PError::CorruptStack(format!(
                "bad vec-stack magic {magic:#x} at {hdr}"
            )));
        }
        let block = POffset::new(pmem.read_u64(hdr + 8u64)?);
        let capacity = heap.payload_len(block).map_err(|e| {
            PError::CorruptStack(format!(
                "vec-stack block {block} is not a live heap allocation: {e}"
            ))
        })?;
        let frames = walk_contiguous(&pmem, block, block + capacity)?;
        if frames[0].func_id != DUMMY_FUNC_ID {
            return Err(PError::CorruptStack(format!(
                "bottom frame of vec-stack at {block} is not the dummy frame"
            )));
        }
        Ok(VecStack {
            pmem,
            heap,
            hdr,
            block,
            capacity,
            frames,
            shrink: true,
            relocations: 0,
        })
    }

    /// Enables or disables shrinking on pop (enabled by default).
    pub fn set_shrink(&mut self, shrink: bool) {
        self.shrink = shrink;
    }

    /// Current block capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of block relocations (grows and shrinks) this handle has
    /// performed — the Appendix A.2 cost the benchmarks measure.
    #[must_use]
    pub fn relocations(&self) -> u64 {
        self.relocations
    }

    fn top(&self) -> &FrameMeta {
        self.frames.last().expect("dummy frame always present")
    }

    fn meta(&self, index: usize) -> Result<&FrameMeta, PError> {
        self.frames.get(index).ok_or_else(|| {
            PError::CorruptStack(format!(
                "frame index {index} out of range (frame count {})",
                self.frames.len()
            ))
        })
    }

    /// Moves the stack to a new block of at least `new_capacity` bytes:
    /// copy, flush, swing the header pointer (atomic), free the old
    /// block, rebase the volatile index.
    fn relocate(&mut self, new_capacity: u64) -> Result<(), PError> {
        let used = self.used_bytes();
        debug_assert!(new_capacity >= used);
        let new_block = self.heap.alloc(new_capacity as usize)?;
        let data = self.pmem.read_vec(self.block, used as usize)?;
        self.pmem.write(new_block, &data)?;
        self.pmem.flush(new_block, used as usize)?;
        // The atomic pointer swing: after this single 8-byte persist the
        // new block is authoritative; before it, the old one is.
        self.pmem.write_u64(self.hdr + 8u64, new_block.get())?;
        self.pmem.flush(self.hdr + 8u64, 8)?;
        // Crash exactly here leaks the old block — same window as the
        // paper's "after that, we deallocate the old block".
        self.heap.free(self.block)?;
        let delta_base = self.block;
        for meta in &mut self.frames {
            meta.start = new_block + meta.start.distance_from(delta_base);
        }
        self.block = new_block;
        self.capacity = self.heap.payload_len(new_block)?;
        self.relocations += 1;
        Ok(())
    }
}

impl PersistentStack for VecStack {
    fn kind(&self) -> StackKind {
        StackKind::Vec
    }

    fn push(&mut self, func_id: u64, args: &[u8]) -> Result<(), PError> {
        let need = ORDINARY_OVERHEAD + args.len() as u64;
        let used = self.used_bytes();
        if used + need > self.capacity {
            let new_cap = (self.capacity * 2).max(used + need).max(MIN_VEC_CAPACITY);
            self.relocate(new_cap)?;
        }
        let new_start = self.top().end();
        let buf = encode_ordinary(func_id, args, MARKER_STACK_END)?;
        self.pmem.write(new_start, &buf)?;
        self.pmem.flush(new_start, buf.len())?;
        let old_marker = self.top().marker_off();
        self.pmem.write_u8(old_marker, MARKER_FRAME_END)?;
        self.pmem.flush(old_marker, 1)?;
        self.frames.push(FrameMeta {
            start: new_start,
            func_id,
            args_len: args.len() as u32,
        });
        Ok(())
    }

    fn pop(&mut self) -> Result<(), PError> {
        if self.frames.len() < 2 {
            return Err(PError::StackEmpty);
        }
        let penult = self.frames[self.frames.len() - 2];
        self.pmem.write_u8(penult.marker_off(), MARKER_STACK_END)?;
        self.pmem.flush(penult.marker_off(), 1)?;
        self.frames.pop();
        if self.shrink {
            let used = self.used_bytes();
            if self.capacity > SHRINK_RATIO * used && self.capacity / 2 >= MIN_VEC_CAPACITY {
                self.relocate((self.capacity / 2).max(used))?;
            }
        }
        Ok(())
    }

    fn frame_count(&self) -> usize {
        self.frames.len()
    }

    fn frame_record(&self, index: usize) -> Result<FrameRecord, PError> {
        let meta = self.meta(index)?;
        Ok(FrameRecord {
            func_id: meta.func_id,
            args: crate::frame::read_args(&self.pmem, meta)?,
        })
    }

    fn set_ret(&mut self, index: usize, slot: ReturnSlot) -> Result<(), PError> {
        let meta = *self.meta(index)?;
        write_ret_slot(&self.pmem, &meta, slot)
    }

    fn ret(&self, index: usize) -> Result<ReturnSlot, PError> {
        let meta = self.meta(index)?;
        read_ret_slot(&self.pmem, meta)
    }

    fn check_consistency(&self) -> Result<(), PError> {
        let block = POffset::new(self.pmem.read_u64(self.hdr + 8u64)?);
        if block != self.block {
            return Err(PError::CorruptStack(format!(
                "persistent block pointer {block} disagrees with handle {}",
                self.block
            )));
        }
        let walked = walk_contiguous(&self.pmem, self.block, self.block + self.capacity)?;
        if walked != self.frames {
            return Err(PError::CorruptStack(format!(
                "persistent walk found {} frames, volatile index has {}",
                walked.len(),
                self.frames.len()
            )));
        }
        Ok(())
    }

    fn used_bytes(&self) -> u64 {
        self.top().end().get() - self.block.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_nvram::{FailPlan, PMemBuilder};

    fn setup(initial: u64) -> (PMem, PHeap, VecStack) {
        let pmem = PMemBuilder::new().len(1 << 18).build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(64), (1 << 18) - 64).unwrap();
        let s = VecStack::format(pmem.clone(), heap.clone(), POffset::new(0), initial).unwrap();
        (pmem, heap, s)
    }

    #[test]
    fn push_pop_round_trip() {
        let (_, _, mut s) = setup(128);
        s.push(1, b"one").unwrap();
        s.push(2, b"two").unwrap();
        assert_eq!(s.depth(), 2);
        s.check_consistency().unwrap();
        s.pop().unwrap();
        assert_eq!(s.frame_record(1).unwrap().args, b"one");
        s.check_consistency().unwrap();
    }

    #[test]
    fn growth_preserves_frames() {
        let (_, _, mut s) = setup(64);
        for i in 0..64u64 {
            s.push(i, &i.to_le_bytes()).unwrap();
        }
        assert!(s.relocations() > 0, "small initial capacity must grow");
        assert_eq!(s.depth(), 64);
        for i in 0..64u64 {
            let rec = s.frame_record(1 + i as usize).unwrap();
            assert_eq!(rec.func_id, i);
            assert_eq!(rec.args, i.to_le_bytes());
        }
        s.check_consistency().unwrap();
    }

    #[test]
    fn shrink_happens_after_mass_pop() {
        let (_, _, mut s) = setup(64);
        for i in 0..64u64 {
            s.push(i, &[0u8; 40]).unwrap();
        }
        let grown = s.capacity();
        for _ in 0..64 {
            s.pop().unwrap();
        }
        assert!(
            s.capacity() < grown,
            "capacity {} should shrink below {grown}",
            s.capacity()
        );
        s.check_consistency().unwrap();
    }

    #[test]
    fn shrink_can_be_disabled() {
        let (_, _, mut s) = setup(64);
        s.set_shrink(false);
        for i in 0..64u64 {
            s.push(i, &[0u8; 40]).unwrap();
        }
        let grown = s.capacity();
        for _ in 0..64 {
            s.pop().unwrap();
        }
        assert_eq!(s.capacity(), grown);
    }

    #[test]
    fn reopen_after_crash_sees_stack() {
        let (pmem, _, mut s) = setup(64);
        for i in 0..32u64 {
            s.push(i, b"payload").unwrap();
        }
        pmem.crash_now(0, 0.0);
        let pmem2 = pmem.reopen().unwrap();
        let heap2 = PHeap::open(pmem2.clone(), POffset::new(64)).unwrap();
        let s2 = VecStack::open(pmem2, heap2, POffset::new(0)).unwrap();
        assert_eq!(s2.depth(), 32);
        assert_eq!(s2.frame_record(32).unwrap().func_id, 31);
        s2.check_consistency().unwrap();
    }

    #[test]
    fn crash_point_enumeration_growth_push_is_atomic() {
        // The growth path contains the copy and the pointer swing; a
        // crash anywhere inside must leave either the old or the new
        // state, never a torn stack.
        let probe = || {
            let (pmem, heap, mut s) = setup(64);
            for i in 0..3u64 {
                s.push(i, &[0u8; 8]).unwrap();
            }
            (pmem, heap, s)
        };
        let (pmem, _, mut s) = probe();
        let e0 = pmem.events();
        s.push(99, &[7u8; 64]).unwrap(); // forces relocation
        let total = pmem.events() - e0;
        assert!(total > 4, "relocation path should have many events");

        for k in 0..total {
            let (pmem, _, mut s) = probe();
            pmem.arm_failpoint(FailPlan::after_events(k).with_survivors(k, 0.5));
            let err = s.push(99, &[7u8; 64]).unwrap_err();
            assert!(err.is_crash(), "event {k}");
            let pmem2 = pmem.reopen().unwrap();
            let heap2 = PHeap::open(pmem2.clone(), POffset::new(64)).unwrap();
            let s2 = VecStack::open(pmem2, heap2, POffset::new(0))
                .unwrap_or_else(|e| panic!("reopen failed after crash at event {k}: {e}"));
            assert!(
                s2.depth() == 3 || s2.depth() == 4,
                "crash at event {k} left depth {}",
                s2.depth()
            );
            if s2.depth() == 4 {
                let rec = s2.frame_record(4).unwrap();
                assert_eq!(rec.func_id, 99);
                assert_eq!(rec.args, vec![7u8; 64]);
            }
            // Old frames intact in every outcome.
            for i in 0..3u64 {
                assert_eq!(s2.frame_record(1 + i as usize).unwrap().func_id, i);
            }
            s2.check_consistency().unwrap();
        }
    }

    #[test]
    fn header_must_be_aligned() {
        let pmem = PMemBuilder::new().len(1 << 16).build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(64), (1 << 16) - 64).unwrap();
        assert!(matches!(
            VecStack::format(pmem, heap, POffset::new(3), 64),
            Err(PError::InvalidConfig(_))
        ));
    }

    #[test]
    fn open_rejects_bad_magic() {
        let pmem = PMemBuilder::new().len(1 << 16).build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(64), (1 << 16) - 64).unwrap();
        assert!(matches!(
            VecStack::open(pmem, heap, POffset::new(0)),
            Err(PError::CorruptStack(_))
        ));
    }

    #[test]
    fn return_slots_survive_relocation() {
        let (_, _, mut s) = setup(64);
        s.push(1, b"parent").unwrap();
        s.set_ret(1, ReturnSlot::Value(*b"EIGHTbyt")).unwrap();
        for i in 0..32u64 {
            s.push(10 + i, &[0u8; 32]).unwrap();
        }
        assert!(s.relocations() > 0);
        assert_eq!(s.ret(1).unwrap(), ReturnSlot::Value(*b"EIGHTbyt"));
    }

    #[test]
    fn empty_pop_is_rejected() {
        let (_, _, mut s) = setup(64);
        assert!(matches!(s.pop(), Err(PError::StackEmpty)));
    }
}
