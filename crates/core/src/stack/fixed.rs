//! Fixed-capacity contiguous persistent stack (§3.3–3.4 of the paper).

use pstack_nvram::{PMem, POffset};

use crate::frame::{
    encode_ordinary, FrameMeta, MARKER_FRAME_END, MARKER_STACK_END, ORDINARY_OVERHEAD,
};
use crate::registry::DUMMY_FUNC_ID;
use crate::stack::{
    read_ret_slot, walk_contiguous, write_ret_slot, FrameRecord, PersistentStack, ReturnSlot,
    StackKind,
};
use crate::PError;

/// Controls which of the paper's two flushing invariants (§3.4, Fig. 6)
/// the stack honours. **Production code always uses the default** (both
/// on); the off switches exist so tests can demonstrate that each
/// invariant is load-bearing — disabling either one makes recovery lose
/// or miss frames, exactly as Fig. 6 predicts (experiment E4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushPolicy {
    /// Invariant 1: flush the new frame **before** moving the stack end
    /// forward. If violated, a crash can persist the marker flip but
    /// lose the frame it points at (Fig. 6a).
    pub flush_frame_before_advance: bool,
    /// Invariant 2: flush every end-marker flip immediately. If
    /// violated, a crash can lose the flip, so recovery never sees the
    /// topmost frame (Fig. 6b).
    pub flush_markers: bool,
}

impl Default for FlushPolicy {
    fn default() -> Self {
        FlushPolicy {
            flush_frame_before_advance: true,
            flush_markers: true,
        }
    }
}

/// A persistent stack in a contiguous NVRAM region of constant size.
///
/// # Example
///
/// ```
/// use pstack_nvram::{PMemBuilder, POffset};
/// use pstack_core::stack::{FixedStack, PersistentStack};
///
/// # fn main() -> Result<(), pstack_core::PError> {
/// let pmem = PMemBuilder::new().len(4096).build_in_memory();
/// let mut stack = FixedStack::format(pmem, POffset::new(0), 4096)?;
/// stack.push(42, b"args")?;
/// assert_eq!(stack.depth(), 1);
/// assert_eq!(stack.frame_record(1)?.func_id, 42);
/// stack.pop()?;
/// assert_eq!(stack.depth(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FixedStack {
    pmem: PMem,
    base: POffset,
    capacity: u64,
    /// Volatile frame index, including the dummy frame at position 0.
    /// Rebuilt from NVRAM by [`FixedStack::open`].
    frames: Vec<FrameMeta>,
    policy: FlushPolicy,
}

impl FixedStack {
    /// Formats a fresh stack over `[base, base + capacity)`, writing
    /// and flushing the dummy frame the paper requires at the bottom.
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] if the capacity cannot hold the dummy
    /// frame, or a propagated NVRAM error.
    pub fn format(pmem: PMem, base: POffset, capacity: u64) -> Result<Self, PError> {
        if capacity < ORDINARY_OVERHEAD {
            return Err(PError::InvalidConfig(format!(
                "stack capacity {capacity} cannot hold the dummy frame"
            )));
        }
        let dummy = encode_ordinary(DUMMY_FUNC_ID, &[], MARKER_STACK_END)?;
        pmem.write(base, &dummy)?;
        pmem.flush(base, dummy.len())?;
        let frames = vec![FrameMeta {
            start: base,
            func_id: DUMMY_FUNC_ID,
            args_len: 0,
        }];
        Ok(FixedStack {
            pmem,
            base,
            capacity,
            frames,
            policy: FlushPolicy::default(),
        })
    }

    /// Opens a previously formatted stack, rebuilding the volatile
    /// frame index from the persistent bytes (this is what a recovery
    /// boot does).
    ///
    /// # Errors
    ///
    /// [`PError::CorruptStack`] if the bytes do not parse as a dummy
    /// frame followed by well-formed frames ending in a stack-end
    /// marker within `capacity`.
    pub fn open(pmem: PMem, base: POffset, capacity: u64) -> Result<Self, PError> {
        let frames = walk_contiguous(&pmem, base, base + capacity)?;
        let first = frames.first().expect("walk returns at least one frame");
        if first.func_id != DUMMY_FUNC_ID {
            return Err(PError::CorruptStack(format!(
                "bottom frame at {base} is not the dummy frame (func_id {:#x})",
                first.func_id
            )));
        }
        Ok(FixedStack {
            pmem,
            base,
            capacity,
            frames,
            policy: FlushPolicy::default(),
        })
    }

    /// Replaces the flush policy. Only tests should ever weaken it; see
    /// [`FlushPolicy`].
    pub fn set_flush_policy(&mut self, policy: FlushPolicy) {
        self.policy = policy;
    }

    /// The stack's base offset.
    #[must_use]
    pub fn base(&self) -> POffset {
        self.base
    }

    /// The stack's capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    fn top(&self) -> &FrameMeta {
        self.frames.last().expect("dummy frame always present")
    }

    fn meta(&self, index: usize) -> Result<&FrameMeta, PError> {
        self.frames.get(index).ok_or_else(|| {
            PError::CorruptStack(format!(
                "frame index {index} out of range (frame count {})",
                self.frames.len()
            ))
        })
    }
}

impl PersistentStack for FixedStack {
    fn kind(&self) -> StackKind {
        StackKind::Fixed
    }

    fn push(&mut self, func_id: u64, args: &[u8]) -> Result<(), PError> {
        let new_start = self.top().end();
        let buf = encode_ordinary(func_id, args, MARKER_STACK_END)?;
        let limit = self.base + self.capacity;
        if new_start.get() + buf.len() as u64 > limit.get() {
            return Err(PError::StackOverflow {
                needed: buf.len() as u64,
                available: limit.get().saturating_sub(new_start.get()),
            });
        }
        // Step 1 (Fig. 3b): write the frame after the stack-end marker.
        // It is invisible until the marker flip, so a crash here (even
        // one that persists the frame partially) leaves the stack
        // logically unchanged.
        self.pmem.write(new_start, &buf)?;
        if self.policy.flush_frame_before_advance {
            self.pmem.flush(new_start, buf.len())?;
        }
        // Step 2 (Fig. 3c): move the stack end forward — flip the old
        // top's marker 0x1 → 0x0. One byte, one line: crash-atomic.
        let old_marker = self.top().marker_off();
        self.pmem.write_u8(old_marker, MARKER_FRAME_END)?;
        if self.policy.flush_markers {
            self.pmem.flush(old_marker, 1)?;
        }
        self.frames.push(FrameMeta {
            start: new_start,
            func_id,
            args_len: args.len() as u32,
        });
        Ok(())
    }

    fn pop(&mut self) -> Result<(), PError> {
        if self.frames.len() < 2 {
            return Err(PError::StackEmpty);
        }
        // Move the stack end backward (Fig. 4): flip the penultimate
        // frame's marker 0x0 → 0x1. The popped frame becomes invalid
        // data past the stack end.
        let penult = self.frames[self.frames.len() - 2];
        self.pmem.write_u8(penult.marker_off(), MARKER_STACK_END)?;
        if self.policy.flush_markers {
            self.pmem.flush(penult.marker_off(), 1)?;
        }
        self.frames.pop();
        Ok(())
    }

    fn frame_count(&self) -> usize {
        self.frames.len()
    }

    fn frame_record(&self, index: usize) -> Result<FrameRecord, PError> {
        let meta = self.meta(index)?;
        Ok(FrameRecord {
            func_id: meta.func_id,
            args: crate::frame::read_args(&self.pmem, meta)?,
        })
    }

    fn set_ret(&mut self, index: usize, slot: ReturnSlot) -> Result<(), PError> {
        let meta = *self.meta(index)?;
        write_ret_slot(&self.pmem, &meta, slot)
    }

    fn ret(&self, index: usize) -> Result<ReturnSlot, PError> {
        let meta = self.meta(index)?;
        read_ret_slot(&self.pmem, meta)
    }

    fn check_consistency(&self) -> Result<(), PError> {
        let walked = walk_contiguous(&self.pmem, self.base, self.base + self.capacity)?;
        if walked != self.frames {
            return Err(PError::CorruptStack(format!(
                "persistent walk found {} frames, volatile index has {}",
                walked.len(),
                self.frames.len()
            )));
        }
        Ok(())
    }

    fn used_bytes(&self) -> u64 {
        self.top().end().get() - self.base.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_nvram::{FailPlan, MemError, PMemBuilder};

    fn stack(cap: u64) -> (PMem, FixedStack) {
        let pmem = PMemBuilder::new().len(cap as usize + 64).build_in_memory();
        let s = FixedStack::format(pmem.clone(), POffset::new(0), cap).unwrap();
        (pmem, s)
    }

    #[test]
    fn push_pop_depth() {
        let (_, mut s) = stack(1024);
        assert_eq!(s.depth(), 0);
        s.push(1, b"a").unwrap();
        s.push(2, b"bb").unwrap();
        assert_eq!(s.depth(), 2);
        assert_eq!(s.frame_record(2).unwrap().func_id, 2);
        assert_eq!(s.frame_record(2).unwrap().args, b"bb");
        s.pop().unwrap();
        assert_eq!(s.depth(), 1);
        assert_eq!(s.frame_record(1).unwrap().func_id, 1);
        s.check_consistency().unwrap();
    }

    #[test]
    fn pop_on_empty_is_rejected_and_dummy_survives() {
        let (_, mut s) = stack(1024);
        assert!(matches!(s.pop(), Err(PError::StackEmpty)));
        s.push(1, &[]).unwrap();
        s.pop().unwrap();
        assert!(matches!(s.pop(), Err(PError::StackEmpty)));
        s.check_consistency().unwrap();
    }

    #[test]
    fn overflow_reports_sizes() {
        let (_, mut s) = stack(64);
        // Dummy takes 23 bytes; a frame with 30-byte args takes 53 and
        // cannot fit in the remaining 41.
        match s.push(1, &[0u8; 30]) {
            Err(PError::StackOverflow { needed, available }) => {
                assert_eq!(needed, 53);
                assert_eq!(available, 41);
            }
            other => panic!("expected overflow, got {other:?}"),
        }
        // The failed push must not have changed the stack.
        assert_eq!(s.depth(), 0);
        s.check_consistency().unwrap();
    }

    #[test]
    fn open_rebuilds_after_clean_crash() {
        let (pmem, mut s) = stack(1024);
        s.push(7, b"seven").unwrap();
        s.push(8, b"eight").unwrap();
        pmem.crash_now(0, 0.0);
        let pmem = pmem.reopen().unwrap();
        let s2 = FixedStack::open(pmem, POffset::new(0), 1024).unwrap();
        assert_eq!(s2.depth(), 2);
        assert_eq!(s2.frame_record(1).unwrap().args, b"seven");
        assert_eq!(s2.frame_record(2).unwrap().args, b"eight");
        s2.check_consistency().unwrap();
    }

    #[test]
    fn open_after_pop_sees_popped_frame_gone() {
        let (pmem, mut s) = stack(1024);
        s.push(7, b"x").unwrap();
        s.push(8, b"y").unwrap();
        s.pop().unwrap();
        pmem.crash_now(0, 0.0);
        let pmem = pmem.reopen().unwrap();
        let s2 = FixedStack::open(pmem, POffset::new(0), 1024).unwrap();
        assert_eq!(s2.depth(), 1);
        assert_eq!(s2.frame_record(1).unwrap().func_id, 7);
    }

    #[test]
    fn open_rejects_unformatted_region() {
        let pmem = PMemBuilder::new().len(1024).build_in_memory();
        assert!(matches!(
            FixedStack::open(pmem, POffset::new(0), 1024),
            Err(PError::CorruptStack(_))
        ));
    }

    #[test]
    fn open_rejects_missing_dummy() {
        let pmem = PMemBuilder::new().len(1024).build_in_memory();
        // A well-formed frame that is not the dummy.
        let buf = encode_ordinary(5, b"zz", MARKER_STACK_END).unwrap();
        pmem.write(POffset::new(0), &buf).unwrap();
        assert!(matches!(
            FixedStack::open(pmem, POffset::new(0), 1024),
            Err(PError::CorruptStack(_))
        ));
    }

    #[test]
    fn return_slot_round_trip() {
        let (_, mut s) = stack(1024);
        s.push(1, &[]).unwrap();
        assert_eq!(s.ret(1).unwrap(), ReturnSlot::Empty);
        s.set_ret(1, ReturnSlot::Value([9u8; 8])).unwrap();
        assert_eq!(s.ret(1).unwrap(), ReturnSlot::Value([9u8; 8]));
        s.set_ret(1, ReturnSlot::Unit).unwrap();
        assert_eq!(s.ret(1).unwrap(), ReturnSlot::Unit);
        s.set_ret(1, ReturnSlot::Empty).unwrap();
        assert_eq!(s.ret(1).unwrap(), ReturnSlot::Empty);
    }

    #[test]
    fn return_slot_survives_crash_when_flushed() {
        let (pmem, mut s) = stack(1024);
        s.push(1, &[]).unwrap();
        s.set_ret(0, ReturnSlot::Value(*b"RESULT!!")).unwrap();
        pmem.crash_now(0, 0.0);
        let pmem = pmem.reopen().unwrap();
        let s2 = FixedStack::open(pmem, POffset::new(0), 1024).unwrap();
        assert_eq!(s2.ret(0).unwrap(), ReturnSlot::Value(*b"RESULT!!"));
    }

    #[test]
    fn out_of_range_frame_index() {
        let (_, mut s) = stack(1024);
        assert!(s.frame_record(1).is_err());
        assert!(s.ret(5).is_err());
        assert!(s.set_ret(5, ReturnSlot::Unit).is_err());
    }

    #[test]
    fn deep_push_pop_round_trip() {
        let (_, mut s) = stack(64 * 1024);
        for i in 0..500u64 {
            s.push(i, &i.to_le_bytes()).unwrap();
        }
        assert_eq!(s.depth(), 500);
        s.check_consistency().unwrap();
        for i in (0..500u64).rev() {
            assert_eq!(s.frame_record(s.top_index()).unwrap().func_id, i);
            s.pop().unwrap();
        }
        assert_eq!(s.depth(), 0);
        s.check_consistency().unwrap();
    }

    #[test]
    fn crash_before_marker_flip_hides_partial_frame() {
        // E3: a long frame (args far larger than one cache line) is cut
        // by a crash mid-flush. The stack must recover to its pre-push
        // state: the partial frame sits after the stack-end marker.
        let (pmem, mut s) = stack(8 * 1024);
        s.push(1, b"base").unwrap();
        // Frame writing is 1 write event; its flush covers multiple
        // lines. Crash after 3 events = during the frame flush, before
        // the marker flip.
        pmem.arm_failpoint(FailPlan::after_events(2));
        let err = s.push(2, &[0xEE; 500]).unwrap_err();
        assert!(err.is_crash());
        pmem.crash_now(7, 0.5);
        let pmem = pmem.reopen().unwrap();
        let s2 = FixedStack::open(pmem, POffset::new(0), 8 * 1024).unwrap();
        assert_eq!(s2.depth(), 1, "partial frame must be invisible");
        assert_eq!(s2.frame_record(1).unwrap().args, b"base");
        s2.check_consistency().unwrap();
    }

    #[test]
    fn crash_point_enumeration_push_is_atomic() {
        // E1: for every persistence event inside push, a crash leaves
        // the stack in either the pre-push or the post-push state.
        let probe = || stack(4 * 1024);
        let (pmem, mut s) = probe();
        let e0 = pmem.events();
        s.push(9, &[0xAB; 100]).unwrap();
        let total = pmem.events() - e0;
        assert!(total >= 3, "write frame, flush frame, write+flush marker");

        for k in 0..total {
            for prob in [0.0, 0.5, 1.0] {
                let (pmem, mut s) = probe();
                pmem.arm_failpoint(FailPlan::after_events(k).with_survivors(k, prob));
                let err = s.push(9, &[0xAB; 100]).unwrap_err();
                assert!(err.is_crash());
                pmem.crash_now(k, prob);
                let pmem = pmem.reopen().unwrap();
                let s2 = FixedStack::open(pmem, POffset::new(0), 4 * 1024)
                    .unwrap_or_else(|e| panic!("crash at event {k}, prob {prob}: {e}"));
                assert!(
                    s2.depth() == 0 || s2.depth() == 1,
                    "crash at event {k} left depth {}",
                    s2.depth()
                );
                if s2.depth() == 1 {
                    // If the push linearized, the frame must be complete.
                    let rec = s2.frame_record(1).unwrap();
                    assert_eq!(rec.func_id, 9);
                    assert_eq!(rec.args, vec![0xAB; 100]);
                }
                s2.check_consistency().unwrap();
            }
        }
    }

    #[test]
    fn crash_point_enumeration_pop_is_atomic() {
        // E2: same exhaustive treatment for pop.
        let probe = || {
            let (pmem, mut s) = stack(4 * 1024);
            s.push(1, b"one").unwrap();
            s.push(2, b"two").unwrap();
            (pmem, s)
        };
        let (pmem, mut s) = probe();
        let e0 = pmem.events();
        s.pop().unwrap();
        let total = pmem.events() - e0;
        assert_eq!(total, 2, "pop is one marker write plus one flush");

        for k in 0..total {
            let (pmem, mut s) = probe();
            pmem.arm_failpoint(FailPlan::after_events(k));
            let err = s.pop().unwrap_err();
            assert!(err.is_crash());
            pmem.crash_now(k, 0.5);
            let pmem = pmem.reopen().unwrap();
            let s2 = FixedStack::open(pmem, POffset::new(0), 4 * 1024).unwrap();
            assert!(
                s2.depth() == 1 || s2.depth() == 2,
                "crash at event {k} left depth {}",
                s2.depth()
            );
            s2.check_consistency().unwrap();
        }
    }

    #[test]
    fn violating_invariant_1_loses_frame() {
        // E4 / Fig. 6a: skip the frame flush before the marker flip.
        // With an adversarial crash that persists the marker's line but
        // drops the frame's lines, recovery sees garbage where the top
        // frame should be.
        let (pmem, mut s) = stack(4 * 1024);
        s.push(1, b"anchor").unwrap();
        s.set_flush_policy(FlushPolicy {
            flush_frame_before_advance: false,
            flush_markers: true,
        });
        // The new frame's bytes start past the old top frame. With args
        // of 200 bytes the frame spans lines that hold no other data, so
        // survival_prob 0 drops the frame but the marker flush already
        // persisted the flip.
        s.push(2, &[0xCD; 200]).unwrap();
        pmem.crash_now(0, 0.0);
        let pmem = pmem.reopen().unwrap();
        let result = FixedStack::open(pmem, POffset::new(0), 4 * 1024);
        // The flip is durable but the frame is not: the walk must fail
        // (zeros where frame 2 should be) — the frame was lost.
        assert!(
            matches!(result, Err(PError::CorruptStack(_))),
            "violating invariant 1 must corrupt recovery, got {result:?}"
        );
    }

    #[test]
    fn violating_invariant_2_misses_frame() {
        // E4 / Fig. 6b: skip the marker flush. The frame itself is
        // durable but the flip is not, so after a crash recovery does
        // not consider the new top frame part of the stack.
        let (pmem, mut s) = stack(4 * 1024);
        s.push(1, b"anchor").unwrap();
        s.set_flush_policy(FlushPolicy {
            flush_frame_before_advance: true,
            flush_markers: false,
        });
        s.push(2, b"will-be-missed").unwrap();
        pmem.crash_now(0, 0.0);
        let pmem = pmem.reopen().unwrap();
        let s2 = FixedStack::open(pmem, POffset::new(0), 4 * 1024).unwrap();
        assert_eq!(
            s2.depth(),
            1,
            "violating invariant 2 must make recovery miss frame 2"
        );
        assert_eq!(s2.frame_record(1).unwrap().func_id, 1);
    }

    #[test]
    fn marker_flip_is_single_line_flush() {
        // E13: the linearization step of push and pop persists exactly
        // one cache line.
        let (pmem, mut s) = stack(4 * 1024);
        s.push(1, b"x").unwrap();
        let before = pmem.stats().snapshot();
        s.pop().unwrap();
        let d = pmem.stats().snapshot() - before;
        assert_eq!(d.lines_persisted, 1);
        assert_eq!(d.writes, 1);
        assert_eq!(d.bytes_written, 1);
    }

    #[test]
    fn push_flush_cost_scales_with_frame_lines() {
        let (pmem, mut s) = stack(16 * 1024);
        let before = pmem.stats().snapshot();
        s.push(1, &[0u8; 256]).unwrap();
        let d = pmem.stats().snapshot() - before;
        // 23 + 256 = 279 bytes spanning at least 5 lines, plus 1 marker line.
        assert!(d.lines_persisted >= 6, "persisted {}", d.lines_persisted);
        assert_eq!(d.flush_calls, 2, "frame flush + marker flush");
    }

    #[test]
    fn crashed_stack_propagates_crash_errors() {
        let (pmem, mut s) = stack(1024);
        pmem.crash_now(0, 0.0);
        assert!(matches!(
            s.push(1, &[]),
            Err(PError::Mem(MemError::Crashed))
        ));
    }
}
