//! Persistent stack variants (§3 and Appendix A of the paper).
//!
//! Three layouts implement the shared [`PersistentStack`] trait:
//!
//! * [`FixedStack`] — a contiguous NVRAM region of constant capacity
//!   (§3.3), the layout the paper's body describes;
//! * [`VecStack`] — a dynamically resizable array (Appendix A.2): one
//!   persistent pointer to a heap block, relocated with a copy and an
//!   atomic 8-byte pointer swing when capacity changes;
//! * [`ListStack`] — a linked list of heap blocks (Appendix A.3) where
//!   pointer frames (`0xB`) chain blocks together.
//!
//! All variants linearize a push at the `0x1 → 0x0` end-marker flip of
//! the previous top frame, and a pop at the `0x0 → 0x1` flip of the
//! penultimate frame — single-byte flushes that are crash-atomic.
//!
//! Frames are addressed by *index*: index 0 is the dummy frame that the
//! paper introduces so that push and pop always have a predecessor
//! frame to flip; indices `1..=depth` are live invocation frames.

mod dump;
mod fixed;
mod list;
mod vec;

pub use dump::dump_stack;
pub use fixed::{FixedStack, FlushPolicy};
pub use list::ListStack;
pub use vec::VecStack;

use pstack_nvram::{PMem, POffset};

use crate::frame::{FrameMeta, RET_COMPLETED_UNIT, RET_COMPLETED_VALUE, RET_EMPTY};
use crate::PError;

/// Identifies a stack layout; persisted in the runtime superblock so a
/// recovery boot opens stacks with the layout they were created with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StackKind {
    /// Contiguous fixed-capacity region (§3.3).
    #[default]
    Fixed,
    /// Dynamically resizable array (Appendix A.2).
    Vec,
    /// Linked list of blocks (Appendix A.3).
    List,
}

impl StackKind {
    /// Encodes the kind as one byte for the superblock.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        match self {
            StackKind::Fixed => 0,
            StackKind::Vec => 1,
            StackKind::List => 2,
        }
    }

    /// Decodes a kind from its superblock byte.
    ///
    /// # Errors
    ///
    /// [`PError::CorruptStack`] for an unknown encoding.
    pub fn from_u8(v: u8) -> Result<Self, PError> {
        match v {
            0 => Ok(StackKind::Fixed),
            1 => Ok(StackKind::Vec),
            2 => Ok(StackKind::List),
            other => Err(PError::CorruptStack(format!(
                "unknown stack kind encoding {other}"
            ))),
        }
    }
}

impl std::fmt::Display for StackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StackKind::Fixed => write!(f, "fixed"),
            StackKind::Vec => write!(f, "vec"),
            StackKind::List => write!(f, "list"),
        }
    }
}

/// A copied-out view of one frame: which function it belongs to and the
/// serialized arguments it was invoked with. This is what recovery
/// hands to the function's recover dual.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameRecord {
    /// Registered id of the invoked function.
    pub func_id: u64,
    /// The serialized argument blob.
    pub args: Vec<u8>,
}

/// Content of a frame's return slot (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReturnSlot {
    /// No child completion recorded since the slot was last cleared.
    #[default]
    Empty,
    /// The most recent child completed and returned no value.
    Unit,
    /// The most recent child completed and returned these 8 bytes.
    Value([u8; 8]),
}

impl ReturnSlot {
    /// The child-completion view: `None` if no completion is recorded.
    #[must_use]
    pub fn completion(self) -> Option<Option<[u8; 8]>> {
        match self {
            ReturnSlot::Empty => None,
            ReturnSlot::Unit => Some(None),
            ReturnSlot::Value(v) => Some(Some(v)),
        }
    }
}

/// The persistent program stack of one worker thread.
///
/// Implementations are **not** internally synchronized: the paper gives
/// each thread its own stack, and the runtime upholds that. (They are
/// `Send`, so a recovery thread may adopt another thread's stack.)
pub trait PersistentStack: Send {
    /// The layout of this stack.
    fn kind(&self) -> StackKind;

    /// Pushes a frame for an invocation of `func_id` with serialized
    /// `args`. Linearizes at the end-marker flip of the previous top
    /// frame; a crash before that flip leaves the stack logically
    /// unchanged (the partially written frame is invisible).
    ///
    /// # Errors
    ///
    /// [`PError::StackOverflow`] (fixed layout), heap exhaustion
    /// (unbounded layouts), or a propagated crash.
    fn push(&mut self, func_id: u64, args: &[u8]) -> Result<(), PError>;

    /// Pops the top frame by flipping the penultimate frame's marker to
    /// stack-end. The dummy frame cannot be popped.
    ///
    /// # Errors
    ///
    /// [`PError::StackEmpty`] if only the dummy frame remains, or a
    /// propagated crash.
    fn pop(&mut self) -> Result<(), PError>;

    /// Number of frames including the dummy frame (always ≥ 1).
    fn frame_count(&self) -> usize;

    /// Copies out the function id and arguments of frame `index`
    /// (0 = dummy).
    ///
    /// # Errors
    ///
    /// [`PError::CorruptStack`] if `index` is out of range.
    fn frame_record(&self, index: usize) -> Result<FrameRecord, PError>;

    /// Writes and flushes the return slot of frame `index`.
    ///
    /// # Errors
    ///
    /// Out-of-range index or a propagated crash.
    fn set_ret(&mut self, index: usize, slot: ReturnSlot) -> Result<(), PError>;

    /// Reads the return slot of frame `index`.
    ///
    /// # Errors
    ///
    /// Out-of-range index or a propagated crash.
    fn ret(&self, index: usize) -> Result<ReturnSlot, PError>;

    /// Re-walks the persistent bytes and verifies they describe exactly
    /// the frames this handle believes exist.
    ///
    /// # Errors
    ///
    /// [`PError::CorruptStack`] describing the first mismatch.
    fn check_consistency(&self) -> Result<(), PError>;

    /// Persistent bytes currently occupied by live frames (diagnostic).
    fn used_bytes(&self) -> u64;

    /// Number of live invocation frames (excluding the dummy frame).
    fn depth(&self) -> usize {
        self.frame_count() - 1
    }

    /// Index of the top frame (the dummy frame when the stack is empty).
    fn top_index(&self) -> usize {
        self.frame_count() - 1
    }
}

/// Shared implementation: write and flush a frame's return slot.
pub(crate) fn write_ret_slot(
    pmem: &PMem,
    meta: &FrameMeta,
    slot: ReturnSlot,
) -> Result<(), PError> {
    match slot {
        ReturnSlot::Empty => {
            pmem.write_u8(meta.ret_flag_off(), RET_EMPTY)?;
            pmem.flush(meta.ret_flag_off(), 1)?;
        }
        ReturnSlot::Unit => {
            pmem.write_u8(meta.ret_flag_off(), RET_COMPLETED_UNIT)?;
            pmem.flush(meta.ret_flag_off(), 1)?;
        }
        ReturnSlot::Value(v) => {
            // Value first, then the flag: if the crash splits the two
            // writes the flag still says "empty" and recovery re-runs
            // the child rather than trusting a torn value.
            pmem.write(meta.ret_val_off(), &v)?;
            pmem.flush(meta.ret_val_off(), 8)?;
            pmem.write_u8(meta.ret_flag_off(), RET_COMPLETED_VALUE)?;
            pmem.flush(meta.ret_flag_off(), 1)?;
        }
    }
    Ok(())
}

/// Shared implementation: read a frame's return slot.
pub(crate) fn read_ret_slot(pmem: &PMem, meta: &FrameMeta) -> Result<ReturnSlot, PError> {
    let flag = pmem.read_u8(meta.ret_flag_off())?;
    match flag {
        RET_EMPTY => Ok(ReturnSlot::Empty),
        RET_COMPLETED_UNIT => Ok(ReturnSlot::Unit),
        RET_COMPLETED_VALUE => {
            let mut v = [0u8; 8];
            pmem.read(meta.ret_val_off(), &mut v)?;
            Ok(ReturnSlot::Value(v))
        }
        other => Err(PError::CorruptStack(format!(
            "invalid return-slot flag {other:#x} in frame at {}",
            meta.start
        ))),
    }
}

/// Walks a contiguous run of ordinary frames starting at `start` until
/// a stack-end marker, bounds-checked by `limit`. Used by the fixed and
/// resizable-array layouts, and per block by the linked-list layout.
pub(crate) fn walk_contiguous(
    pmem: &PMem,
    start: POffset,
    limit: POffset,
) -> Result<Vec<FrameMeta>, PError> {
    let mut frames = Vec::new();
    let mut pos = start;
    loop {
        match crate::frame::parse_frame(pmem, pos, limit)? {
            crate::frame::ParsedFrame::Ordinary { meta, marker } => {
                pos = meta.end();
                frames.push(meta);
                if marker == crate::frame::MARKER_STACK_END {
                    return Ok(frames);
                }
            }
            crate::frame::ParsedFrame::Pointer { start, .. } => {
                return Err(PError::CorruptStack(format!(
                    "unexpected pointer frame at {start} in a contiguous stack"
                )));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_kind_round_trips() {
        for k in [StackKind::Fixed, StackKind::Vec, StackKind::List] {
            assert_eq!(StackKind::from_u8(k.as_u8()).unwrap(), k);
            assert!(!k.to_string().is_empty());
        }
        assert!(StackKind::from_u8(99).is_err());
    }

    #[test]
    fn return_slot_completion_view() {
        assert_eq!(ReturnSlot::Empty.completion(), None);
        assert_eq!(ReturnSlot::Unit.completion(), Some(None));
        assert_eq!(ReturnSlot::Value([1; 8]).completion(), Some(Some([1; 8])));
    }

    #[test]
    fn default_kind_is_fixed() {
        assert_eq!(StackKind::default(), StackKind::Fixed);
    }
}
