//! Persistent stack frame codec (§3.3 and Appendix A.3 of the paper).
//!
//! Every frame ends with a one-byte *end marker*: [`MARKER_STACK_END`]
//! (`0x1`) on the last frame of the stack, [`MARKER_FRAME_END`] (`0x0`)
//! on every other frame. Anything after the stack-end marker is invalid
//! data and is never interpreted — that is what makes partially written
//! frames harmless (Fig. 5 of the paper).
//!
//! Two frame kinds exist, distinguished by a one-byte preamble
//! (Appendix A.3): *ordinary* frames (`0xA`) describe one in-flight
//! function invocation; *pointer* frames (`0xB`) redirect the stack to
//! its next linked-list block. The fixed and resizable-array stack
//! variants only ever contain ordinary frames; they still carry the
//! preamble so all three variants share this codec (one byte per frame
//! of overhead — a documented deviation from the paper's minimal
//! layout).
//!
//! Ordinary frame layout (`23 + args_len` bytes):
//!
//! ```text
//! [0xA][func_id: u64][args_len: u32][args][ret_flag: u8][ret_val: 8B][marker: u8]
//! ```
//!
//! The `ret_flag`/`ret_val` pair is the frame's *return slot* (§4.2): a
//! completed child writes its small (≤ 8 byte) result into its parent's
//! slot and flushes it **before** the pop marker flip, so the value is
//! durable by the time the child's completion linearizes.
//!
//! Pointer frame layout (10 bytes):
//!
//! ```text
//! [0xB][next_block: u64][marker: u8]
//! ```

use pstack_nvram::{PMem, POffset};

use crate::PError;

/// End-marker value on the topmost (last) frame of a stack.
pub const MARKER_STACK_END: u8 = 0x1;

/// End-marker value on every frame except the topmost one.
pub const MARKER_FRAME_END: u8 = 0x0;

/// Preamble byte of an ordinary (function invocation) frame.
pub const PREAMBLE_ORDINARY: u8 = 0xA;

/// Preamble byte of a pointer frame redirecting to the next block.
pub const PREAMBLE_POINTER: u8 = 0xB;

/// Fixed bytes of an ordinary frame beyond its arguments.
pub const ORDINARY_OVERHEAD: u64 = 23;

/// Total length of a pointer frame.
pub const POINTER_FRAME_LEN: u64 = 10;

/// Maximum encodable argument length in bytes.
pub const MAX_ARGS_LEN: usize = 1 << 20;

/// Return-slot flag: no completed child recorded.
pub const RET_EMPTY: u8 = 0;
/// Return-slot flag: child completed and returned no value.
pub const RET_COMPLETED_UNIT: u8 = 1;
/// Return-slot flag: child completed and returned the 8-byte value.
pub const RET_COMPLETED_VALUE: u8 = 2;

/// Volatile metadata describing one ordinary frame in place.
///
/// Holds absolute offsets, so it becomes stale if the stack's block is
/// relocated (the resizable-array variant does this); stack
/// implementations rebase their indices on relocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameMeta {
    /// Offset of the frame's first byte (the preamble).
    pub start: POffset,
    /// Registered id of the invoked function.
    pub func_id: u64,
    /// Length of the serialized argument blob.
    pub args_len: u32,
}

impl FrameMeta {
    /// Total encoded length of the frame in bytes.
    #[must_use]
    pub fn total_len(&self) -> u64 {
        ORDINARY_OVERHEAD + u64::from(self.args_len)
    }

    /// Offset of the argument blob.
    #[must_use]
    pub fn args_off(&self) -> POffset {
        self.start + 13u64
    }

    /// Offset of the return-slot flag byte.
    #[must_use]
    pub fn ret_flag_off(&self) -> POffset {
        self.start + (13u64 + u64::from(self.args_len))
    }

    /// Offset of the 8-byte return-slot value.
    #[must_use]
    pub fn ret_val_off(&self) -> POffset {
        self.start + (14u64 + u64::from(self.args_len))
    }

    /// Offset of the end-marker byte.
    #[must_use]
    pub fn marker_off(&self) -> POffset {
        self.start + (self.total_len() - 1)
    }

    /// Offset of the first byte after the frame (where a pushed frame
    /// would begin).
    #[must_use]
    pub fn end(&self) -> POffset {
        self.start + self.total_len()
    }
}

/// Result of parsing one frame out of NVRAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsedFrame {
    /// An ordinary invocation frame and its end-marker value.
    Ordinary {
        /// Frame metadata (offsets and lengths).
        meta: FrameMeta,
        /// The end-marker byte as read from NVRAM.
        marker: u8,
    },
    /// A pointer frame redirecting to another block.
    Pointer {
        /// Offset of the pointer frame itself.
        start: POffset,
        /// Offset of the next block's payload.
        next_block: POffset,
        /// The end-marker byte as read from NVRAM.
        marker: u8,
    },
}

/// Encodes an ordinary frame into a fresh buffer, with an empty return
/// slot and the given end marker.
///
/// # Errors
///
/// [`PError::ArgsTooLong`] if `args` exceeds [`MAX_ARGS_LEN`].
pub fn encode_ordinary(func_id: u64, args: &[u8], marker: u8) -> Result<Vec<u8>, PError> {
    if args.len() > MAX_ARGS_LEN {
        return Err(PError::ArgsTooLong {
            len: args.len(),
            max: MAX_ARGS_LEN,
        });
    }
    let mut buf = Vec::with_capacity(ORDINARY_OVERHEAD as usize + args.len());
    buf.push(PREAMBLE_ORDINARY);
    buf.extend_from_slice(&func_id.to_le_bytes());
    buf.extend_from_slice(&(args.len() as u32).to_le_bytes());
    buf.extend_from_slice(args);
    buf.push(RET_EMPTY);
    buf.extend_from_slice(&[0u8; 8]);
    buf.push(marker);
    Ok(buf)
}

/// Encodes a pointer frame redirecting to `next_block`.
#[must_use]
pub fn encode_pointer(next_block: POffset, marker: u8) -> Vec<u8> {
    let mut buf = Vec::with_capacity(POINTER_FRAME_LEN as usize);
    buf.push(PREAMBLE_POINTER);
    buf.extend_from_slice(&next_block.get().to_le_bytes());
    buf.push(marker);
    buf
}

/// Parses the frame starting at `off`, bounds-checked against `limit`
/// (the first offset past the containing region or block).
///
/// # Errors
///
/// [`PError::CorruptStack`] if the preamble is unknown, a length field
/// is implausible, the frame overruns `limit`, or the marker byte is
/// neither [`MARKER_FRAME_END`] nor [`MARKER_STACK_END`].
pub fn parse_frame(pmem: &PMem, off: POffset, limit: POffset) -> Result<ParsedFrame, PError> {
    if off.get() >= limit.get() {
        return Err(PError::CorruptStack(format!(
            "frame at {off} starts at or past the region limit {limit}"
        )));
    }
    let preamble = pmem.read_u8(off)?;
    match preamble {
        PREAMBLE_ORDINARY => {
            if off.get() + ORDINARY_OVERHEAD > limit.get() {
                return Err(PError::CorruptStack(format!(
                    "ordinary frame at {off} overruns the limit {limit}"
                )));
            }
            let func_id = pmem.read_u64(off + 1u64)?;
            let args_len = pmem.read_u32(off + 9u64)?;
            if args_len as usize > MAX_ARGS_LEN {
                return Err(PError::CorruptStack(format!(
                    "frame at {off} claims {args_len} argument bytes"
                )));
            }
            let meta = FrameMeta {
                start: off,
                func_id,
                args_len,
            };
            if meta.end().get() > limit.get() {
                return Err(PError::CorruptStack(format!(
                    "frame at {off} of {} bytes overruns the limit {limit}",
                    meta.total_len()
                )));
            }
            let marker = pmem.read_u8(meta.marker_off())?;
            if marker != MARKER_FRAME_END && marker != MARKER_STACK_END {
                return Err(PError::CorruptStack(format!(
                    "frame at {off} has invalid end marker {marker:#x}"
                )));
            }
            Ok(ParsedFrame::Ordinary { meta, marker })
        }
        PREAMBLE_POINTER => {
            if off.get() + POINTER_FRAME_LEN > limit.get() {
                return Err(PError::CorruptStack(format!(
                    "pointer frame at {off} overruns the limit {limit}"
                )));
            }
            let next = pmem.read_u64(off + 1u64)?;
            let marker = pmem.read_u8(off + (POINTER_FRAME_LEN - 1))?;
            if marker != MARKER_FRAME_END && marker != MARKER_STACK_END {
                return Err(PError::CorruptStack(format!(
                    "pointer frame at {off} has invalid end marker {marker:#x}"
                )));
            }
            Ok(ParsedFrame::Pointer {
                start: off,
                next_block: POffset::new(next),
                marker,
            })
        }
        other => Err(PError::CorruptStack(format!(
            "unknown frame preamble {other:#x} at {off}"
        ))),
    }
}

/// Reads the argument blob of a parsed frame.
///
/// # Errors
///
/// Propagates NVRAM read failures.
pub fn read_args(pmem: &PMem, meta: &FrameMeta) -> Result<Vec<u8>, PError> {
    Ok(pmem.read_vec(meta.args_off(), meta.args_len as usize)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_nvram::PMemBuilder;

    fn pmem() -> PMem {
        PMemBuilder::new().len(4096).build_in_memory()
    }

    #[test]
    fn ordinary_round_trip() {
        let p = pmem();
        let args = [1u8, 2, 3, 4, 5];
        let buf = encode_ordinary(0xABCD, &args, MARKER_STACK_END).unwrap();
        assert_eq!(buf.len() as u64, ORDINARY_OVERHEAD + 5);
        p.write(POffset::new(100), &buf).unwrap();
        let parsed = parse_frame(&p, POffset::new(100), POffset::new(4096)).unwrap();
        match parsed {
            ParsedFrame::Ordinary { meta, marker } => {
                assert_eq!(meta.func_id, 0xABCD);
                assert_eq!(meta.args_len, 5);
                assert_eq!(marker, MARKER_STACK_END);
                assert_eq!(read_args(&p, &meta).unwrap(), args);
                assert_eq!(meta.end().get(), 100 + buf.len() as u64);
                assert_eq!(meta.marker_off().get(), meta.end().get() - 1);
            }
            other => panic!("expected ordinary frame, got {other:?}"),
        }
    }

    #[test]
    fn empty_args_round_trip() {
        let p = pmem();
        let buf = encode_ordinary(7, &[], MARKER_FRAME_END).unwrap();
        assert_eq!(buf.len() as u64, ORDINARY_OVERHEAD);
        p.write(POffset::new(0), &buf).unwrap();
        let ParsedFrame::Ordinary { meta, marker } =
            parse_frame(&p, POffset::new(0), POffset::new(4096)).unwrap()
        else {
            panic!("expected ordinary frame")
        };
        assert_eq!(meta.args_len, 0);
        assert_eq!(marker, MARKER_FRAME_END);
        assert!(read_args(&p, &meta).unwrap().is_empty());
    }

    #[test]
    fn pointer_round_trip() {
        let p = pmem();
        let buf = encode_pointer(POffset::new(0x1234), MARKER_FRAME_END);
        assert_eq!(buf.len() as u64, POINTER_FRAME_LEN);
        p.write(POffset::new(50), &buf).unwrap();
        let parsed = parse_frame(&p, POffset::new(50), POffset::new(4096)).unwrap();
        assert_eq!(
            parsed,
            ParsedFrame::Pointer {
                start: POffset::new(50),
                next_block: POffset::new(0x1234),
                marker: MARKER_FRAME_END,
            }
        );
    }

    #[test]
    fn args_too_long_is_rejected() {
        let args = vec![0u8; MAX_ARGS_LEN + 1];
        assert!(matches!(
            encode_ordinary(1, &args, MARKER_STACK_END),
            Err(PError::ArgsTooLong { .. })
        ));
    }

    #[test]
    fn unknown_preamble_is_corrupt() {
        let p = pmem();
        p.write_u8(POffset::new(0), 0x7F).unwrap();
        assert!(matches!(
            parse_frame(&p, POffset::new(0), POffset::new(4096)),
            Err(PError::CorruptStack(_))
        ));
    }

    #[test]
    fn frame_overrunning_limit_is_corrupt() {
        let p = pmem();
        let buf = encode_ordinary(1, &[0u8; 64], MARKER_STACK_END).unwrap();
        p.write(POffset::new(0), &buf).unwrap();
        // Limit cuts through the middle of the frame.
        assert!(matches!(
            parse_frame(&p, POffset::new(0), POffset::new(40)),
            Err(PError::CorruptStack(_))
        ));
    }

    #[test]
    fn huge_args_len_field_is_corrupt() {
        let p = pmem();
        let mut buf = encode_ordinary(1, &[], MARKER_STACK_END).unwrap();
        buf[9..13].copy_from_slice(&(u32::MAX).to_le_bytes());
        p.write(POffset::new(0), &buf).unwrap();
        assert!(matches!(
            parse_frame(&p, POffset::new(0), POffset::new(4096)),
            Err(PError::CorruptStack(_))
        ));
    }

    #[test]
    fn invalid_marker_is_corrupt() {
        let p = pmem();
        let mut buf = encode_ordinary(1, &[], MARKER_STACK_END).unwrap();
        let last = buf.len() - 1;
        buf[last] = 0x55;
        p.write(POffset::new(0), &buf).unwrap();
        assert!(matches!(
            parse_frame(&p, POffset::new(0), POffset::new(4096)),
            Err(PError::CorruptStack(_))
        ));
    }

    #[test]
    fn parse_at_limit_is_corrupt() {
        let p = pmem();
        assert!(matches!(
            parse_frame(&p, POffset::new(4096), POffset::new(4096)),
            Err(PError::CorruptStack(_))
        ));
    }

    #[test]
    fn slot_offsets_are_consistent() {
        let meta = FrameMeta {
            start: POffset::new(1000),
            func_id: 1,
            args_len: 10,
        };
        assert_eq!(meta.args_off().get(), 1013);
        assert_eq!(meta.ret_flag_off().get(), 1023);
        assert_eq!(meta.ret_val_off().get(), 1024);
        assert_eq!(meta.marker_off().get(), 1032);
        assert_eq!(meta.end().get(), 1033);
        assert_eq!(meta.total_len(), 33);
    }
}
