//! Error type shared by the persistent-stack runtime.

use std::error::Error;
use std::fmt;

use pstack_heap::HeapError;
use pstack_nvram::MemError;

/// Errors produced by stacks, the invocation machinery and the runtime.
#[derive(Debug)]
pub enum PError {
    /// Underlying NVRAM access failed. [`MemError::Crashed`] is the
    /// normal "the system just died" signal that unwinds workers.
    Mem(MemError),
    /// Persistent-heap operation failed.
    Heap(HeapError),
    /// A fixed-capacity stack cannot hold another frame.
    StackOverflow {
        /// Bytes the new frame needs.
        needed: u64,
        /// Remaining bytes in the stack region.
        available: u64,
    },
    /// Pop was requested with no frame above the dummy frame.
    StackEmpty,
    /// Persistent stack bytes failed to parse.
    CorruptStack(String),
    /// A frame references a function id missing from the registry.
    UnknownFunction(u64),
    /// Arguments exceed the maximum encodable length.
    ArgsTooLong {
        /// Requested argument length.
        len: usize,
        /// Maximum supported length.
        max: usize,
    },
    /// Invalid runtime configuration or layout.
    InvalidConfig(String),
    /// A task function failed with an application-defined message.
    Task(String),
}

impl fmt::Display for PError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PError::Mem(e) => write!(f, "nvram access failed: {e}"),
            PError::Heap(e) => write!(f, "persistent heap failed: {e}"),
            PError::StackOverflow { needed, available } => write!(
                f,
                "stack overflow: frame of {needed} bytes does not fit in {available} remaining bytes"
            ),
            PError::StackEmpty => write!(f, "cannot pop: no frame above the dummy frame"),
            PError::CorruptStack(msg) => write!(f, "persistent stack is corrupt: {msg}"),
            PError::UnknownFunction(id) => {
                write!(f, "function id {id:#x} is not registered")
            }
            PError::ArgsTooLong { len, max } => {
                write!(f, "argument blob of {len} bytes exceeds the {max}-byte limit")
            }
            PError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PError::Task(msg) => write!(f, "task failed: {msg}"),
        }
    }
}

impl Error for PError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PError::Mem(e) => Some(e),
            PError::Heap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for PError {
    fn from(e: MemError) -> Self {
        PError::Mem(e)
    }
}

impl From<HeapError> for PError {
    fn from(e: HeapError) -> Self {
        // A heap error that is really a crash should look like a crash
        // to the scheduler, whichever layer noticed it first.
        match e {
            HeapError::Mem(m) => PError::Mem(m),
            other => PError::Heap(other),
        }
    }
}

impl PError {
    /// Returns `true` if this error is a propagated crash: the worker
    /// should unwind and the system restart in recovery mode.
    #[must_use]
    pub fn is_crash(&self) -> bool {
        matches!(self, PError::Mem(MemError::Crashed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errs = [
            PError::Mem(MemError::Crashed),
            PError::Heap(HeapError::OutOfMemory { requested: 4 }),
            PError::StackOverflow {
                needed: 100,
                available: 10,
            },
            PError::StackEmpty,
            PError::CorruptStack("x".into()),
            PError::UnknownFunction(9),
            PError::ArgsTooLong { len: 10, max: 5 },
            PError::InvalidConfig("x".into()),
            PError::Task("boom".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn crash_classification() {
        assert!(PError::Mem(MemError::Crashed).is_crash());
        assert!(PError::from(HeapError::Mem(MemError::Crashed)).is_crash());
        assert!(!PError::StackEmpty.is_crash());
        assert!(!PError::from(HeapError::OutOfMemory { requested: 1 }).is_crash());
    }

    #[test]
    fn sources_are_chained() {
        assert!(Error::source(&PError::Mem(MemError::Crashed)).is_some());
        assert!(Error::source(&PError::StackEmpty).is_none());
    }
}
