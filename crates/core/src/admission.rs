//! Admission control for batch-window execution: a bounded queue that
//! **sheds explicitly** instead of growing or dropping.
//!
//! The runtime executes work in group-commit batch windows; a serving
//! front end admits requests into the window that will carry them. Two
//! failure modes are unacceptable in that position:
//!
//! * an *unbounded* queue — a durable-before-visible server must bound
//!   the work it has promised but not yet persisted, or a slow client
//!   population inflates memory and tail latency without limit;
//! * a *silent drop* — a request that was accepted and then discarded
//!   violates at-least-once acking; the client times out and retries,
//!   but nothing distinguishes the drop from a crash, so the operator
//!   never learns the server is saturated.
//!
//! [`AdmissionQueue`] closes both: [`offer`](AdmissionQueue::offer)
//! either admits (FIFO, bounded) or returns
//! [`Admission::Shed`] — the caller's cue to answer `Overloaded` right
//! away — and both outcomes are counted, so saturation is observable
//! before it is fatal.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Outcome of an [`AdmissionQueue::offer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The item was enqueued; `depth` is the queue depth including it.
    Admitted {
        /// Queue depth after admission.
        depth: usize,
    },
    /// The queue is at capacity. The item was **not** enqueued; answer
    /// the client with an explicit overload response.
    Shed,
}

#[derive(Debug, Default)]
struct AdmissionState<T> {
    queue: VecDeque<T>,
    admitted: u64,
    shed: u64,
    depth_high_water: usize,
}

/// A bounded FIFO feeding batch windows, with explicit load shedding.
///
/// # Example
///
/// ```
/// use pstack_core::{Admission, AdmissionQueue};
///
/// let q: AdmissionQueue<u64> = AdmissionQueue::new(2);
/// assert_eq!(q.offer(10), Admission::Admitted { depth: 1 });
/// assert_eq!(q.offer(11), Admission::Admitted { depth: 2 });
/// assert_eq!(q.offer(12), Admission::Shed); // full → explicit, never silent
/// assert_eq!(q.drain_window(8), vec![10, 11]);
/// assert_eq!(q.shed(), 1);
/// ```
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    capacity: usize,
    state: Mutex<AdmissionState<T>>,
}

impl<T> AdmissionQueue<T> {
    /// Creates a queue admitting at most `capacity` pending items.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity — a queue that sheds everything is a
    /// configuration error, not a policy.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "admission queue needs capacity >= 1");
        AdmissionQueue {
            capacity,
            state: Mutex::new(AdmissionState {
                queue: VecDeque::with_capacity(capacity),
                admitted: 0,
                shed: 0,
                depth_high_water: 0,
            }),
        }
    }

    /// The bound on pending items.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits `item` or sheds it, never blocking and never growing past
    /// the bound.
    ///
    /// # Panics
    ///
    /// Panics if the queue lock is poisoned.
    pub fn offer(&self, item: T) -> Admission {
        let mut st = self.state.lock().expect("admission queue poisoned");
        if st.queue.len() >= self.capacity {
            st.shed += 1;
            return Admission::Shed;
        }
        st.queue.push_back(item);
        st.admitted += 1;
        let depth = st.queue.len();
        st.depth_high_water = st.depth_high_water.max(depth);
        Admission::Admitted { depth }
    }

    /// Dequeues up to `max` items in admission order — one batch
    /// window's worth of work.
    ///
    /// # Panics
    ///
    /// Panics if the queue lock is poisoned.
    pub fn drain_window(&self, max: usize) -> Vec<T> {
        let mut st = self.state.lock().expect("admission queue poisoned");
        let take = max.min(st.queue.len());
        st.queue.drain(..take).collect()
    }

    /// Pending items not yet drained into a window.
    ///
    /// # Panics
    ///
    /// Panics if the queue lock is poisoned.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .expect("admission queue poisoned")
            .queue
            .len()
    }

    /// Total items admitted since construction.
    ///
    /// # Panics
    ///
    /// Panics if the queue lock is poisoned.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.state
            .lock()
            .expect("admission queue poisoned")
            .admitted
    }

    /// Total items shed since construction — the saturation signal.
    ///
    /// # Panics
    ///
    /// Panics if the queue lock is poisoned.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.state.lock().expect("admission queue poisoned").shed
    }

    /// Deepest the queue has ever been (≤ capacity, by construction).
    ///
    /// # Panics
    ///
    /// Panics if the queue lock is poisoned.
    #[must_use]
    pub fn depth_high_water(&self) -> usize {
        self.state
            .lock()
            .expect("admission queue poisoned")
            .depth_high_water
    }

    /// Discards all pending items (a reboot empties volatile queues —
    /// clients re-drive their requests through retries).
    ///
    /// # Panics
    ///
    /// Panics if the queue lock is poisoned.
    pub fn clear(&self) {
        self.state
            .lock()
            .expect("admission queue poisoned")
            .queue
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_window_sizing() {
        let q = AdmissionQueue::new(4);
        for i in 0..4u32 {
            assert_eq!(
                q.offer(i),
                Admission::Admitted {
                    depth: i as usize + 1
                }
            );
        }
        assert_eq!(q.drain_window(3), vec![0, 1, 2]);
        assert_eq!(q.depth(), 1);
        assert_eq!(q.offer(4), Admission::Admitted { depth: 2 });
        assert_eq!(q.drain_window(10), vec![3, 4]);
        assert!(q.drain_window(10).is_empty());
    }

    #[test]
    fn sheds_at_capacity_never_grows_never_drops() {
        let q = AdmissionQueue::new(2);
        assert!(matches!(q.offer(1), Admission::Admitted { .. }));
        assert!(matches!(q.offer(2), Admission::Admitted { .. }));
        // Every over-capacity offer is an explicit Shed — and the items
        // already admitted are untouched (no silent replacement).
        for _ in 0..50 {
            assert_eq!(q.offer(99), Admission::Shed);
        }
        assert_eq!(q.depth(), 2);
        assert_eq!(q.depth_high_water(), 2);
        assert_eq!(q.admitted(), 2);
        assert_eq!(q.shed(), 50);
        assert_eq!(q.drain_window(8), vec![1, 2]);
        // Draining reopens admission.
        assert!(matches!(q.offer(3), Admission::Admitted { .. }));
    }

    #[test]
    fn clear_discards_pending_but_keeps_counters() {
        let q = AdmissionQueue::new(3);
        q.offer(7);
        q.offer(8);
        q.clear();
        assert_eq!(q.depth(), 0);
        assert_eq!(q.admitted(), 2);
        assert!(matches!(q.offer(9), Admission::Admitted { depth: 1 }));
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_is_a_config_error() {
        let _ = AdmissionQueue::<u8>::new(0);
    }
}
