//! The recoverable-function registry (§2.3 of the paper).
//!
//! Every function `F` executed on the persistent stack has a dual
//! `F.Recover` that the recovery boot invokes with the same arguments.
//! Frames store only a *function id*, never a code address — §3.2
//! explains that return addresses become garbage when the code segment
//! relocates across restarts. Ids must therefore be **stable across
//! program versions and restarts**: the registry is rebuilt from code
//! on every boot and maps each id back to the pair of callables.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::invoke::{PContext, RetBytes};
use crate::PError;

/// Function id of the dummy frame at the bottom of every stack. Never
/// registered and never invoked; recovery stops when only this frame
/// remains.
pub const DUMMY_FUNC_ID: u64 = u64::MAX;

/// A function that can run on the persistent stack: the operation
/// itself plus the recover dual invoked after a crash (§2.3).
///
/// Both entry points receive the same serialized arguments. `recover`
/// must be written so that it completes or rolls back the operation
/// *regardless of whether the crash hit `call` or a previous `recover`*
/// — repeated failures re-run `recover` on the same frame.
pub trait RecoverableFunction: Send + Sync {
    /// Executes the operation. Nested invocations go through
    /// [`PContext::call`] so that each gets its own persistent frame.
    ///
    /// # Errors
    ///
    /// A propagated crash, or an application error (which aborts the
    /// enclosing task).
    fn call(&self, ctx: &mut PContext<'_>, args: &[u8]) -> Result<Option<RetBytes>, PError>;

    /// Completes or rolls back an interrupted execution of `call`.
    /// Invoked by the recovery boot, top frame first. May itself make
    /// nested [`PContext::call`] invocations.
    ///
    /// # Errors
    ///
    /// Same contract as [`RecoverableFunction::call`].
    fn recover(&self, ctx: &mut PContext<'_>, args: &[u8]) -> Result<Option<RetBytes>, PError>;
}

/// Adapter building a [`RecoverableFunction`] from two closures.
///
/// ```
/// use pstack_core::{FnPair, RecoverableFunction};
///
/// let f = FnPair::new(
///     |_ctx, _args| Ok(None),
///     |_ctx, _args| Ok(None),
/// );
/// let _boxed: std::sync::Arc<dyn RecoverableFunction> = std::sync::Arc::new(f);
/// ```
pub struct FnPair<C, R> {
    call_fn: C,
    recover_fn: R,
}

impl<C, R> FnPair<C, R>
where
    C: Fn(&mut PContext<'_>, &[u8]) -> Result<Option<RetBytes>, PError> + Send + Sync,
    R: Fn(&mut PContext<'_>, &[u8]) -> Result<Option<RetBytes>, PError> + Send + Sync,
{
    /// Wraps a call closure and its recover dual.
    pub fn new(call_fn: C, recover_fn: R) -> Self {
        FnPair {
            call_fn,
            recover_fn,
        }
    }
}

impl<C, R> RecoverableFunction for FnPair<C, R>
where
    C: Fn(&mut PContext<'_>, &[u8]) -> Result<Option<RetBytes>, PError> + Send + Sync,
    R: Fn(&mut PContext<'_>, &[u8]) -> Result<Option<RetBytes>, PError> + Send + Sync,
{
    fn call(&self, ctx: &mut PContext<'_>, args: &[u8]) -> Result<Option<RetBytes>, PError> {
        (self.call_fn)(ctx, args)
    }

    fn recover(&self, ctx: &mut PContext<'_>, args: &[u8]) -> Result<Option<RetBytes>, PError> {
        (self.recover_fn)(ctx, args)
    }
}

/// Maps stable function ids to their [`RecoverableFunction`] pairs.
///
/// Built (identically!) by every boot of the program, then shared
/// read-only with the runtime. Cloning is cheap: entries are
/// reference-counted.
#[derive(Clone, Default)]
pub struct FunctionRegistry {
    funcs: HashMap<u64, Arc<dyn RecoverableFunction>>,
}

impl fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut ids: Vec<u64> = self.funcs.keys().copied().collect();
        ids.sort_unstable();
        f.debug_struct("FunctionRegistry")
            .field("ids", &ids)
            .finish()
    }
}

impl FunctionRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `func` under `id`.
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] if `id` is already taken or is the
    /// reserved dummy id.
    pub fn register(&mut self, id: u64, func: Arc<dyn RecoverableFunction>) -> Result<u64, PError> {
        if id == DUMMY_FUNC_ID {
            return Err(PError::InvalidConfig(format!(
                "function id {id:#x} is reserved for the dummy frame"
            )));
        }
        if self.funcs.contains_key(&id) {
            return Err(PError::InvalidConfig(format!(
                "function id {id:#x} is already registered"
            )));
        }
        self.funcs.insert(id, func);
        Ok(id)
    }

    /// Registers a call/recover closure pair under `id` and returns the
    /// id for convenience.
    ///
    /// # Errors
    ///
    /// Same as [`FunctionRegistry::register`].
    pub fn register_pair<C, R>(&mut self, id: u64, call_fn: C, recover_fn: R) -> Result<u64, PError>
    where
        C: Fn(&mut PContext<'_>, &[u8]) -> Result<Option<RetBytes>, PError> + Send + Sync + 'static,
        R: Fn(&mut PContext<'_>, &[u8]) -> Result<Option<RetBytes>, PError> + Send + Sync + 'static,
    {
        self.register(id, Arc::new(FnPair::new(call_fn, recover_fn)))
    }

    /// Looks up the function registered under `id`.
    ///
    /// # Errors
    ///
    /// [`PError::UnknownFunction`] if nothing is registered there.
    pub fn get(&self, id: u64) -> Result<Arc<dyn RecoverableFunction>, PError> {
        self.funcs
            .get(&id)
            .cloned()
            .ok_or(PError::UnknownFunction(id))
    }

    /// Returns `true` if `id` is registered.
    #[must_use]
    pub fn contains(&self, id: u64) -> bool {
        self.funcs.contains_key(&id)
    }

    /// Number of registered functions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// Returns `true` if nothing is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop() -> Arc<dyn RecoverableFunction> {
        Arc::new(FnPair::new(|_, _| Ok(None), |_, _| Ok(None)))
    }

    #[test]
    fn register_and_get() {
        let mut r = FunctionRegistry::new();
        assert!(r.is_empty());
        r.register(1, noop()).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.contains(1));
        assert!(r.get(1).is_ok());
        assert!(matches!(r.get(2), Err(PError::UnknownFunction(2))));
    }

    #[test]
    fn duplicate_id_rejected() {
        let mut r = FunctionRegistry::new();
        r.register(1, noop()).unwrap();
        assert!(matches!(
            r.register(1, noop()),
            Err(PError::InvalidConfig(_))
        ));
    }

    #[test]
    fn dummy_id_rejected() {
        let mut r = FunctionRegistry::new();
        assert!(matches!(
            r.register(DUMMY_FUNC_ID, noop()),
            Err(PError::InvalidConfig(_))
        ));
    }

    #[test]
    fn clone_shares_entries() {
        let mut r = FunctionRegistry::new();
        r.register_pair(3, |_, _| Ok(None), |_, _| Ok(None))
            .unwrap();
        let r2 = r.clone();
        assert!(r2.contains(3));
    }

    #[test]
    fn debug_lists_ids() {
        let mut r = FunctionRegistry::new();
        r.register(5, noop()).unwrap();
        assert!(format!("{r:?}").contains('5'));
    }
}
