//! Offline shim for the subset of `criterion` 0.5 this workspace's
//! `harness = false` benches use.
//!
//! The build environment has no network access to a cargo registry, so
//! the real crate cannot be fetched. The shim keeps the same authoring
//! API (`criterion_group!` / `criterion_main!`, benchmark groups,
//! throughput annotation, `Bencher::iter`) and implements a simple but
//! honest measurement loop: per benchmark it warms up, then times
//! `sample_size` samples whose per-sample iteration count is calibrated
//! so a sample lasts roughly `measurement_time / sample_size`.
//!
//! Each benchmark reports one line:
//!
//! ```text
//! <group>/<id>   time: [<min> <mean> <max>]  n=<samples>×<iters>  thrpt: <rate>
//! ```
//!
//! where `min`/`mean`/`max` are per-iteration times over the samples
//! (min ≈ the low-noise floor, mean the central estimate the optional
//! throughput rate is derived from, max the tail) and `n` is the
//! sample count times the calibrated iterations per sample — enough
//! spread information to make before/after comparisons defensible.
//! There is no HTML report and no statistical regression analysis.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark; reported as elements or
/// bytes per second next to the time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, rendered as
    /// `name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`], so `bench_function` accepts plain
/// strings as well as structured ids.
pub trait IntoBenchmarkId {
    /// Converts to an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `iters` calls of `routine`, excluding per-iteration
    /// `setup` from the measurement.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
    ) {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// The benchmark driver; create one per `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted for API compatibility; the shim has no CLI options.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before measurement.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Target total measurement time.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        self.run(&id.id, &mut |b| f(b));
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        self.run(&id.id, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn run(&mut self, id: &str, routine: &mut dyn FnMut(&mut Bencher)) {
        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };

        // Warm-up & calibration: run single iterations until the warm-up
        // budget is spent, learning the per-iteration cost.
        let mut one = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_start = Instant::now();
        let mut calib = Duration::ZERO;
        let mut calib_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || calib_iters == 0 {
            routine(&mut one);
            calib += one.elapsed.max(Duration::from_nanos(1));
            calib_iters += 1;
            if calib_iters >= 1000 {
                break;
            }
        }
        let per_iter = calib / calib_iters as u32;

        // Choose an iteration count so one sample lasts about
        // measurement_time / sample_size.
        let sample_budget = self.measurement_time / self.sample_size as u32;
        let iters = if per_iter.is_zero() {
            1
        } else {
            (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            samples.push(b.elapsed / iters as u32);
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples
            .iter()
            .sum::<Duration>()
            .checked_div(samples.len() as u32)
            .unwrap_or_default();

        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if !mean.is_zero() => {
                format!("  thrpt: {:.3e} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if !mean.is_zero() => {
                format!("  thrpt: {:.3e} B/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{full:<55} time: [{min:>10.3?} {mean:>10.3?} {max:>10.3?}]  n={}×{iters}{rate}",
            samples.len()
        );
    }
}

/// Declares a group function running each target against a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_round_trips() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        g.throughput(Throughput::Elements(1));
        let mut ran = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran += 1;
        });
        g.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        g.finish();
        assert!(ran >= 2, "warm-up plus samples should call the closure");
    }
}
