//! Offline shim for the subset of `criterion` 0.5 this workspace's
//! `harness = false` benches use.
//!
//! The build environment has no network access to a cargo registry, so
//! the real crate cannot be fetched. The shim keeps the same authoring
//! API (`criterion_group!` / `criterion_main!`, benchmark groups,
//! throughput annotation, `Bencher::iter`) and implements a simple but
//! honest measurement loop: per benchmark it warms up, then times
//! `sample_size` samples whose per-sample iteration count is calibrated
//! so a sample lasts roughly `measurement_time / sample_size`.
//!
//! Each benchmark reports one line:
//!
//! ```text
//! <group>/<id>   time: [<min> <mean> <max>]  σ=<stddev> ±<ci95>(95%)  n=<samples>×<iters>  p50/p99/p999: <p50>/<p99>/<p999>  thrpt: <rate>
//! ```
//!
//! where `min`/`mean`/`max` are per-iteration times over the samples
//! (min ≈ the low-noise floor, mean the central estimate the optional
//! throughput rate is derived from, max the tail), `σ` the sample
//! standard deviation, `±…(95%)` the 95% confidence half-width of the
//! mean (`1.96σ/√samples` — the mean is `mean ± ci95`), and `n` the
//! sample count times the calibrated iterations per sample — enough
//! spread information to make before/after comparisons defensible
//! ([`Measurement::distinguishable_from`] checks that two results'
//! intervals do not overlap). The `p50/p99/p999` block reports exact
//! tail percentiles from a dedicated pass that times *individual*
//! iterations (the sampled loop above amortizes per-iteration jitter
//! away, which is right for the mean but hides the tail). There is no
//! HTML report and no further regression analysis.
//!
//! Beyond the upstream API, the shim adds a small comparison facility
//! for scaling sweeps: [`BenchmarkGroup::bench_measured`] runs a
//! benchmark exactly like `bench_function` but also returns its
//! [`Measurement`], and [`Comparison`] renders a baseline-vs-candidate
//! ratio line:
//!
//! ```text
//! <name>   <candidate> vs <baseline>: x<ratio>  (<candidate rate> vs <baseline rate>)
//! ```
//!
//! The ratio is candidate/baseline throughput when both carry rates
//! (higher = candidate faster), baseline/candidate mean time otherwise
//! (still higher = candidate faster).

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark; reported as elements or
/// bytes per second next to the time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, rendered as
    /// `name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`], so `bench_function` accepts plain
/// strings as well as structured ids.
pub trait IntoBenchmarkId {
    /// Converts to an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// One benchmark's measured result, as returned by
/// [`BenchmarkGroup::bench_measured`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Minimum per-iteration time over the samples.
    pub min: Duration,
    /// Mean per-iteration time over the samples.
    pub mean: Duration,
    /// Maximum per-iteration time over the samples.
    pub max: Duration,
    /// Sample standard deviation (Bessel-corrected) of the
    /// per-iteration times over the samples; zero with fewer than two
    /// samples.
    pub stddev: Duration,
    /// Half-width of the 95% confidence interval of the mean
    /// (`1.96 · stddev / √samples`): the mean is `mean ± ci95`. Zero
    /// with fewer than two samples.
    pub ci95: Duration,
    /// Median single-iteration time from the dedicated latency pass.
    pub p50: Duration,
    /// 99th-percentile single-iteration time from the latency pass.
    pub p99: Duration,
    /// 99.9th-percentile single-iteration time from the latency pass
    /// (equals the observed maximum when fewer than 1000 iterations
    /// fit the budget).
    pub p999: Duration,
    /// Mean throughput in units (elements or bytes) per second, when
    /// the group carried a [`Throughput`] annotation.
    pub rate: Option<f64>,
}

impl Measurement {
    /// `true` when the two measurements' 95% confidence intervals do
    /// **not** overlap — the difference in means is unlikely to be
    /// noise. This is what makes a before/after ratio (a compaction
    /// pause, a batching win) defensible rather than anecdotal.
    #[must_use]
    pub fn distinguishable_from(&self, other: &Measurement) -> bool {
        let (lo, hi) = if self.mean <= other.mean {
            (self, other)
        } else {
            (other, self)
        };
        lo.mean + lo.ci95 < hi.mean.saturating_sub(hi.ci95)
    }

    /// Candidate-vs-baseline speedup: throughput ratio when both sides
    /// carry rates, inverse mean-time ratio otherwise. Greater than 1
    /// means `self` (the candidate) is faster.
    #[must_use]
    pub fn speedup_over(&self, baseline: &Measurement) -> f64 {
        match (self.rate, baseline.rate) {
            (Some(c), Some(b)) if b > 0.0 => c / b,
            _ => {
                if self.mean.is_zero() {
                    f64::INFINITY
                } else {
                    baseline.mean.as_secs_f64() / self.mean.as_secs_f64()
                }
            }
        }
    }
}

/// Baseline-vs-candidate reporting for scaling sweeps. Feed it the
/// [`Measurement`]s returned by [`BenchmarkGroup::bench_measured`];
/// every [`Comparison::versus`] call prints one ratio line (format in
/// the [crate docs](crate)).
///
/// ```
/// use std::time::Duration;
/// use criterion::{Comparison, Measurement};
///
/// let base = Measurement {
///     min: Duration::from_micros(9),
///     mean: Duration::from_micros(10),
///     max: Duration::from_micros(12),
///     stddev: Duration::from_micros(1),
///     ci95: Duration::from_nanos(620),
///     p50: Duration::from_micros(10),
///     p99: Duration::from_micros(12),
///     p999: Duration::from_micros(12),
///     rate: Some(1.0e6),
/// };
/// let cand = Measurement { rate: Some(2.5e6), ..base };
/// let speedup = Comparison::new("sweep", "1 thread", base)
///     .versus("4 threads", cand);
/// assert!((speedup - 2.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Comparison {
    name: String,
    baseline_label: String,
    baseline: Measurement,
}

impl Comparison {
    /// Fixes the baseline every later candidate is compared against.
    pub fn new(
        name: impl Into<String>,
        baseline_label: impl Into<String>,
        baseline: Measurement,
    ) -> Self {
        Comparison {
            name: name.into(),
            baseline_label: baseline_label.into(),
            baseline,
        }
    }

    /// Prints the candidate's ratio line and returns the speedup
    /// (candidate over baseline; > 1 = candidate faster).
    pub fn versus(&self, label: impl Into<String>, candidate: Measurement) -> f64 {
        let label = label.into();
        let speedup = candidate.speedup_over(&self.baseline);
        let detail = match (candidate.rate, self.baseline.rate) {
            (Some(c), Some(b)) => format!("({c:.3e} vs {b:.3e})"),
            _ => format!("({:.3?} vs {:.3?})", candidate.mean, self.baseline.mean),
        };
        println!(
            "{:<55} {} vs {}: x{speedup:.2}  {detail}",
            self.name, label, self.baseline_label
        );
        speedup
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `iters` calls of `routine`, excluding per-iteration
    /// `setup` from the measurement.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
    ) {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// The benchmark driver; create one per `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted for API compatibility; the shim has no CLI options.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before measurement.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Target total measurement time.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        self.run(&id.id, &mut |b| f(b));
        self
    }

    /// Runs one benchmark exactly like
    /// [`bench_function`](BenchmarkGroup::bench_function) (same
    /// measurement loop, same report line) and additionally returns
    /// the [`Measurement`], for feeding a [`Comparison`].
    pub fn bench_measured<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> Measurement {
        let id = id.into_benchmark_id();
        self.run(&id.id, &mut |b| f(b))
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        self.run(&id.id, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn run(&mut self, id: &str, routine: &mut dyn FnMut(&mut Bencher)) -> Measurement {
        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };

        // Warm-up & calibration: run single iterations until the warm-up
        // budget is spent, learning the per-iteration cost.
        let mut one = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_start = Instant::now();
        let mut calib = Duration::ZERO;
        let mut calib_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || calib_iters == 0 {
            routine(&mut one);
            calib += one.elapsed.max(Duration::from_nanos(1));
            calib_iters += 1;
            if calib_iters >= 1000 {
                break;
            }
        }
        let per_iter = calib / calib_iters as u32;

        // Choose an iteration count so one sample lasts about
        // measurement_time / sample_size.
        let sample_budget = self.measurement_time / self.sample_size as u32;
        let iters = if per_iter.is_zero() {
            1
        } else {
            (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            samples.push(b.elapsed / iters as u32);
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples
            .iter()
            .sum::<Duration>()
            .checked_div(samples.len() as u32)
            .unwrap_or_default();
        // Sample standard deviation (Bessel-corrected) and the 95%
        // confidence half-width of the mean.
        let (stddev, ci95) = if samples.len() > 1 {
            let mean_s = mean.as_secs_f64();
            let var = samples
                .iter()
                .map(|s| (s.as_secs_f64() - mean_s).powi(2))
                .sum::<f64>()
                / (samples.len() - 1) as f64;
            let sd = var.sqrt();
            (
                Duration::from_secs_f64(sd),
                Duration::from_secs_f64(1.96 * sd / (samples.len() as f64).sqrt()),
            )
        } else {
            (Duration::ZERO, Duration::ZERO)
        };

        // Dedicated latency pass: time individual iterations so the
        // tail is visible. The sampled loop above divides a block time
        // by the iteration count, which averages the p99/p999 outliers
        // (a compaction pause, a flush-epoch stall) into the mean; here
        // every iteration gets its own clock read and the percentiles
        // are exact order statistics of the observed set. The floor of
        // 1000 keeps p999 a real order statistic: below that, index
        // ceil(0.999·n)−1 collapses onto the same sample as p99 and the
        // reported tail is fiction.
        let lat_iters = if per_iter.is_zero() {
            1000
        } else {
            (self.measurement_time.as_nanos() / per_iter.as_nanos().max(1)).clamp(1000, 10_000)
                as usize
        };
        let mut lats: Vec<Duration> = Vec::with_capacity(lat_iters);
        for _ in 0..lat_iters {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            lats.push(b.elapsed);
        }
        lats.sort_unstable();
        let percentile = |q: f64| -> Duration {
            let idx = ((q * lats.len() as f64).ceil() as usize).max(1) - 1;
            lats[idx.min(lats.len() - 1)]
        };
        let (p50, p99, p999) = (percentile(0.50), percentile(0.99), percentile(0.999));

        let (rate, rate_note) = match self.throughput {
            Some(Throughput::Elements(n)) if !mean.is_zero() => {
                let r = n as f64 / mean.as_secs_f64();
                (Some(r), format!("  thrpt: {r:.3e} elem/s"))
            }
            Some(Throughput::Bytes(n)) if !mean.is_zero() => {
                let r = n as f64 / mean.as_secs_f64();
                (Some(r), format!("  thrpt: {r:.3e} B/s"))
            }
            _ => (None, String::new()),
        };
        println!(
            "{full:<55} time: [{min:>10.3?} {mean:>10.3?} {max:>10.3?}]  σ={stddev:.3?} \
             ±{ci95:.3?}(95%)  n={}×{iters}  p50/p99/p999: {p50:.3?}/{p99:.3?}/{p999:.3?}\
             {rate_note}",
            samples.len()
        );
        Measurement {
            min,
            mean,
            max,
            stddev,
            ci95,
            p50,
            p99,
            p999,
            rate,
        }
    }
}

/// Declares a group function running each target against a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_round_trips() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        g.throughput(Throughput::Elements(1));
        let mut ran = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran += 1;
        });
        g.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        g.finish();
        assert!(ran >= 2, "warm-up plus samples should call the closure");
    }

    #[test]
    fn bench_measured_reports_rate_and_spread() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(3))
            .throughput(Throughput::Elements(10));
        let m = g.bench_measured("measured", |b| {
            b.iter(|| black_box((0..100u64).sum::<u64>()));
        });
        g.finish();
        assert!(m.min <= m.mean && m.mean <= m.max);
        assert!(m.rate.unwrap_or(0.0) > 0.0);
        // Percentiles come from the single-iteration pass: ordered and
        // populated.
        assert!(m.p50 > Duration::ZERO);
        assert!(m.p50 <= m.p99 && m.p99 <= m.p999);
        // 3 samples: the spread statistics are populated and the CI is
        // narrower than the spread itself (1.96/√3 < 1.96).
        assert!(m.ci95 <= m.stddev * 2);
        assert!(
            m.stddev <= m.max - m.min + Duration::from_nanos(1),
            "stddev {:?} cannot exceed the full spread",
            m.stddev
        );
    }

    #[test]
    fn confidence_intervals_decide_distinguishability() {
        let base = Measurement {
            min: Duration::from_micros(8),
            mean: Duration::from_micros(10),
            max: Duration::from_micros(14),
            stddev: Duration::from_micros(2),
            ci95: Duration::from_micros(1),
            p50: Duration::from_micros(10),
            p99: Duration::from_micros(13),
            p999: Duration::from_micros(14),
            rate: None,
        };
        let clearly_slower = Measurement {
            mean: Duration::from_micros(20),
            ..base
        };
        let within_noise = Measurement {
            mean: Duration::from_micros(11),
            ..base
        };
        assert!(base.distinguishable_from(&clearly_slower));
        assert!(clearly_slower.distinguishable_from(&base), "symmetric");
        assert!(!base.distinguishable_from(&within_noise));
        assert!(!base.distinguishable_from(&base));
    }

    #[test]
    fn comparison_speedup_prefers_rates_then_times() {
        let base = Measurement {
            min: Duration::from_micros(8),
            mean: Duration::from_micros(10),
            max: Duration::from_micros(14),
            stddev: Duration::from_micros(2),
            ci95: Duration::from_micros(1),
            p50: Duration::from_micros(10),
            p99: Duration::from_micros(13),
            p999: Duration::from_micros(14),
            rate: Some(1.0e6),
        };
        let cand = Measurement {
            rate: Some(3.0e6),
            ..base
        };
        assert!((cand.speedup_over(&base) - 3.0).abs() < 1e-9);
        // Without rates, fall back to inverse mean-time ratio.
        let slow = Measurement {
            mean: Duration::from_micros(20),
            rate: None,
            ..base
        };
        let fast = Measurement {
            mean: Duration::from_micros(5),
            rate: None,
            ..base
        };
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-9);
        let cmp = Comparison::new("sweep", "baseline", slow);
        assert!((cmp.versus("candidate", fast) - 4.0).abs() < 1e-9);
    }
}
