//! Offline shim for the subset of `proptest` 1.x this workspace uses.
//!
//! The build environment has no network access to a cargo registry, so
//! the real crate cannot be fetched. The shim keeps the authoring API —
//! the [`proptest!`] macro, [`Strategy`](strategy::Strategy) with
//! `prop_map`/`boxed`, integer-range strategies, tuples, [`Just`],
//! [`prop_oneof!`], `collection::vec`, `option::of`, `bool::ANY`,
//! [`any`] and [`ProptestConfig`] — over a deterministic random-case
//! runner:
//!
//! * every test case is seeded from the test's name and case index, so
//!   a run is fully reproducible and CI-safe;
//! * the seed stream can be perturbed with `PROPTEST_SHIM_SEED`, and
//!   case counts scaled with `PROPTEST_CASES`;
//! * there is **no shrinking**: a failing case panics with the sampled
//!   inputs already bound, and reproduces exactly on rerun.

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Test-runner plumbing: the deterministic per-case RNG.
pub mod test_runner {
    pub use crate::ProptestConfig as Config;
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt;

    /// Failure value a property body can return with `Err(..)`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case uncovered a genuine failure.
        Fail(String),
        /// The case asks to be discarded (the shim treats it as a
        /// vacuous pass).
        Reject(String),
    }

    impl TestCaseError {
        /// A failing outcome with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A discarded-case outcome with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
            }
        }
    }

    /// The RNG handed to strategies; deterministic per (test, case).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        /// Builds the RNG for one test case.
        #[must_use]
        pub fn deterministic(seed: u64) -> Self {
            TestRng {
                inner: SmallRng::seed_from_u64(seed),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Derives the per-case seed; used by the [`proptest!`] expansion.
#[doc(hidden)]
#[must_use]
pub fn __seed_for(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the test name keeps distinct tests on distinct
    // streams even with the same case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let env_seed = std::env::var("PROPTEST_SHIM_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0u64);
    h ^ env_seed ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::SampleRange;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adaptor.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.sample(rng))
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<T> {
        inner: Box<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.sample(rng)
        }
    }

    /// Weighted union of strategies, as produced by [`crate::prop_oneof!`].
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        #[must_use]
        pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! requires a positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = (0..self.total).sample_from(rng);
            for (w, arm) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return arm.sample(rng);
                }
                pick -= w;
            }
            unreachable!("weights sum to total")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    self.clone().sample_from(rng)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    self.clone().sample_from(rng)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `bool` strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::SampleRange;

    /// Strategy yielding each truth value with probability 1/2.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical [`Any`] instance, `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            (0u8..2).sample_from(rng) == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::SampleRange;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a
    /// [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.size.lo..self.size.hi).sample_from(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::SampleRange;

    /// Strategy for `Option<S::Value>`, as built by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of`: `None` a quarter of the time, `Some`
    /// otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if (0u8..4).sample_from(rng) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Types with a canonical whole-domain strategy, usable with [`any`].
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    <$t as rand::Random>::random(rng)
                }
            }
        )*};
    }
    impl_arbitrary!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T> {
        _marker: PhantomData<fn() -> T>,
    }

    /// `proptest::prelude::any::<T>()`: the whole domain of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The glob-import surface used by the test suites.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    $crate::__seed_for(stringify!($name), __case),
                );
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                // The body runs inside a Result-returning closure so
                // `return Ok(())` and `prop_assume!` (early accept)
                // work as they do in real proptest.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(())
                    | ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err(__err) => panic!("{}", __err),
                }
            }
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}

/// `prop_assume!`: accepts the case vacuously when the assumption does
/// not hold. (The real proptest rejects and resamples; the shim simply
/// skips, which preserves soundness — no false failures — at a small
/// cost in effective case count.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// `prop_assert!`: asserts inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `prop_assert_eq!`: equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// `prop_assert_ne!`: inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Weighted (or unweighted) choice between strategies of one value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let strat = crate::collection::vec(0u64..100, 1..10);
        let a = strat.sample(&mut TestRng::deterministic(1));
        let b = strat.sample(&mut TestRng::deterministic(1));
        let c = strat.sample(&mut TestRng::deterministic(2));
        assert_eq!(a, b);
        // Different seeds *may* collide in principle; this pair does not.
        assert_ne!(a, c);
    }

    #[test]
    fn oneof_respects_zero_weight_arms_never_chosen() {
        let strat = prop_oneof![1 => Just(1u8), 3 => Just(2u8)];
        let mut rng = TestRng::deterministic(99);
        let mut seen = [0u32; 3];
        for _ in 0..400 {
            seen[strat.sample(&mut rng) as usize] += 1;
        }
        assert_eq!(seen[0], 0);
        assert!(seen[1] > 0 && seen[2] > 0);
        assert!(seen[2] > seen[1], "weight 3 arm should dominate");
    }

    #[test]
    fn option_of_yields_both_variants() {
        let strat = crate::option::of(1u64..200);
        let mut rng = TestRng::deterministic(5);
        let mut nones = 0;
        let mut somes = 0;
        for _ in 0..200 {
            match strat.sample(&mut rng) {
                None => nones += 1,
                Some(v) => {
                    assert!((1..200).contains(&v));
                    somes += 1;
                }
            }
        }
        assert!(nones > 0 && somes > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_patterns(
            v in crate::collection::vec((0u8..10, crate::bool::ANY), 0..5),
            (x, y) in (1i64..=3, 4i64..6),
        ) {
            prop_assert!(v.len() < 5);
            for (n, _flag) in &v {
                prop_assert!(*n < 10);
            }
            prop_assert!((1..=3).contains(&x));
            prop_assert!((4..6).contains(&y), "y out of range: {}", y);
            prop_assert_ne!(x, 0);
        }
    }
}
