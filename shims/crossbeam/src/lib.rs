//! Offline shim for the subset of `crossbeam` 0.8 this workspace uses:
//! `crossbeam::channel::{unbounded, Sender, Receiver}`.
//!
//! The build environment has no network access to a cargo registry, so
//! the real crate cannot be fetched. The shim implements an unbounded
//! MPMC channel over a mutex + condvar: `Sender` and `Receiver` are
//! both `Clone + Send + Sync`, `recv` blocks until a message arrives or
//! every sender is dropped, matching the crossbeam semantics the
//! runtime's task queue relies on.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: Send> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// Channel is currently empty but senders remain.
        Empty,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends a message; fails only if every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake every blocked receiver so it can
                // observe the disconnect. The notification must be
                // serialized with recv's check-then-wait by taking the
                // queue lock: a receiver that already loaded
                // senders == 1 is either still holding the lock (so we
                // notify only after it has parked in `wait`) or has
                // not yet taken it (so it re-reads senders == 0).
                // Without the lock the wakeup can fire into the gap
                // and be lost, leaving recv blocked forever.
                let _guard = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message; `Err(RecvError)` once the
        /// channel is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len()
        }

        /// Whether the buffer is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError, TryRecvError};

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn try_recv_reports_empty_then_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn mpmc_drains_everything() {
        let (tx, rx) = unbounded();
        for i in 0..100u64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let seen = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while let Ok(v) = rx.recv() {
                        seen.lock().unwrap().push(v);
                    }
                });
            }
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn dropping_last_sender_wakes_blocked_receivers() {
        // Regression: the final disconnect notification must not fall
        // into the gap between recv's sender-count check and its
        // Condvar::wait, or blocked receivers hang forever. Many quick
        // rounds of drop-while-blocked give the race a chance to fire.
        for _ in 0..500 {
            let (tx, rx) = unbounded::<u8>();
            std::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| while rx.recv().is_ok() {});
                }
                s.spawn(move || drop(tx));
            });
        }
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
    }
}
