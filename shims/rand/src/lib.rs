//! Offline shim for the subset of `rand` 0.9 this workspace uses.
//!
//! The build environment has no network access to a cargo registry, so
//! the real crate cannot be fetched. This shim provides:
//!
//! * [`rng()`] — an OS-entropy-free "thread rng" seeded per call from a
//!   global counter mixed with hasher entropy;
//! * [`Rng`] — `random`, `random_range` (over integer `Range` /
//!   `RangeInclusive`), `random_bool`;
//! * [`SeedableRng::seed_from_u64`] and [`rngs::SmallRng`] — a
//!   SplitMix64-fed xorshift generator with the same determinism
//!   contract (same seed ⇒ same stream);
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates;
//! * [`distr::Zipf`] — a zipfian rank distribution (YCSB-style skewed
//!   key popularity) behind the [`distr::Distribution`] trait.
//!
//! Statistical quality is adequate for test workload generation; this
//! is not a cryptographic generator.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their whole domain via
/// [`Rng::random`].
pub trait Random {
    /// Draws a uniform value from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Random for i128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::random(rng) as i128
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable via [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Modulo bias is at most span/2^128: irrelevant for workload
    // generation.
    let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
    wide % span
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + sample_span(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + sample_span(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value over the type's whole domain.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Draws a uniform value from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(GOLDEN_GAMMA);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A small, fast, seedable generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }

    /// The generator returned by [`crate::rng`]; freshly seeded per
    /// call from a global counter mixed with hasher entropy.
    #[derive(Debug, Clone)]
    pub struct ThreadRng {
        inner: SmallRng,
    }

    impl ThreadRng {
        pub(crate) fn new() -> Self {
            use std::collections::hash_map::RandomState;
            use std::hash::{BuildHasher, Hasher};
            use std::sync::atomic::{AtomicU64, Ordering};

            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let unique = COUNTER.fetch_add(GOLDEN_GAMMA | 1, Ordering::Relaxed);
            // RandomState carries the process's ASLR/OS entropy.
            let entropy = RandomState::new().build_hasher().finish();
            ThreadRng {
                inner: SmallRng::seed_from_u64(unique ^ entropy),
            }
        }
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Returns a freshly seeded non-deterministic generator (the shim's
/// analogue of `rand::rng()`).
pub fn rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

/// Distributions beyond the uniform ones baked into [`Rng`] —
/// mirroring the `rand_distr` / `rand::distr` API surface the
/// workspace uses (currently the zipfian key generator driving the
/// YCSB-style KV benches).
pub mod distr {
    use super::RngCore;

    /// Types that sample values of `T` from a fixed distribution.
    pub trait Distribution<T> {
        /// Draws one value from `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// A zipfian distribution over ranks `1..=n` with exponent `s`:
    /// `P(k) ∝ 1 / k^s`. Rank 1 is the most popular element — the
    /// standard skewed-popularity model of the YCSB workloads.
    ///
    /// The shim precomputes the cumulative weights (`O(n)` memory,
    /// `O(log n)` per sample via binary search); adequate for workload
    /// generation, not for huge `n`.
    ///
    /// # Example
    ///
    /// ```
    /// use rand::distr::{Distribution, Zipf};
    /// use rand::rngs::SmallRng;
    /// use rand::SeedableRng;
    ///
    /// let zipf = Zipf::new(100, 0.99).unwrap();
    /// let mut rng = SmallRng::seed_from_u64(7);
    /// let rank = zipf.sample(&mut rng);
    /// assert!((1..=100).contains(&rank));
    /// ```
    #[derive(Debug, Clone)]
    pub struct Zipf {
        /// Cumulative weights; `cdf[k-1]` is the total weight of ranks
        /// `1..=k`, normalized to end at 1.0.
        cdf: Vec<f64>,
    }

    impl Zipf {
        /// Builds a zipfian distribution over `1..=n` with exponent
        /// `s >= 0` (`s = 0` is uniform).
        ///
        /// # Errors
        ///
        /// Returns a message for `n == 0` or a non-finite/negative
        /// exponent.
        pub fn new(n: u64, s: f64) -> Result<Self, String> {
            if n == 0 {
                return Err("zipf needs at least one element".into());
            }
            if !s.is_finite() || s < 0.0 {
                return Err(format!("zipf exponent {s} must be finite and >= 0"));
            }
            let mut cdf = Vec::with_capacity(n as usize);
            let mut total = 0.0f64;
            for k in 1..=n {
                total += (k as f64).powf(-s);
                cdf.push(total);
            }
            for w in &mut cdf {
                *w /= total;
            }
            Ok(Zipf { cdf })
        }

        /// Number of ranks.
        #[must_use]
        pub fn n(&self) -> u64 {
            self.cdf.len() as u64
        }
    }

    impl Distribution<u64> for Zipf {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            let u = <f64 as super::Random>::random(rng);
            // First rank whose cumulative weight exceeds the draw.
            let idx = self.cdf.partition_point(|&w| w <= u);
            (idx as u64 + 1).min(self.n())
        }
    }
}

/// Slice utilities.
pub mod seq {
    use super::RngCore;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element reference, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.random_range(-10..=10);
            assert!((-10..=10).contains(&v));
            let u: usize = rng.random_range(3..9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn range_covers_every_value() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn thread_rngs_differ() {
        let a: u64 = super::rng().random();
        let b: u64 = super::rng().random();
        assert_ne!(a, b);
    }

    #[test]
    fn zipf_respects_bounds_and_skews_to_low_ranks() {
        use super::distr::{Distribution, Zipf};
        let zipf = Zipf::new(50, 0.99).unwrap();
        let mut rng = SmallRng::seed_from_u64(13);
        let mut counts = [0u64; 50];
        for _ in 0..20_000 {
            let k = zipf.sample(&mut rng);
            assert!((1..=50).contains(&k));
            counts[(k - 1) as usize] += 1;
        }
        // Rank 1 dominates rank 50 under s ≈ 1.
        assert!(counts[0] > counts[49] * 4, "{counts:?}");
        // Every rank is reachable enough to show up.
        assert!(counts.iter().filter(|&&c| c > 0).count() >= 40);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform_and_deterministic() {
        use super::distr::{Distribution, Zipf};
        let zipf = Zipf::new(4, 0.0).unwrap();
        let draw = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..8).map(|_| zipf.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3), "same seed, same stream");
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[(zipf.sample(&mut rng) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zipf_rejects_bad_parameters() {
        use super::distr::Zipf;
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
    }
}
