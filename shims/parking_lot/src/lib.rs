//! Offline shim for the subset of `parking_lot` 0.12 this workspace
//! uses: [`Mutex`] and [`FairMutex`] with non-poisoning `lock()`.
//!
//! The build environment has no network access to a cargo registry, so
//! the real crate cannot be fetched; this shim layers the same API over
//! `std::sync::Mutex`. Poisoning is deliberately swallowed (a panic
//! while holding the lock does not poison it), matching `parking_lot`
//! semantics.

use std::fmt;
use std::sync::Mutex as StdMutex;

pub use std::sync::MutexGuard;

/// A mutual exclusion primitive; `lock()` never fails and never
/// observes poisoning.
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A mutex guaranteeing FIFO fairness in `parking_lot`; the shim
/// provides the same API with the std mutex's (unspecified) fairness,
/// which is sufficient for correctness.
pub struct FairMutex<T: ?Sized> {
    inner: Mutex<T>,
}

impl<T> FairMutex<T> {
    /// Creates a new fair mutex.
    pub const fn new(value: T) -> Self {
        FairMutex {
            inner: Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> FairMutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock()
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock()
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for FairMutex<T> {
    fn default() -> Self {
        FairMutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for FairMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn fair_lock_round_trips() {
        let m = FairMutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
