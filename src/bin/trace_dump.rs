//! `trace-dump` — render a flight-recorder trace file.
//!
//! A [`TraceSession`] can be persisted as a `pstack-trace v1` text
//! file (`TraceSnapshot::write_file`; `examples/kv.rs` writes one when
//! `PSTACK_TRACE` names a path). This tool turns that file into
//! something a human or a script can consume:
//!
//! * `trace-dump <file>` — the human view: the collected summary
//!   (per-op latency percentiles, persist economy, the crash→recovery
//!   timeline), same renderer the campaigns use.
//! * `trace-dump <file> --json` — the machine view: the full event
//!   stream plus the summary as JSON on stdout, for jq-style
//!   inspection or the CI schema check.
//! * `trace-dump <file> --validate` — the trace lint: parses the
//!   file, checks the structural invariants (monotone timestamps per
//!   thread, strictly increasing sequence positions, in-bounds label
//!   ids, balanced span/phase enter/exit pairs) and the JSON schema's
//!   required keys, and exits non-zero listing every violation.
//!
//! Exit status: 0 clean, 1 validation findings, 2 usage/parse error.
//!
//! [`TraceSession`]: pstack_telemetry::TraceSession

use std::process::ExitCode;

use pstack::telemetry::TraceSnapshot;

/// Keys every `to_json` document must carry — the schema contract the
/// CI step pins. Renaming one of these is a breaking change for any
/// consumer parsing dumped traces.
const REQUIRED_JSON_KEYS: &[&str] = &[
    "\"version\"",
    "\"labels\"",
    "\"threads\"",
    "\"summary\"",
    "\"ops\"",
    "\"persist_economy\"",
    "\"timeline\"",
    "\"events\"",
    "\"dropped\"",
];

fn usage() -> ExitCode {
    eprintln!("usage: trace-dump <trace-file> [--json | --validate]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, mode) = match args.as_slice() {
        [path] => (path, "summary"),
        [path, flag] if flag == "--json" => (path, "json"),
        [path, flag] if flag == "--validate" => (path, "validate"),
        _ => return usage(),
    };

    let snap = match TraceSnapshot::read_file(path) {
        Ok(snap) => snap,
        Err(e) => {
            eprintln!("trace-dump: {path}: {e}");
            return ExitCode::from(2);
        }
    };

    match mode {
        "json" => {
            println!("{}", snap.to_json());
            ExitCode::SUCCESS
        }
        "validate" => validate(&snap),
        _ => {
            let summary = snap.summary();
            print!("{}", summary.render());
            ExitCode::SUCCESS
        }
    }
}

/// The lint mode: structural invariants plus the JSON schema keys.
fn validate(snap: &TraceSnapshot) -> ExitCode {
    let mut findings: Vec<String> = match snap.validate() {
        Ok(()) => Vec::new(),
        Err(errs) => errs,
    };

    let json = snap.to_json();
    for key in REQUIRED_JSON_KEYS {
        if !json.contains(key) {
            findings.push(format!("json output missing required key {key}"));
        }
    }

    if findings.is_empty() {
        let events: usize = snap.threads.iter().map(|t| t.events.len()).sum();
        println!(
            "trace ok: {} thread(s), {} event(s), {} label(s)",
            snap.threads.len(),
            events,
            snap.labels.len()
        );
        ExitCode::SUCCESS
    } else {
        for finding in &findings {
            eprintln!("trace-dump: {finding}");
        }
        eprintln!("trace-dump: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
