//! Post-mortem inspector for persistent NVRAM images.
//!
//! ```sh
//! pstack-dump <image-file>
//! ```
//!
//! Opens a file-backed NVRAM image (as produced by the runtime on the
//! file backend — e.g. by `examples/file_backed_restart` or the
//! `kill_campaign` harness), and prints:
//!
//! * the runtime superblock (workers, stack layout, heap geometry);
//! * every worker's persistent stack, frame by frame (function ids,
//!   argument previews, return-slot states) — exactly what a recovery
//!   boot would walk;
//! * heap allocator statistics from a consistency-checked block walk;
//! * the kill-harness root record, if the image carries one.
//!
//! The inspector never writes to the image: it is safe to point at the
//! artifact of a crashed (killed) run before deciding how to recover it.

use std::path::Path;
use std::process::ExitCode;

use pstack::core::stack::dump_stack;
use pstack::core::{FunctionRegistry, Runtime};
use pstack::heap::PHeap;
use pstack::nvram::{PMemBuilder, POffset};
use pstack::recoverable::{CasVariant, QueueVariant};

/// Magic of the kill-harness root record (see `pstack-chaos`).
const KILL_ROOT_MAGIC: u64 = 0x4B49_4C4C_524F_4F54;
const KILL_ROOT_OFF: u64 = 64;

fn dump(path: &Path) -> Result<(), Box<dyn std::error::Error>> {
    let len = std::fs::metadata(path)?.len() as usize;
    println!("image: {} ({} bytes)", path.display(), len);
    let pmem = PMemBuilder::new().len(len).build_file(path)?;

    // The registry is irrelevant for inspection: nothing is invoked.
    let stub = FunctionRegistry::new();
    let rt = Runtime::open(pmem.clone(), &stub)?;
    println!("\nsuperblock:");
    println!("  workers:      {}", rt.workers());
    println!("  stack layout: {}", rt.stack_kind());
    println!("  user root:    {}", rt.user_root()?);

    for pid in 0..rt.workers() {
        match rt.open_stack(pid) {
            Ok(stack) => {
                println!("\nworker {pid}:");
                for line in dump_stack(stack.as_ref())?.lines() {
                    println!("  {line}");
                }
                match stack.check_consistency() {
                    Ok(()) => println!("  consistency: ok"),
                    Err(e) => println!("  consistency: FAILED — {e}"),
                }
            }
            Err(e) => println!("\nworker {pid}: unreadable stack — {e}"),
        }
    }

    println!("\nheap:");
    let heap: &PHeap = rt.heap();
    let stats = heap.stats();
    println!(
        "  blocks:        {} used, {} free",
        stats.used_blocks, stats.free_blocks
    );
    println!(
        "  payload bytes: {} used, {} free",
        stats.used_payload_bytes, stats.free_payload_bytes
    );
    match heap.check_consistency() {
        Ok(()) => println!("  consistency:   ok"),
        Err(e) => println!("  consistency:   FAILED — {e}"),
    }

    if pmem.read_u64(POffset::new(KILL_ROOT_OFF))? == KILL_ROOT_MAGIC {
        let base = POffset::new(KILL_ROOT_OFF);
        println!("\nkill-harness root record:");
        println!("  object at:       {:#x}", pmem.read_u64(base + 8u64)?);
        println!("  task table at:   {:#x}", pmem.read_u64(base + 16u64)?);
        println!("  initial value:   {}", pmem.read_i64(base + 24u64)?);
        println!("  processes:       {}", pmem.read_u32(base + 32u64)?);
        let variant = pmem.read_u8(base + 36u64)?;
        let workload = match pmem.read_u8(base + 37u64)? {
            0 => format!(
                "CAS ({})",
                CasVariant::from_u8(variant)
                    .map(|v| format!("{v:?}"))
                    .unwrap_or_else(|_| "unknown variant".into())
            ),
            1 => format!(
                "queue ({})",
                QueueVariant::from_u8(variant)
                    .map(|v| format!("{v:?}"))
                    .unwrap_or_else(|_| "unknown variant".into())
            ),
            other => format!("unknown kind {other}"),
        };
        println!("  workload:        {workload}");
        println!(
            "  persist delay:   {} µs/line",
            pmem.read_u32(base + 40u64)?
        );
    }

    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _self = args.next();
    let Some(path) = args.next() else {
        eprintln!("usage: pstack-dump <image-file>");
        return ExitCode::from(2);
    };
    match dump(Path::new(&path)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pstack-dump: {e}");
            ExitCode::from(1)
        }
    }
}
