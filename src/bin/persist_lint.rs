//! `persist-lint` — a text-based persist-discipline lint.
//!
//! Three rules, all heuristics over the source text (this is a lint,
//! not a verifier — PSan checks the semantics at runtime; this catches
//! the layering and "wrote a commit point, forgot the flush" mistakes
//! at review time, next to fmt and clippy in CI):
//!
//! * `raw-backend` — code outside `crates/nvram` naming the storage
//!   backend (`Backend::`, `.backend`, `.image[`). Every persistent
//!   byte must go through the `PMem` interposition layer or it is
//!   invisible to the stats counters, the fail-point engine and PSan.
//! * `publish-no-persist` — a store whose destination looks like a
//!   commit point (`root`, `head`, `epoch`, `selector` in the line)
//!   with no `flush`/`persist`/`fence` in the following ten lines.
//!   Publishing before persisting is the early-publish bug class.
//! * `publish-before-persist` — a CAS (`compare_exchange` /
//!   `fetch_update`) whose call names a commit point with no
//!   `flush`/`persist`/`fence` in the *preceding* ten lines. A
//!   lock-free publish makes its record reachable the instant the CAS
//!   lands, so the evidence (record bytes, log tail) must already be
//!   persistent — flushing after the CAS is too late on a buffered
//!   region.
//! * `await-before-publish` — a commit-point CAS or `RootCell` swap
//!   whose *preceding* ten lines issue an asynchronous flight
//!   (`flush_async`) without any `await_ticket`/`fence`/synchronous
//!   persist between issue and publish. An issued flight is only
//!   *scheduled* durability; publishing against an un-awaited ticket
//!   is the pipelined spelling of the early-publish bug (PSan catches
//!   it at runtime, this catches it at review time).
//!
//! A finding is waived by `// persist-lint: allow(<rule>) <reason>` on
//! the flagged line or the line above it. Waivers are printed so they
//! stay auditable.
//!
//! Exit status: 0 clean (waivers allowed), 1 findings, 2 usage error.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directories scanned, relative to the repo root. `crates/nvram` is
/// the interposition layer itself and `shims/` emulate volatile crates
/// — neither is subject to the rules.
const ROOTS: &[&str] = &["crates", "src", "examples", "tests"];
const SKIP: &[&str] = &["crates/nvram", "shims", "target"];

const WINDOW: usize = 10;
const STORE_PATTERNS: &[&str] = &[
    ".write_u64(",
    ".write_u32(",
    ".write_i64(",
    ".write_u8(",
    ".write(",
    ".fill(",
];
const PUBLISH_NAMES: &[&str] = &["root", "head", "epoch", "selector"];
// `flush(` deliberately does not substring-match `flush_async(`: an
// async issue is not durability evidence, only its await is.
// `await_ticket(` and `.commit(` (a pending batch's await-then-publish
// step) count as persists so pipelined commit paths lint clean.
const PERSIST_PATTERNS: &[&str] = &["flush(", "persist(", "fence(", "await_ticket(", ".commit("];
/// Flight issues: scheduled durability, not durability.
const ASYNC_ISSUE_PATTERNS: &[&str] = &["flush_async("];
// persist-lint: allow(publish-before-persist) the pattern table itself
const CAS_PATTERNS: &[&str] = &[".compare_exchange(", ".fetch_update("];
/// Publish calls the `await-before-publish` rule watches: CASes plus
/// `RootCell::swap` (the compaction commit point).
const PUBLISH_CALL_PATTERNS: &[&str] = &[".compare_exchange(", ".fetch_update(", ".swap("];
/// Lines after a CAS call scanned for publish names — rustfmt splits a
/// call's operands across up to this many continuation lines.
const CAS_SPAN: usize = 3;
// persist-lint: allow(raw-backend) the pattern table itself, not a backend access
const BACKEND_PATTERNS: &[&str] = &["Backend::", ".backend", ".image["];

struct Finding {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    text: String,
    waived: bool,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.text.trim()
        )
    }
}

/// The code part of a line: everything before a `//` comment.
fn code_of(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

fn contains_any(haystack: &str, needles: &[&str]) -> bool {
    needles.iter().any(|n| haystack.contains(n))
}

/// `true` if the flagged line carries a waiver for `rule` — on the
/// line itself or up to two lines above it (method chains split the
/// receiver and the call across lines).
fn waived(lines: &[&str], idx: usize, rule: &str) -> bool {
    let marker = format!("persist-lint: allow({rule})");
    lines[idx.saturating_sub(2)..=idx]
        .iter()
        .any(|l| l.contains(&marker))
}

fn lint_file(path: &Path, src: &str, out: &mut Vec<Finding>) {
    let lines: Vec<&str> = src.lines().collect();
    for (i, raw) in lines.iter().enumerate() {
        let code = code_of(raw);
        if contains_any(code, BACKEND_PATTERNS) {
            out.push(Finding {
                file: path.to_path_buf(),
                line: i + 1,
                rule: "raw-backend",
                text: (*raw).to_string(),
                waived: waived(&lines, i, "raw-backend"),
            });
        }
        let lower = code.to_ascii_lowercase();
        if contains_any(code, STORE_PATTERNS) && contains_any(&lower, PUBLISH_NAMES) {
            let persisted = lines[i..(i + 1 + WINDOW).min(lines.len())]
                .iter()
                .any(|l| contains_any(code_of(l), PERSIST_PATTERNS));
            if !persisted {
                out.push(Finding {
                    file: path.to_path_buf(),
                    line: i + 1,
                    rule: "publish-no-persist",
                    text: (*raw).to_string(),
                    waived: waived(&lines, i, "publish-no-persist"),
                });
            }
        }
        if contains_any(code, CAS_PATTERNS) {
            let span: String = lines[i..(i + 1 + CAS_SPAN).min(lines.len())]
                .iter()
                .map(|l| code_of(l).to_ascii_lowercase())
                .collect::<Vec<_>>()
                .join("\n");
            if contains_any(&span, PUBLISH_NAMES) {
                let persisted_before = lines[i.saturating_sub(WINDOW)..i]
                    .iter()
                    .any(|l| contains_any(code_of(l), PERSIST_PATTERNS));
                if !persisted_before {
                    out.push(Finding {
                        file: path.to_path_buf(),
                        line: i + 1,
                        rule: "publish-before-persist",
                        text: (*raw).to_string(),
                        waived: waived(&lines, i, "publish-before-persist"),
                    });
                }
            }
        }
        if contains_any(code, PUBLISH_CALL_PATTERNS) {
            let span: String = lines[i..(i + 1 + CAS_SPAN).min(lines.len())]
                .iter()
                .map(|l| code_of(l).to_ascii_lowercase())
                .collect::<Vec<_>>()
                .join("\n");
            if contains_any(&span, PUBLISH_NAMES) {
                let before = &lines[i.saturating_sub(WINDOW)..i];
                let issued = before
                    .iter()
                    .any(|l| contains_any(code_of(l), ASYNC_ISSUE_PATTERNS));
                let awaited = before
                    .iter()
                    .any(|l| contains_any(code_of(l), PERSIST_PATTERNS));
                if issued && !awaited {
                    out.push(Finding {
                        file: path.to_path_buf(),
                        line: i + 1,
                        rule: "await-before-publish",
                        text: (*raw).to_string(),
                        waived: waived(&lines, i, "await-before-publish"),
                    });
                }
            }
        }
    }
}

fn walk(dir: &Path, repo: &Path, out: &mut Vec<Finding>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let rel = path.strip_prefix(repo).unwrap_or(&path);
        if SKIP.iter().any(|s| rel == Path::new(s)) {
            continue;
        }
        if path.is_dir() {
            walk(&path, repo, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let src = std::fs::read_to_string(&path)?;
            lint_file(rel, &src, out);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let repo = PathBuf::from(args.next().unwrap_or_else(|| ".".to_string()));
    if args.next().is_some() {
        eprintln!("usage: persist-lint [repo-root]");
        return ExitCode::from(2);
    }

    let mut findings = Vec::new();
    for root in ROOTS {
        let dir = repo.join(root);
        if !dir.is_dir() {
            continue;
        }
        if let Err(e) = walk(&dir, &repo, &mut findings) {
            eprintln!("persist-lint: {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    let mut hard = 0usize;
    for f in &findings {
        if f.waived {
            println!("waived  {f}");
        } else {
            println!("FINDING {f}");
            hard += 1;
        }
    }
    println!(
        "persist-lint: {} finding(s), {} waived",
        hard,
        findings.len() - hard
    );
    if hard > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The fixtures assemble each trigger pattern from fragments so the
    // lint — which scans this very file — never sees a literal match
    // inside the test strings. `call("flush", "_async")` produces the
    // source line the tests exercise without spelling it out here.
    fn call(recv: &str, head: &str, tail: &str, args: &str) -> String {
        format!("{recv}.{head}{tail}({args})?;")
    }

    fn issue() -> String {
        format!("let t = {}", call("pmem", "flush", "_async", "off, len"))
    }

    fn src_of(lines: &[String]) -> String {
        let mut src = lines.join("\n");
        src.push('\n');
        src
    }

    fn rules_of(src: &str) -> Vec<&'static str> {
        let mut findings = Vec::new();
        lint_file(Path::new("x.rs"), src, &mut findings);
        findings
            .iter()
            .filter(|f| !f.waived)
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn publish_against_unawaited_flight_is_flagged() {
        let src = src_of(&[
            issue(),
            call("head_cell", "compare", "_exchange", "old_head, new_head"),
        ]);
        // The issue is not persist evidence, so the CAS trips both the
        // sync rule and the pipelined one.
        assert_eq!(
            rules_of(&src),
            vec!["publish-before-persist", "await-before-publish"]
        );
    }

    #[test]
    fn awaited_flight_before_publish_is_clean() {
        let src = src_of(&[
            issue(),
            call("pmem", "await", "_ticket", "&t"),
            call("head_cell", "compare", "_exchange", "old_head, new_head"),
        ]);
        assert_eq!(rules_of(&src), Vec::<&str>::new());
    }

    #[test]
    fn root_swap_against_unawaited_flight_is_flagged() {
        let src = src_of(&[issue(), call("cell", "sw", "ap", "&guard, root.get()")]);
        assert_eq!(rules_of(&src), vec!["await-before-publish"]);
    }

    #[test]
    fn fence_counts_as_await_evidence() {
        let src = src_of(&[
            issue(),
            call("pmem", "fen", "ce", ""),
            call("cell", "sw", "ap", "&guard, root.get()"),
        ]);
        assert_eq!(rules_of(&src), Vec::<&str>::new());
    }

    #[test]
    fn waiver_silences_the_rule_but_stays_visible() {
        let waiver = format!(
            "// persist-lint: {}(await-before-publish) test double",
            "allow"
        );
        let src = src_of(&[
            issue(),
            waiver,
            call("cell", "sw", "ap", "&guard, root.get()"),
        ]);
        let mut findings = Vec::new();
        lint_file(Path::new("x.rs"), &src, &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].waived);
    }
}
