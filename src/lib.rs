//! # pstack — Execution of NVRAM Programs with Persistent Stack
//!
//! Facade crate for the reproduction of Aksenov, Ben-Baruch, Hendler,
//! Kokorin and Rusanovsky, *"Execution of NVRAM Programs with Persistent
//! Stack"* (PACT 2021, arXiv:2105.11932).
//!
//! The workspace is organized bottom-up:
//!
//! * [`nvram`] — emulated NVRAM: a persistent byte region behind a
//!   volatile cache-line buffer, with per-line atomic flushes, crash
//!   injection and offset-based addressing.
//! * [`heap`] — a persistent free-list allocator on top of the NVRAM.
//! * [`core`] — the paper's contribution: persistent stacks (fixed,
//!   resizable-array and linked-list variants), the recoverable-function
//!   registry, the invocation machinery, the worker/recovery runtime and
//!   the Appendix-A transactional-loop combinator.
//! * [`recoverable`] — NSRL primitives built on the runtime: the
//!   recoverable CAS (with its deliberately buggy no-matrix variant), a
//!   recoverable counter, register, bounded FIFO queue (with its own
//!   injected-bug variant) and one-shot test-and-set, plus the
//!   persistent descriptor tables driving the §5.2 experiments.
//! * [`kv`] — the first real workload on the runtime: a recoverable
//!   hash-indexed key-value store (per-bucket version chains published
//!   by atomic head CAS, so recovery is an evidence scan), with its
//!   descriptor table and runtime task function.
//! * [`verify`] — the polynomial serializability verifier (Eulerian
//!   paths), FIFO and KV witness verifiers, and linearizability /
//!   sequential-consistency checkers for small histories.
//! * [`server`] — the serving front end: a length-prefixed wire
//!   protocol (in-process channel + unix sockets), request-id dedup
//!   against per-shard durable answer tables, admission control with
//!   explicit overload shedding, and closed-loop retry/backoff clients
//!   — exactly-once effects with at-least-once acks under power
//!   failures.
//! * [`chaos`] — crash campaigns (CAS, queue and KV), exhaustive
//!   crash-point enumeration, and the real-`kill(1)` multi-process
//!   harness over file-backed images.
//!
//! # Quickstart
//!
//! ```
//! use pstack::nvram::PMemBuilder;
//! use pstack::core::{FunctionRegistry, Runtime, RuntimeConfig, Task};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A function that persists its argument into the user area, plus the
//! // recovery dual that the runtime invokes after a crash.
//! let mut registry = FunctionRegistry::new();
//! let store = registry.register_pair(
//!     1,
//!     |ctx, args| {
//!         let val = u64::from_le_bytes(args[..8].try_into().unwrap());
//!         let root = ctx.user_root();
//!         ctx.pmem.write_u64(root, val)?;
//!         ctx.pmem.flush(root, 8)?;
//!         Ok(None)
//!     },
//!     |ctx, args| {
//!         // Idempotent: simply redo the write.
//!         let val = u64::from_le_bytes(args[..8].try_into().unwrap());
//!         let root = ctx.user_root();
//!         ctx.pmem.write_u64(root, val)?;
//!         ctx.pmem.flush(root, 8)?;
//!         Ok(None)
//!     },
//! )?;
//!
//! let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
//! let runtime = Runtime::format(pmem.clone(), RuntimeConfig::new(2), &registry)?;
//! let report = runtime.run_tasks(vec![Task::new(store, 7u64.to_le_bytes().to_vec())]);
//! assert_eq!(report.completed, 1);
//! # Ok(())
//! # }
//! ```

pub use pstack_chaos as chaos;
pub use pstack_core as core;
pub use pstack_heap as heap;
pub use pstack_kv as kv;
pub use pstack_nvram as nvram;
pub use pstack_recoverable as recoverable;
pub use pstack_server as server;
pub use pstack_telemetry as telemetry;
pub use pstack_verify as verify;
