//! NVRAM emulated on a plain file, surviving a *real* process restart —
//! the paper's point that the runtime lets you test NVRAM algorithms on
//! commodity persistent hardware (HDD/SSD) without owning NVRAM.
//!
//! Run without arguments for a self-driving demo (phase 1 crashes a
//! file-backed system, phase 2 reopens the file as a fresh "process"
//! and recovers). Or drive the phases manually, with a real `kill`
//! between them, exactly like §5.2:
//!
//! ```sh
//! cargo run --example file_backed_restart -- run /tmp/pstack.img &
//! kill -9 %1           # at a random moment
//! cargo run --example file_backed_restart -- recover /tmp/pstack.img
//! ```

use std::path::Path;

use pstack::core::{
    FunctionRegistry, PContext, PError, RecoveryMode, Runtime, RuntimeConfig, Task,
};
use pstack::nvram::{FailPlan, PMem, PMemBuilder};

const CHECKPOINTED_SUM: u64 = 21;
const REGION_LEN: usize = 1 << 20;

/// Persistently sums 1..=i into the user area, checkpointing every
/// partial sum — so recovery can tell how far it got.
fn build_registry() -> Result<FunctionRegistry, PError> {
    let mut registry = FunctionRegistry::new();
    let body = |ctx: &mut PContext<'_>, args: &[u8]| {
        let i = u64::from_le_bytes(args[..8].try_into().expect("8-byte argument"));
        let root = ctx.user_root();
        let done_flag = root + (i * 16 + 8);
        if ctx.pmem.read_u8(done_flag)? == 0 {
            let cell = root + i * 16;
            let sum: u64 = (1..=i).sum();
            ctx.pmem.write_u64(cell, sum)?;
            ctx.pmem.flush(cell, 8)?;
            ctx.pmem.write_u8(done_flag, 1)?;
            ctx.pmem.flush(done_flag, 1)?;
        }
        Ok(None)
    };
    registry.register_pair(CHECKPOINTED_SUM, body, body)?;
    Ok(registry)
}

fn open_file(path: &Path) -> Result<PMem, PError> {
    Ok(PMemBuilder::new().len(REGION_LEN).build_file(path)?)
}

fn phase_run(path: &Path, crash_in_process: bool) -> Result<(), Box<dyn std::error::Error>> {
    let registry = build_registry()?;
    let pmem = open_file(path)?;
    let rt = Runtime::format(pmem.clone(), RuntimeConfig::new(2), &registry)?;
    if crash_in_process {
        pmem.arm_failpoint(FailPlan::after_events(150));
    }
    let tasks: Vec<Task> = (1..=32u64)
        .map(|i| Task::new(CHECKPOINTED_SUM, i.to_le_bytes().to_vec()))
        .collect();
    let report = rt.run_tasks(tasks);
    println!(
        "phase run: completed={} crashed={} (file: {})",
        report.completed,
        report.crashed,
        path.display()
    );
    Ok(())
}

fn phase_recover(path: &Path) -> Result<(), Box<dyn std::error::Error>> {
    let registry = build_registry()?;
    // A brand-new mapping of the file: offsets stored inside the image
    // are still valid; raw pointers would not have been (§4.1).
    let pmem = open_file(path)?;
    let rt = Runtime::open(pmem.clone(), &registry)?;
    let recovery = rt.recover(RecoveryMode::Parallel)?;
    println!(
        "phase recover: {} in-flight frame(s) completed by their recover duals",
        recovery.total_frames()
    );
    // Count checkpoints that made it to the file.
    let root = rt.user_root()?;
    let mut durable = 0;
    for i in 1..=32u64 {
        if pmem.read_u8(root + (i * 16 + 8))? == 1 {
            let sum = pmem.read_u64(root + i * 16)?;
            assert_eq!(sum, (1..=i).sum::<u64>(), "torn checkpoint for {i}");
            durable += 1;
        }
    }
    println!("phase recover: {durable} checkpoints durable and untorn");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("run") => {
            let path = args.get(2).expect("usage: run <image-file>");
            phase_run(Path::new(path), false)?;
        }
        Some("recover") => {
            let path = args.get(2).expect("usage: recover <image-file>");
            phase_recover(Path::new(path))?;
        }
        _ => {
            // Self-driving demo on a temp file.
            let mut path = std::env::temp_dir();
            path.push(format!("pstack-demo-{}.img", std::process::id()));
            let _ = std::fs::remove_file(&path);
            phase_run(&path, true)?;
            // Everything volatile is gone now; only the file remains.
            phase_recover(&path)?;
            let _ = std::fs::remove_file(&path);
            println!("file-backed restart demo finished");
        }
    }
    Ok(())
}
