//! The §5.2 experiment, end to end: random recoverable-CAS workloads on
//! emulated NVRAM, crashes at random moments, restart + recovery loops,
//! and serializability verdicts — for the correct NSRL CAS (wide and
//! narrow operand ranges) and for the deliberately buggy variant with
//! the matrix `R` removed.
//!
//! ```sh
//! cargo run --release --example cas_verification
//! ```

use pstack::chaos::{run_campaign, CampaignConfig};
use pstack::recoverable::CasVariant;

fn banner(title: &str) {
    println!("\n=== {title} ===");
    println!(
        "{:>6} {:>8} {:>9} {:>10} {:>10} {:>16}",
        "seed", "rounds", "crashes", "rec.fail", "recovered", "verdict"
    );
}

fn run_block(base: &CampaignConfig, seeds: std::ops::Range<u64>) -> (usize, usize) {
    let mut serializable = 0;
    let mut total = 0;
    for seed in seeds {
        let cfg = CampaignConfig {
            seed,
            ..base.clone()
        };
        let report = run_campaign(&cfg).expect("campaign setup must succeed");
        let verdict = if report.is_serializable() {
            serializable += 1;
            "serializable".to_string()
        } else {
            "NOT serializable".to_string()
        };
        total += 1;
        println!(
            "{:>6} {:>8} {:>9} {:>10} {:>10} {:>16}",
            seed,
            report.rounds,
            report.crashes,
            report.recovery_crashes,
            report.recovered_frames,
            verdict
        );
    }
    (serializable, total)
}

fn main() {
    // Campaign A — correct CAS, wide range [-1e5, 1e5], 4 workers.
    banner("correct NSRL CAS, wide range [-100000, 100000]");
    let (ok, n) = run_block(&CampaignConfig::wide(120, 0), 0..8);
    println!("--> {ok}/{n} executions serializable (paper: all)");
    assert_eq!(ok, n, "correct CAS must always be serializable");

    // Campaign B — correct CAS, narrow range [-10, 10]: duplicate
    // values exercise the multigraph Eulerian check.
    banner("correct NSRL CAS, narrow range [-10, 10]");
    let (ok, n) = run_block(&CampaignConfig::narrow(120, 100), 0..8);
    println!("--> {ok}/{n} executions serializable (paper: all)");
    assert_eq!(ok, n, "correct CAS must always be serializable");

    // Campaign C — buggy CAS (matrix R removed), high contention plus
    // scheduling jitter so the vulnerable window (CAS applied, answer
    // not yet persistent, value overwritten) is actually hit.
    banner("buggy CAS (matrix R removed), values in [-1, 1]");
    let buggy = CampaignConfig {
        value_range: (-1, 1),
        max_crashes: 40,
        crash_window: (10, 80),
        recovery_crash_prob: 0.5,
        access_jitter: Some((0.15, 40)),
        ..CampaignConfig::wide(80, 0)
    }
    .variant(CasVariant::NoMatrix);
    let (ok, n) = run_block(&buggy, 0..12);
    println!(
        "--> {}/{n} executions NON-serializable (paper: bug detected)",
        n - ok
    );
    assert!(
        n - ok > 0,
        "the injected bug must be caught at least once across seeds"
    );

    println!("\nall campaign assertions hold");
}
