//! Quickstart: run recoverable functions on the persistent-stack
//! runtime, crash the system mid-flight, and recover.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pstack::core::{
    FunctionRegistry, PContext, PError, RecoveryMode, Runtime, RuntimeConfig, Task,
};
use pstack::nvram::{FailPlan, PMemBuilder};

/// Function ids must be stable across restarts: the persistent stack
/// records ids, and every boot's registry maps them back to code.
const STORE_SQUARED: u64 = 1;
const AUDIT_LOG: u64 = 2;

fn build_registry() -> Result<FunctionRegistry, PError> {
    let mut registry = FunctionRegistry::new();

    // STORE_SQUARED(i): persist i² into slot i of the user area, then
    // invoke AUDIT_LOG as a nested persistent call. The body is
    // idempotent, so the recover dual can simply re-run it.
    let store = |ctx: &mut PContext<'_>, args: &[u8]| {
        let i = u64::from_le_bytes(args[..8].try_into().expect("8-byte argument"));
        let slot = ctx.user_root() + i * 8;
        ctx.pmem.write_u64(slot, i * i)?;
        ctx.pmem.flush(slot, 8)?;
        // Nested call: AUDIT_LOG gets its own persistent frame.
        ctx.call(AUDIT_LOG, args)?;
        Ok(Some((i * i).to_le_bytes()))
    };
    registry.register_pair(STORE_SQUARED, store, store)?;

    // AUDIT_LOG(i): count processed items in a persistent counter cell.
    // Idempotence comes from a per-item mark.
    let audit = |ctx: &mut PContext<'_>, args: &[u8]| {
        let i = u64::from_le_bytes(args[..8].try_into().expect("8-byte argument"));
        let marks = ctx.user_root() + 512u64; // bitmap area
        let mark = marks + i;
        if ctx.pmem.read_u8(mark)? == 0 {
            let counter = ctx.user_root() + 504u64;
            let n = ctx.pmem.read_u64(counter)?;
            ctx.pmem.write_u64(counter, n + 1)?;
            ctx.pmem.flush(counter, 8)?;
            ctx.pmem.write_u8(mark, 1)?;
            ctx.pmem.flush(mark, 1)?;
        }
        Ok(None)
    };
    registry.register_pair(AUDIT_LOG, audit, audit)?;
    Ok(registry)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = build_registry()?;

    // Standard-mode boot: format a fresh region and run tasks — but arm
    // a crash partway through, emulating a power failure.
    let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
    let runtime = Runtime::format(pmem.clone(), RuntimeConfig::new(2), &registry)?;
    pmem.arm_failpoint(FailPlan::after_events(120));

    let tasks: Vec<Task> = (0..24u64)
        .map(|i| Task::new(STORE_SQUARED, i.to_le_bytes().to_vec()))
        .collect();
    let report = runtime.run_tasks(tasks);
    println!(
        "standard mode: completed={} crashed={}",
        report.completed, report.crashed
    );

    if report.crashed {
        // Recovery-mode boot: reopen the surviving image, walk every
        // worker stack top-to-bottom, run the recover duals.
        let pmem = pmem.reopen()?;
        let runtime = Runtime::open(pmem.clone(), &registry)?;
        let recovery = runtime.recover(RecoveryMode::Parallel)?;
        println!(
            "recovery mode: {} in-flight frame(s) recovered in {:?}",
            recovery.total_frames(),
            recovery.elapsed
        );

        // Back to standard mode: finish whatever never started.
        // (A real system would persist which tasks completed; here we
        // simply re-run everything — the functions are idempotent.)
        let tasks: Vec<Task> = (0..24u64)
            .map(|i| Task::new(STORE_SQUARED, i.to_le_bytes().to_vec()))
            .collect();
        let report = runtime.run_tasks(tasks);
        println!("resumed: completed={}", report.completed);

        let root = runtime.user_root()?;
        for i in [3u64, 7, 23] {
            let v = pmem.read_u64(root + i * 8)?;
            assert_eq!(v, i * i);
        }
        let audited = pmem.read_u64(root + 504u64)?;
        println!("audited items: {audited} (expected 24)");
        assert_eq!(audited, 24);
    }
    println!("quickstart finished; all invariants hold");
    Ok(())
}
