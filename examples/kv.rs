//! A crash-tolerant key-value store serving a mixed workload on the
//! persistent-stack runtime — the repository's first real application
//! on top of the micro-primitives.
//!
//! The demo has three acts:
//!
//! 1. drive the store directly (put/get/cas/delete over emulated
//!    NVRAM) and show the state surviving a power cut;
//! 2. run a full crash campaign: four workers drain a descriptor table
//!    of KV operations, crashes land at random flush boundaries, every
//!    restart recovers the interrupted operations from the persistent
//!    stacks, and the verifier checks the collected execution against
//!    the sequential map specification;
//! 3. re-run with the injected recovery bug ([`KvVariant::NoScan`] —
//!    the KV analogue of §5.2 removing the helping matrix) and watch
//!    the verifier catch the double application;
//! 4. outlive the version log: fill a shard past its formatted
//!    capacity — without compaction the shard bricks (puts start
//!    answering `false`), with the headroom-triggered generational
//!    compaction every mutation lands;
//! 5. pipeline a group commit: the batch's record and log-tail
//!    persists ride overlapping async flights (awaited before the
//!    publish CAS), and the state still survives a power cut.
//!
//! The whole demo runs under a flight-recorder session: the summary
//! (per-op latency percentiles, persist economy, the crash→recovery
//! timeline) prints at the end, and setting `PSTACK_TRACE=<path>`
//! writes the raw trace for `trace-dump` to render or validate.
//!
//! ```sh
//! cargo run --example kv
//! PSTACK_TRACE=/tmp/kv.trace cargo run --example kv
//! cargo run --bin trace-dump -- /tmp/kv.trace --validate
//! ```
//!
//! [`KvVariant::NoScan`]: pstack::kv::KvVariant

use pstack::chaos::{run_kv_campaign, KvCampaignConfig};
use pstack::heap::PHeap;
use pstack::kv::{shard_of, KvVariant, PKvStore, ShardedKvStore};
use pstack::nvram::{PMemBuilder, PMemStripe};
use pstack::telemetry::TraceSession;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Record the whole demo. With `--no-default-features` the recorder
    // is compiled out and this session collects nothing (for free).
    let session = TraceSession::start();

    // Act 1: the store API over emulated NVRAM, surviving a power cut.
    // The persist-order sanitizer rides along (`.psan(true)`): every
    // act below also proves the demo publishes nothing non-durable.
    let pmem = PMemBuilder::new()
        .len(1 << 18)
        .eager_flush(true)
        .psan(true)
        .build_in_memory();
    let heap = PHeap::format(pmem.clone(), 0u64.into(), 1 << 18)?;
    let kv = PKvStore::format(pmem.clone(), &heap, 16, 128, KvVariant::Nsrl)?;
    kv.put(0, 1, 1001, 42)?;
    kv.put(0, 2, 1002, 7)?;
    kv.cas(0, 3, 1001, 42, 43)?;
    kv.delete(0, 4, 1002)?;
    pmem.crash_now(0, 0.0); // power cut: eager region, nothing to lose
    let pmem = pmem.reopen()?;
    let kv = PKvStore::open(pmem.clone(), kv.base(), KvVariant::Nsrl)?;
    println!(
        "after power cut: key 1001 = {:?}, key 1002 = {:?}",
        kv.get(1001)?,
        kv.get(1002)?
    );
    assert_eq!(kv.get(1001)?, Some(43));
    assert_eq!(kv.get(1002)?, None);
    assert!(
        pmem.psan_violations().is_empty(),
        "sanitizer: {:?}",
        pmem.psan_violations()
    );

    // Act 2: the full §5.2-style loop — the correct store must verify
    // as linearizable no matter where the crashes land.
    let report = run_kv_campaign(&KvCampaignConfig::new(80, 2025))?;
    println!(
        "\ncorrect store: {} ops, {} rounds, {} crashes (+{} during recovery), {} frames recovered",
        report.history.ops.len(),
        report.rounds,
        report.crashes,
        report.recovery_crashes,
        report.recovered_frames,
    );
    let records: usize = report.history.chains.iter().map(Vec::len).sum();
    println!("  chain witness: {records} mutations published");
    println!("  KV verdict: {:?}", report.verdict);
    println!(
        "  sanitizer: {} persist-order violations",
        report.psan_violations.len()
    );
    assert!(
        report.is_linearizable(),
        "the correct store must verify as linearizable"
    );
    assert!(
        report.psan_violations.is_empty(),
        "sanitizer: {:?}",
        report.psan_violations
    );

    // Act 3: the injected bug — recovery without the evidence scan
    // re-executes operations that already linearized; hunt seeds until
    // the verifier catches a double application.
    println!("\nno-scan (buggy) store, hunting for a violation:");
    let mut caught = None;
    for seed in 0.. {
        let cfg = KvCampaignConfig {
            key_space: 4,
            max_crashes: 40,
            crash_window: (10, 80),
            recovery_crash_prob: 0.5,
            access_jitter: Some((0.15, 40)),
            ..KvCampaignConfig::new(80, seed)
        }
        .variant(KvVariant::NoScan);
        let report = run_kv_campaign(&cfg)?;
        if !report.is_linearizable() {
            caught = Some((seed, report));
            break;
        }
        if seed > 200 {
            break; // practically unreachable; keep the demo bounded
        }
    }
    let (seed, report) = caught.expect("the no-scan bug manifests within a few seeds");
    println!(
        "  seed {seed}: NOT linearizable after {} crashes — {:?}",
        report.total_crashes(),
        report.verdict,
    );

    // Act 4: outliving the log — the generational compactor. A sharded
    // store with a deliberately tiny 12-slot log per shard takes 50
    // mutations on one hot shard's keys.
    println!("\ncompaction: 50 mutations into a 12-slot shard log");
    let nshards = 2;
    let log_cap = 12u64;
    let hot_keys: Vec<u64> = (0..)
        .filter(|&k| shard_of(k, nshards) == 0)
        .take(5)
        .collect();
    let build = || -> Result<(PMemStripe, ShardedKvStore), Box<dyn std::error::Error>> {
        let stripe = PMemBuilder::new()
            .len(1 << 20)
            .eager_flush(true)
            .psan(true)
            .build_striped(nshards);
        let kv = ShardedKvStore::format(stripe.regions(), 8, log_cap, KvVariant::Nsrl)?;
        Ok((stripe, kv))
    };

    // Without compaction the shard bricks — loudly.
    let (_, kv) = build()?;
    let mut bricked_at = None;
    for seq in 1..=50u64 {
        let key = hot_keys[(seq % 5) as usize];
        if !kv.put(0, seq, key, seq as i64)? {
            bricked_at = Some(seq);
            break;
        }
    }
    let bricked_at = bricked_at.expect("a 12-slot log cannot absorb 50 mutations");
    println!(
        "  WITHOUT compaction: shard 0 went READ-ONLY at mutation {bricked_at} \
         ({}/{} slots burned) — every further put on its keys fails",
        kv.shard(0).log_reserved()?,
        log_cap,
    );

    // With the headroom signal driving compact_shard, all 50 land.
    let (stripe, kv) = build()?;
    let mut compactions = 0;
    for seq in 1..=50u64 {
        let key = hot_keys[(seq % 5) as usize];
        let shard = kv.shard_of(key);
        if kv.shard(shard).log_reserved()? + 1 >= kv.shard(shard).log_capacity()? {
            let stats = kv.compact_shard(shard)?;
            compactions += 1;
            println!(
                "  compact shard {shard}: generation {} → {}, {} live carried, \
                 {} history slots dropped",
                stats.from_gen, stats.to_gen, stats.carried, stats.dropped,
            );
        }
        assert!(
            kv.put(0, seq, key, seq as i64)?,
            "with compaction no mutation is ever rejected"
        );
    }
    assert!(compactions > 0);
    println!(
        "  WITH compaction: all 50 mutations applied across {} generations; \
         key {} = {:?}",
        kv.generations()?[0] + 1,
        hot_keys[0],
        kv.get(hot_keys[0])?,
    );
    assert!(
        stripe.psan_violations().is_empty(),
        "sanitizer: {:?}",
        stripe.psan_violations()
    );
    println!("  sanitizer: 0 persist-order violations across every act");

    // Act 5: the async flush pipeline. A buffered store with the
    // pipeline on commits a batch whose records and log-tail persists
    // ride overlapping flights (`flush.issue`/`flush.await` span pairs
    // in the trace); the awaits land before the publish CAS, so a
    // power cut still keeps the whole window.
    println!("\nflush pipeline: one group commit, two overlapping flights");
    let pmem = PMemBuilder::new().len(1 << 18).psan(true).build_in_memory();
    let heap = PHeap::format(pmem.clone(), 0u64.into(), 1 << 18)?;
    let mut kv = PKvStore::format(pmem.clone(), &heap, 16, 128, KvVariant::Nsrl)?;
    kv.set_pipeline(true);
    let ops: Vec<pstack::kv::KvBatchOp> = (0..16)
        .map(|i| pstack::kv::KvBatchOp::Put {
            pid: 9,
            seq: i + 1,
            key: 2000 + i,
            value: i as i64,
        })
        .collect();
    assert!(kv.apply_batch(&ops)?.iter().all(|o| o.took_effect()));
    let d = pmem.stats().snapshot();
    println!(
        "  {} async flights issued, {} redundant line flushes elided",
        d.async_flushes, d.elided_lines
    );
    assert!(d.async_flushes >= 2, "records + tail must ride flights");
    pmem.crash_now(5, 0.0); // power cut: awaited flights are durable
    let pmem = pmem.reopen()?;
    let kv = PKvStore::open(pmem.clone(), kv.base(), KvVariant::Nsrl)?;
    assert_eq!(kv.get(2015)?, Some(15));
    println!("  after power cut: key 2015 = {:?}", kv.get(2015)?);
    assert!(
        pmem.psan_violations().is_empty(),
        "sanitizer: {:?}",
        pmem.psan_violations()
    );

    // The flight recorder saw every act: spans from the op labels,
    // persist round-trips, the crashes and the recovery phases.
    let snapshot = session.finish();
    let summary = snapshot.summary();
    println!("\n{}", summary.render());
    if let Ok(path) = std::env::var("PSTACK_TRACE") {
        snapshot.write_file(&path)?;
        println!("trace written to {path}");
    }

    println!("\nkv example finished");
    Ok(())
}
