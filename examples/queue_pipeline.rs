//! A crash-tolerant producer/consumer pipeline over the recoverable
//! FIFO queue — the paper's future-work direction 1 ("implement and
//! test other NVRAM algorithms") in action.
//!
//! Four workers drain a descriptor table of enqueue/dequeue operations
//! against one [`RecoverableQueue`]. Mid-run the demo injects a crash,
//! restarts the system in recovery mode (completing the interrupted
//! operations from their persistent-stack frames), finishes the
//! workload, and finally checks the collected execution with the FIFO
//! verifier — which validates the answers against the queue's
//! slot-order linearization witness.
//!
//! ```sh
//! cargo run --example queue_pipeline
//! ```
//!
//! [`RecoverableQueue`]: pstack::recoverable::RecoverableQueue

use pstack::chaos::{run_queue_campaign, QueueCampaignConfig};
use pstack::recoverable::QueueVariant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The correct NSRL queue: every execution must verify as FIFO, no
    // matter where the crashes land.
    let cfg = QueueCampaignConfig::new(80, 2024);
    let report = run_queue_campaign(&cfg)?;
    println!(
        "correct queue: {} ops, {} rounds, {} crashes (+{} during recovery), {} frames recovered",
        report.history.ops.len(),
        report.rounds,
        report.crashes,
        report.recovery_crashes,
        report.recovered_frames,
    );
    println!(
        "  slot witness: {} enqueues linearized, {} consumed",
        report.history.snapshot.len(),
        report
            .history
            .snapshot
            .iter()
            .filter(|s| s.dequeued_by.is_some())
            .count(),
    );
    println!("  FIFO verdict: {:?}", report.verdict);
    assert!(report.is_fifo(), "the correct queue must verify as FIFO");

    // The injected bug (recovery without the evidence scan — the queue
    // analogue of §5.2 removing the matrix R): scan seeds until the
    // verifier catches a double application.
    println!("\nno-scan (buggy) queue, hunting for a violation:");
    let mut caught = None;
    for seed in 0.. {
        let cfg = QueueCampaignConfig {
            max_crashes: 40,
            crash_window: (10, 80),
            recovery_crash_prob: 0.5,
            access_jitter: Some((0.15, 40)),
            ..QueueCampaignConfig::new(80, seed)
        }
        .variant(QueueVariant::NoScan);
        let report = run_queue_campaign(&cfg)?;
        if !report.is_fifo() {
            caught = Some((seed, report));
            break;
        }
        if seed > 200 {
            break; // practically unreachable; keep the demo bounded
        }
    }
    let (seed, report) = caught.expect("the no-scan bug manifests within a few seeds");
    println!(
        "  seed {seed}: NOT FIFO after {} crashes — {:?}",
        report.crashes + report.recovery_crashes,
        report.verdict,
    );
    println!("\nqueue pipeline example finished");
    Ok(())
}
