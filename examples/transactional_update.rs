//! The transactional for-loop of Appendix A.1: update N items so that
//! a crash anywhere in the middle rolls back *all* updates.
//!
//! The loop is a recursive function `F(i)` — save the old value of
//! `a[i]` in an epoch-tagged undo slot, update `a[i]`, recurse to
//! `F(i + 1)` — whose recover dual rolls `a[i]` back. Recovery walks
//! the stack top-down, so rollbacks run in reverse order, restoring the
//! array exactly. This example drives the reusable library combinator
//! ([`TxnLoop`] + [`U64CellStep`] from `pstack::core::txn`), which also
//! handles two subtleties the paper's sketch leaves open — the deepest
//! frame persists a commit flag *before* the unwind starts (else a
//! crash mid-unwind tears the transaction), and undo records are
//! epoch-tagged (else recovery can replay stale undo state from a
//! previous committed transaction). See the module docs of
//! `pstack::core::txn` for both arguments.
//!
//! Deep recursion needs the unbounded stack of Appendix A; this example
//! uses the linked-list variant with deliberately tiny blocks, so the
//! transaction spans many chained blocks.
//!
//! ```sh
//! cargo run --example transactional_update
//! ```
//!
//! [`TxnLoop`]: pstack::core::TxnLoop
//! [`U64CellStep`]: pstack::core::U64CellStep

use std::sync::Arc;

use pstack::core::{
    FunctionRegistry, PError, RecoveryMode, Runtime, RuntimeConfig, StackKind, TxnLoop, U64CellStep,
};
use pstack::nvram::{FailPlan, PMem, PMemBuilder, POffset};

const TX_LOOP: u64 = 10;
const N_ITEMS: u64 = 160;

fn update(v: u64) -> u64 {
    v * 2 + 1
}

fn setup() -> Result<(PMem, Runtime, U64CellStep, TxnLoop), PError> {
    let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
    let stub = FunctionRegistry::new();
    let rt = Runtime::format(
        pmem.clone(),
        RuntimeConfig::new(1)
            .stack_kind(StackKind::List)
            .stack_capacity(256), // tiny blocks: force long chains
        &stub,
    )?;
    let step = U64CellStep::format(&rt, N_ITEMS, Arc::new(update))?;
    for i in 0..N_ITEMS {
        step.write_item(i, 1000 + i)?;
    }
    let mut registry = FunctionRegistry::new();
    let txn = TxnLoop::register(&mut registry, TX_LOOP, Arc::new(step.clone()))?;
    let rt = Runtime::open(pmem.clone(), &registry)?;
    Ok((pmem, rt, step, txn))
}

/// Recovery boot: reopen the crashed region and rebuild the registry
/// around a step bound to the fresh handle, as a restarted process
/// would.
fn recovery_boot(pmem: &PMem, step_base: POffset) -> Result<(Runtime, U64CellStep), PError> {
    let pmem2 = pmem.reopen()?;
    let stub = FunctionRegistry::new();
    let probe = Runtime::open(pmem2.clone(), &stub)?;
    let step = U64CellStep::open(&probe, step_base, Arc::new(update))?;
    let mut registry = FunctionRegistry::new();
    TxnLoop::register(&mut registry, TX_LOOP, Arc::new(step.clone()))?;
    let rt = Runtime::open(pmem2, &registry)?;
    Ok((rt, step))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Run 1: crash mid-transaction. Every applied update must roll back.
    let (pmem, rt, step, txn) = setup()?;
    let before = step.read_all()?;
    step.begin()?;
    pmem.arm_failpoint(FailPlan::after_events(700));
    let report = rt.run_tasks(vec![txn.task(N_ITEMS)]);
    assert!(report.crashed, "the fail-point should cut the transaction");

    let (rt, step2) = recovery_boot(&pmem, step.base())?;
    let recovery = rt.recover(RecoveryMode::Parallel)?;
    let after = step2.read_all()?;
    println!(
        "crashed mid-transaction: {} frames rolled back, array restored: {}",
        recovery.total_frames(),
        before == after
    );
    assert_eq!(before, after, "rollback must restore every item");
    assert!(
        !step2.is_committed()?,
        "the interrupted transaction must not commit"
    );

    // Run 2: no crash. The whole transaction commits atomically (the
    // deepest frame's commit-flag flush), then unwinds.
    let (_, rt, step, txn) = setup()?;
    step.begin()?;
    let report = rt.run_tasks(vec![txn.task(N_ITEMS)]);
    assert_eq!(report.completed, 1);
    let after = step.read_all()?;
    let expected: Vec<u64> = (0..N_ITEMS).map(|i| update(1000 + i)).collect();
    println!(
        "clean run: transaction committed on all {} items: {}",
        N_ITEMS,
        after == expected
    );
    assert_eq!(after, expected);
    assert!(step.is_committed()?);

    println!("transactional for-loop example finished");
    Ok(())
}
