//! A recoverable counter under crash fire: increments survive exactly
//! once each, however many times the system dies and recovers.
//!
//! Structure: the driving loop resubmits work after every crash, so a
//! persistent done-bitmap records which increments already happened.
//! The per-process sequence tags of [`RecoverableCounter`] make the
//! *recover* path idempotent (same worker re-runs the same increment),
//! while the bitmap makes *resubmission* idempotent (a different worker
//! might pick the task up next round).
//!
//! ```sh
//! cargo run --example recoverable_counter
//! ```

use pstack::core::{
    FunctionRegistry, PContext, PError, RecoveryMode, Runtime, RuntimeConfig, Task,
};
use pstack::nvram::{FailPlan, PMemBuilder, POffset};
use pstack::recoverable::RecoverableCounter;

const WORKERS: usize = 4;
const INCREMENTS: u64 = 200;
const COUNT_ONCE: u64 = 77;

/// User root record: `[counter_base: u64][bitmap_base: u64]`.
fn build_registry() -> Result<FunctionRegistry, PError> {
    let mut registry = FunctionRegistry::new();
    let body = |ctx: &mut PContext<'_>, args: &[u8]| {
        let i = u64::from_le_bytes(args[..8].try_into().expect("8-byte index"));
        let root = ctx.user_root();
        let counter_base = POffset::new(ctx.pmem.read_u64(root)?);
        let bitmap = POffset::new(ctx.pmem.read_u64(root + 8u64)?);
        if ctx.pmem.read_u8(bitmap + i)? == 1 {
            return Ok(None); // resubmitted after completion
        }
        let counter = RecoverableCounter::open(ctx.pmem.clone(), counter_base, WORKERS);
        counter.increment(ctx.pid, i + 1)?; // idempotent per (pid, seq)
        ctx.pmem.write_u8(bitmap + i, 1)?;
        ctx.pmem.flush(bitmap + i, 1)?;
        Ok(None)
    };
    registry.register_pair(COUNT_ONCE, body, body)?;
    Ok(registry)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The counter's NSRL algorithm assumes cache-less NVRAM, so the
    // region flushes eagerly (§5 mode).
    let mut pmem = PMemBuilder::new()
        .len(1 << 20)
        .eager_flush(true)
        .build_in_memory();
    let registry = build_registry()?;

    // Boot, create the counter + bitmap, persist a root record.
    let rt = Runtime::format(pmem.clone(), RuntimeConfig::new(WORKERS), &registry)?;
    let counter = RecoverableCounter::format(pmem.clone(), rt.heap(), WORKERS)?;
    let bitmap = rt.heap().alloc_zeroed(INCREMENTS as usize)?;
    let record = rt.heap().alloc(16)?;
    pmem.write_u64(record, counter.base().get())?;
    pmem.write_u64(record + 8u64, bitmap.get())?;
    pmem.flush(record, 16)?;
    rt.set_user_root(record)?;
    let counter_base = counter.base();

    let mut crashes = 0u64;
    loop {
        let rt = Runtime::open(pmem.clone(), &registry)?;
        if crashes < 6 {
            pmem.arm_failpoint(FailPlan::after_events(150 + crashes * 60));
        }
        let tasks: Vec<Task> = (0..INCREMENTS)
            .map(|i| Task::new(COUNT_ONCE, i.to_le_bytes().to_vec()))
            .collect();
        let report = rt.run_tasks(tasks);
        if !report.crashed {
            println!("final round: completed {} tasks cleanly", report.completed);
            break;
        }
        crashes += 1;
        pmem = pmem.reopen()?;
        let rt = Runtime::open(pmem.clone(), &registry)?;
        let recovery = rt.recover(RecoveryMode::Parallel)?;
        println!(
            "crash #{crashes}: recovered {} in-flight increment(s)",
            recovery.total_frames()
        );
    }

    let counter = RecoverableCounter::open(pmem.clone(), counter_base, WORKERS);
    let value = counter.read()?;
    println!("counter value after {crashes} crashes: {value} (expected {INCREMENTS})");
    assert_eq!(
        value, INCREMENTS,
        "every increment must apply exactly once despite crashes"
    );
    println!("recoverable counter example finished");
    Ok(())
}
